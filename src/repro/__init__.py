"""repro — a full reproduction of IB-RAR (DSN 2023).

IB-RAR ("Information Bottleneck as Regularizer for Adversarial Robustness",
Xu, Perin & Picek) improves adversarial robustness by adding HSIC-based
information-bottleneck regularizers to the training loss (Eq. 1/2) and by
masking low-MI feature channels of the last convolutional block (Eq. 3).

Because this environment has neither PyTorch nor the original datasets, the
package also ships the full substrate the method needs: a NumPy autograd
engine (:mod:`repro.nn`), the paper's model zoo (:mod:`repro.models`),
synthetic CIFAR-like datasets (:mod:`repro.data`), the attack suite
(:mod:`repro.attacks`), the adversarial-training benchmarks
(:mod:`repro.training`) and the IB baselines VIB / HBaR (:mod:`repro.ib`).

Quickstart::

    from repro.core import IBRAR, IBRARConfig
    from repro.models import SmallCNN
    from repro.data import synthetic_cifar10

    data = synthetic_cifar10(n_train=256, n_test=128, image_size=16)
    model = SmallCNN(num_classes=10, image_size=16)
    result = IBRAR(model, IBRARConfig(alpha=0.1, beta=0.01)).fit(
        data.x_train, data.y_train, epochs=3, batch_size=32
    )
"""

from . import analysis, attacks, core, data, evaluation, experiments, ib, models, nn, training, utils
from .core import IBRAR, IBRARConfig

__version__ = "1.1.0"

__all__ = [
    "nn",
    "models",
    "data",
    "ib",
    "attacks",
    "training",
    "core",
    "analysis",
    "evaluation",
    "experiments",
    "utils",
    "IBRAR",
    "IBRARConfig",
    "__version__",
]
