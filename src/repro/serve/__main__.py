"""``python -m repro.serve`` — run the evaluation server over a TCP socket.

Example::

    python -m repro.serve --store .repro-artifacts --port 7341 \
        --buckets 4,8,16,32 --max-wait-ms 5 --workers 2

Checkpoints are addressed by training-hash prefix (see
``python -m repro.experiments list``); ``--preload`` pins models at startup
so their plans are traced before the first request.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from ..experiments.store import ArtifactStore
from ..obs import profiler as _profiler, trace as _trace
from .server import RobustnessServer, start_socket_server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Dynamic-batching robustness evaluation server.",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="artifact store root (default: $REPRO_ARTIFACTS or .repro-artifacts)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7341, help="0 picks a free port")
    parser.add_argument(
        "--buckets",
        default="4,8,16,32",
        help="comma-separated batch sizes every batch is padded to",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        help="max time a partial batch waits for co-riders before flushing padded",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="admission bound on queue depth (examples + jobs); excess work "
        "is shed with an 'overloaded' error (default: unbounded)",
    )
    parser.add_argument(
        "--model-capacity", type=int, default=4, help="LRU bound on pinned checkpoints"
    )
    parser.add_argument(
        "--provider",
        default=None,
        help="kernel provider for compiled plans (numpy, threaded, numba; "
        "default: $REPRO_PROVIDER or numpy)",
    )
    parser.add_argument(
        "--preload",
        default=None,
        help="comma-separated training-hash prefixes to resolve at startup",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="append span/metrics JSONL events to PATH (see python -m repro.obs)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="per-op executor profiling (surfaced on the stats endpoint)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    if args.trace:
        _trace.enable(path=args.trace)
    if args.profile:
        _profiler.enable()
    store = ArtifactStore(args.store)
    server = RobustnessServer(
        store=store,
        buckets=[int(size) for size in args.buckets.split(",") if size.strip()],
        max_wait_ms=args.max_wait_ms,
        workers=args.workers,
        model_capacity=args.model_capacity,
        max_queue=args.max_queue,
        provider=args.provider,
    )
    server.start()
    try:
        if args.preload:
            for prefix in args.preload.split(","):
                prefix = prefix.strip()
                if prefix:
                    entry = server.pool.get(prefix)
                    print(f"preloaded {entry.model_id}", flush=True)
        socket_server = await start_socket_server(server, args.host, args.port)
        host, port = socket_server.sockets[0].getsockname()[:2]
        print(f"repro.serve listening on {host}:{port} (store: {store.root})", flush=True)
        async with socket_server:
            await socket_server.serve_forever()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        server.stop()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
