"""The robustness evaluation server: request lifecycle, workers, transport.

:class:`RobustnessServer` is the in-process core: requests submitted via
:meth:`~RobustnessServer.submit` are validated, split into bucket-sized
:class:`~repro.serve.queueing.WorkItem` chunks (coalescable kinds) or whole
jobs (everything else), executed on worker threads, and resolved as response
dicts through a :class:`concurrent.futures.Future` — responses complete in
*execution* order, not arrival order, which is what lets one slow
robustness job overlap with a stream of classify batches.

Request kinds:

* ``classify`` — logits/predictions for a batch of images.  Always
  coalesced: chunks from different requests share one padded bucket batch
  and one compiled plan replay.
* ``attack`` — adversarial examples under one :class:`AttackSpec`.
  Coalesced only for per-example-deterministic specs (FGSM, NIFGSM,
  MIFGSM, CW, DeepFool, PGD with ``random_start=False``); per-batch
  randomness (random-start PGD, FAB) makes results depend on batch
  composition, so those run as whole per-request jobs with the documented
  semantics ``spec.build(model).attack(images, labels)`` on a fresh
  instance.
* ``robustness`` — a full :func:`repro.evaluation.evaluate_robustness`
  suite, read-through-cached in the :class:`ArtifactStore` by
  ``(checkpoint hash, suite, options, data digest)``.
* ``stats`` — telemetry snapshot (queue, batches, pad waste, latency
  percentiles, per-model plan-cache counters).
* ``health`` — SLO surface, resolved synchronously in :meth:`submit` (it
  never touches the queue, so it answers even when the server is
  overloaded): ok/degraded/overloaded from worker heartbeats, queue
  utilization and the rolling error-rate window.

SLO machinery: ``classify``/``attack``/``robustness`` requests may carry a
``deadline_ms`` budget — work whose deadline expires while queued is
rejected with a counted ``deadline_exceeded`` error instead of occupying a
batch slot — and a ``max_queue`` bound sheds new work with an
``overloaded`` error once the queue is at capacity.  When the server owns
a store, each serve session persists a RunRecord on :meth:`stop` (see
:mod:`repro.obs.records`).

Byte-identity contract: coalescing, padding and request interleaving never
change a request's results — every kernel in the stack is row-independent,
so a request's rows compute identically inside any padded batch (the
property tests in ``tests/serve`` assert bitwise equality against the
offline engine).  Dropping expired co-riders from a batch preserves it too:
the survivors are re-padded to the smallest fitting bucket, which is the
same row-independent computation the offline engine performs.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..attacks.engine import AttackSpec
from ..evaluation.robustness import evaluate_robustness
from ..nn import get_default_dtype
from ..obs import records as _records, trace as _trace
from .models import ModelPool
from .protocol import (
    ProtocolError,
    decode_payload,
    encode_payload,
    robustness_cache_key,
    trace_carrier,
)
from .queueing import Batch, BucketConfig, QueueFull, RequestQueue, WorkItem
from .telemetry import ServerStats

__all__ = ["RobustnessServer", "is_coalescable", "start_socket_server"]

#: attacks whose per-example results are independent of batch composition.
_COALESCABLE_ATTACKS = frozenset({"fgsm", "nifgsm", "mifgsm", "cw", "deepfool"})

#: evaluate_robustness keywords a robustness request may override.
_ROBUSTNESS_OPTIONS = frozenset({"batch_size", "early_exit", "cascade", "compile"})


def is_coalescable(spec: AttackSpec) -> bool:
    """Whether batches of this attack may mix examples from many requests.

    True exactly when the attack perturbs each example independently of the
    rest of its batch *and* draws no randomness: FGSM / NIFGSM / MIFGSM /
    CW / DeepFool always, PGD only with ``random_start=False``.  Random
    draws are batch-shaped, so a stochastic attack coalesced with strangers
    would return different bytes than the same request served alone.
    """
    if spec.name in _COALESCABLE_ATTACKS:
        return True
    if spec.name == "pgd":
        return spec.get("random_start", True) is False
    return False


class _PendingRequest:
    """Server-side bookkeeping for one in-flight request."""

    def __init__(
        self,
        request_id: Any,
        kind: str,
        model_id: Optional[str],
        images: Optional[np.ndarray],
        labels: Optional[np.ndarray],
        future: "Future[Dict[str, Any]]",
        stats: ServerStats,
        spec: Optional[AttackSpec] = None,
        suite: Optional[List[Dict[str, Any]]] = None,
        options: Optional[Dict[str, Any]] = None,
        return_logits: bool = False,
        trace_parent: Optional[Dict[str, str]] = None,
        deadline_ms: Optional[float] = None,
    ) -> None:
        self.id = request_id
        self.kind = kind
        self.model_id = model_id
        self.images = images
        self.labels = labels
        self.spec = spec
        self.suite = suite
        self.options = options
        self.return_logits = return_logits
        self.future = future
        self.enqueued = time.monotonic()
        self.deadline_ms = deadline_ms
        #: absolute monotonic deadline; work still queued past it is
        #: rejected instead of executed.
        self.deadline = (
            self.enqueued + deadline_ms / 1e3 if deadline_ms is not None else None
        )
        #: span parent for worker-side spans: the submitting thread's open
        #: span (in-process callers) or the request's wire carrier.
        self.trace_parent = trace_parent if trace_parent is not None else _trace.carrier()
        self._stats = stats
        self._lock = threading.Lock()
        self._chunks: Dict[int, Dict[str, np.ndarray]] = {}
        self._remaining = 0
        self._done = False

    @property
    def examples(self) -> int:
        return 0 if self.images is None else len(self.images)

    @property
    def done(self) -> bool:
        with self._lock:
            return self._done

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def expect_chunks(self, count: int) -> None:
        self._remaining = count

    def complete_chunk(self, start: int, result: Dict[str, np.ndarray]) -> None:
        with self._lock:
            if self._done:
                return
            self._chunks[start] = result
            self._remaining -= 1
            if self._remaining > 0:
                return
            self._done = True
        assembled = {
            key: np.concatenate([self._chunks[s][key] for s in sorted(self._chunks)])
            for key in self._chunks[next(iter(self._chunks))]
        }
        self._finish(assembled)

    def resolve(self, result: Dict[str, Any]) -> None:
        with self._lock:
            if self._done:
                return
            self._done = True
        self._finish(result)

    def fail(self, message: str, code: Optional[str] = None) -> None:
        """Resolve with an error response (idempotent across chunks).

        ``code`` is a machine-readable discriminator (``deadline_exceeded``,
        ``overloaded``) clients map to typed exceptions; the matching SLO
        counters increment here, inside the done-guard, so a multi-chunk
        request counts once no matter how many chunks observe the expiry.
        """
        with self._lock:
            if self._done:
                return
            self._done = True
        if code == "deadline_exceeded":
            self._stats.record_deadline_exceeded()
        self._stats.record_request(
            self.kind, time.monotonic() - self.enqueued, self.examples, error=True
        )
        response = {"id": self.id, "ok": False, "error": message}
        if code is not None:
            response["code"] = code
        self.future.set_result(response)

    def _finish(self, result: Dict[str, Any]) -> None:
        self._stats.record_request(
            self.kind, time.monotonic() - self.enqueued, self.examples
        )
        self.future.set_result(
            {"id": self.id, "ok": True, "result": encode_payload(result)}
        )


class _Job:
    __slots__ = ("request",)

    def __init__(self, request: _PendingRequest) -> None:
        self.request = request


class RobustnessServer:
    """Dynamic-batching evaluation server over the compiled plan cache.

    Parameters
    ----------
    store:
        :class:`~repro.experiments.store.ArtifactStore` (or ``None``) used
        to resolve checkpoints by training-hash prefix and to read-through
        cache robustness reports.  In-process modules may also be attached
        with :meth:`register`.
    buckets:
        The batch sizes requests are padded/grouped to — every served batch
        hits one of these plan signatures.
    max_wait_ms:
        How long a partial batch may wait for co-riders before it is flushed
        padded (the latency bound of the scheduler).
    workers:
        Worker threads; each owns its own compiled views (plans are
        single-threaded), all share one queue, model pool and stats.
    model_capacity:
        LRU bound on concurrently-pinned checkpoints.
    max_queue:
        Admission-control bound on queue depth (examples + jobs); new
        work past it is shed with an ``overloaded`` error.  ``None``
        (default) is unbounded.
    stall_after_s:
        A worker whose last heartbeat is older than this counts as
        stalled in the ``health`` report.
    window_s:
        Width of the rolling latency/error SLO window.
    """

    def __init__(
        self,
        store=None,
        buckets=(4, 8, 16, 32),
        max_wait_ms: float = 5.0,
        workers: int = 2,
        model_capacity: int = 4,
        max_queue: Optional[int] = None,
        stall_after_s: float = 5.0,
        window_s: float = 60.0,
        provider: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("at least one worker thread is required")
        self.store = store
        self.buckets = buckets if isinstance(buckets, BucketConfig) else BucketConfig(buckets)
        self.queue = RequestQueue(
            self.buckets, max_wait=max_wait_ms / 1e3, max_depth=max_queue
        )
        self.pool = ModelPool(
            store=store,
            capacity=model_capacity,
            buckets=self.buckets,
            provider=provider,
        )
        self.stats = ServerStats(window_s=window_s)
        self.workers = int(workers)
        self.stall_after_s = float(stall_after_s)
        self._heartbeats: Dict[int, float] = {}
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        self._run_window: Optional[_records.RunWindow] = None

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "RobustnessServer":
        if self._started:
            return self
        self._started = True
        self._stop.clear()
        if self.store is not None and self._run_window is None:
            self._run_window = _records.RunWindow(
                "serve", label=self.stats.name
            ).open()
        now = time.monotonic()
        for worker_id in range(self.workers):
            self._heartbeats[worker_id] = now
            thread = threading.Thread(
                target=self._worker_loop,
                args=(worker_id,),
                name=f"repro-serve-{worker_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        if not self._started:
            return
        # Health reflects the live session — capture it before the workers
        # are told to wind down, for the session's RunRecord.
        final_health = self._health_result() if self._run_window is not None else None
        self._stop.set()
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        self._started = False
        window, self._run_window = self._run_window, None
        if window is not None:
            window.close()
            record = window.build(
                stats=self.stats.snapshot(),
                health=final_health,
                models=self.pool.stats(),
                profile=self.pool.profiles(),
            )
            try:
                _records.save_record(record, store=self.store)
            except OSError:
                pass  # a read-only store must not break shutdown

    def __enter__(self) -> "RobustnessServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def register(self, name: str, module) -> None:
        """Serve an in-process module (live weights) under ``name``."""
        self.pool.register(name, module)

    # -- submission --------------------------------------------------------------
    def submit(self, message: Dict[str, Any]) -> "Future[Dict[str, Any]]":
        """Validate and enqueue one request; the future resolves to the response.

        The ``serve.request`` span covers parse + enqueue; the worker-side
        ``serve.batch`` / ``serve.job`` spans parent onto it through the
        carrier captured at parse time (or one supplied on the wire).
        """
        future: "Future[Dict[str, Any]]" = Future()
        request_id = message.get("id") if isinstance(message, dict) else None
        with _trace.span("serve.request"):
            try:
                request = self._parse(message, future)
            except (ProtocolError, KeyError, TypeError, ValueError) as error:
                future.set_result(
                    {"id": request_id, "ok": False, "error": str(error)}
                )
                return future
            if request.kind == "health":
                # Resolved inline so the health surface answers even when
                # the queue is full and every worker is busy or stalled.
                request.resolve(self._health_result())
                return future
            try:
                if request.kind == "classify" or (
                    request.kind == "attack" and is_coalescable(request.spec)
                ):
                    self._enqueue_items(request)
                elif request.kind == "stats":
                    # Telemetry stays reachable under overload.
                    self.queue.put_job(_Job(request), force=True)
                else:
                    self.queue.put_job(_Job(request))
            except QueueFull as error:
                self.stats.record_shed(request.kind)
                request.fail(str(error), code="overloaded")
            return future

    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(message).result()

    def _parse(self, message: Dict[str, Any], future: Future) -> _PendingRequest:
        if not isinstance(message, dict):
            raise ProtocolError("request must be a JSON object")
        kind = message.get("kind")
        if kind not in ("classify", "attack", "robustness", "stats", "health"):
            raise ProtocolError(f"unknown request kind {kind!r}")
        payload = decode_payload(message)
        wire_carrier = trace_carrier(message)
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or isinstance(
                deadline_ms, bool
            ) or not deadline_ms > 0:
                raise ProtocolError("'deadline_ms' must be a positive number")
            deadline_ms = float(deadline_ms)
        if kind in ("stats", "health"):
            return _PendingRequest(
                payload.get("id"), kind, None, None, None, future, self.stats,
                trace_parent=wire_carrier,
            )
        model_id = payload.get("model")
        if not model_id or not isinstance(model_id, str):
            raise ProtocolError("request needs a 'model' (hash prefix or registered name)")
        images = payload.get("images")
        if not isinstance(images, np.ndarray) or images.ndim < 2 or not len(images):
            raise ProtocolError("request needs a non-empty 'images' array")
        images = np.ascontiguousarray(images, dtype=get_default_dtype())
        labels = payload.get("labels")
        if kind in ("attack", "robustness"):
            if labels is None:
                raise ProtocolError(f"'{kind}' requests need a 'labels' array")
            labels = np.asarray(labels, dtype=np.int64).reshape(-1)
            if len(labels) != len(images):
                raise ProtocolError("images and labels disagree on batch size")
        else:
            labels = None
        spec = None
        if kind == "attack":
            spec_data = payload.get("spec")
            if not isinstance(spec_data, dict):
                raise ProtocolError("'attack' requests need a 'spec' object")
            spec = AttackSpec.from_dict(spec_data)
        suite = None
        options = None
        if kind == "robustness":
            suite = payload.get("suite")
            if suite is not None:
                suite = [AttackSpec.from_dict(entry).as_dict() for entry in suite]
            options = dict(payload.get("options") or {})
            unknown = set(options) - _ROBUSTNESS_OPTIONS
            if unknown:
                raise ProtocolError(f"unknown robustness options: {sorted(unknown)}")
        return _PendingRequest(
            payload.get("id"),
            kind,
            model_id,
            images,
            labels,
            future,
            self.stats,
            spec=spec,
            suite=suite,
            options=options,
            return_logits=bool(payload.get("return_logits", False)),
            trace_parent=wire_carrier,
            deadline_ms=deadline_ms,
        )

    def _enqueue_items(self, request: _PendingRequest) -> None:
        spec_json = request.spec.to_json() if request.spec is not None else None
        key = (
            request.model_id,
            request.kind,
            spec_json,
            tuple(request.images.shape[1:]),
            request.images.dtype.str,
        )
        chunk = self.buckets.max_size
        n = len(request.images)
        starts = list(range(0, n, chunk))
        request.expect_chunks(len(starts))
        items = [
            WorkItem(request=request, start=start, count=min(chunk, n - start))
            for start in starts
        ]
        self.queue.put_items(key, items)

    # -- workers -----------------------------------------------------------------
    def _worker_loop(self, worker_id: int) -> None:
        while not self._stop.is_set():
            self._heartbeats[worker_id] = time.monotonic()
            work = self.queue.next_work(timeout=0.05)
            if work is None:
                continue
            what, payload = work
            if what == "batch":
                self._run_batch(worker_id, payload)
            else:
                self._run_job(worker_id, payload)
            self._heartbeats[worker_id] = time.monotonic()

    def _run_batch(self, worker_id: int, batch: Batch) -> None:
        model_id, kind, spec_json, example_shape, dtype_str = batch.key
        with _trace.attach(batch.items[0].request.trace_parent):
            with _trace.span(
                "serve.batch",
                {"kind": kind, "examples": batch.examples, "pad_to": batch.pad_to}
                if _trace.enabled()
                else None,
            ):
                self._run_batch_inner(worker_id, batch)

    def _live_items(self, batch: Batch) -> List[WorkItem]:
        """The batch items still worth executing: deadline-expired requests
        are failed (counted once per request) and requests already resolved
        (an earlier chunk expired) are skipped, so neither occupies a slot.
        """
        now = time.monotonic()
        live: List[WorkItem] = []
        for item in batch.items:
            request = item.request
            if request.expired(now):
                request.fail(
                    f"deadline_ms={request.deadline_ms:g} expired before execution",
                    code="deadline_exceeded",
                )
            elif not request.done:
                live.append(item)
        return live

    def _run_batch_inner(self, worker_id: int, batch: Batch) -> None:
        model_id, kind, spec_json, example_shape, dtype_str = batch.key
        items = self._live_items(batch)
        if not items:
            return
        examples = sum(item.count for item in items)
        # Survivors of a deadline cull re-fit to the smallest bucket — the
        # identical padding computation the offline engine would perform.
        pad_to = (
            batch.pad_to if examples == batch.examples else self.buckets.fit(examples)
        )
        now = time.monotonic()
        self.stats.record_batch(
            examples, pad_to, [now - item.enqueued for item in items]
        )
        try:
            entry = self.pool.get(model_id)
        except Exception as error:
            for item in items:
                item.request.fail(str(error))
            return
        images = np.zeros((pad_to,) + example_shape, dtype=np.dtype(dtype_str))
        labels = np.zeros(pad_to, dtype=np.int64)
        offsets: List[Tuple[WorkItem, int]] = []
        cursor = 0
        for item in items:
            images[cursor : cursor + item.count] = item.images
            if item.labels is not None:
                labels[cursor : cursor + item.count] = item.labels
            offsets.append((item, cursor))
            cursor += item.count
        try:
            view = entry.view(worker_id, images, self.buckets)
            if kind == "classify":
                logits = view(images)
                predictions = np.argmax(logits, axis=1)
                for item, offset in offsets:
                    result = {
                        "predictions": predictions[offset : offset + item.count].copy()
                    }
                    if item.request.return_logits:
                        result["logits"] = logits[offset : offset + item.count].copy()
                    item.request.complete_chunk(item.start, result)
            else:
                spec = AttackSpec.from_json(spec_json)
                attack = spec.build(entry.module).use_compiled(view)
                adversarial = attack.attack(images, labels)
                predictions = view.predict(adversarial)
                for item, offset in offsets:
                    item.request.complete_chunk(
                        item.start,
                        {
                            "adversarial": adversarial[
                                offset : offset + item.count
                            ].copy(),
                            "predictions": predictions[
                                offset : offset + item.count
                            ].copy(),
                        },
                    )
        except Exception as error:
            for item in items:
                item.request.fail(f"{type(error).__name__}: {error}")

    def _run_job(self, worker_id: int, job: _Job) -> None:
        request = job.request
        if request.expired():
            request.fail(
                f"deadline_ms={request.deadline_ms:g} expired before execution",
                code="deadline_exceeded",
            )
            return
        self.stats.record_job()
        with _trace.attach(request.trace_parent):
            with _trace.span(
                "serve.job",
                {"kind": request.kind} if _trace.enabled() else None,
            ):
                try:
                    if request.kind == "stats":
                        request.resolve(self._stats_result())
                    elif request.kind == "robustness":
                        request.resolve(self._run_robustness(request))
                    else:
                        request.resolve(self._run_single_attack(worker_id, request))
                except Exception as error:
                    request.fail(f"{type(error).__name__}: {error}")

    def _run_single_attack(
        self, worker_id: int, request: _PendingRequest
    ) -> Dict[str, Any]:
        """A stochastic attack request, served whole (unpadded, fresh instance)."""
        entry = self.pool.get(request.model_id)
        view = entry.view(worker_id, request.images, self.buckets)
        attack = request.spec.build(entry.module).use_compiled(view)
        adversarial = attack.attack(request.images, request.labels)
        predictions = view.predict(adversarial)
        return {"adversarial": adversarial, "predictions": predictions.copy()}

    def _run_robustness(self, request: _PendingRequest) -> Dict[str, Any]:
        entry = self.pool.get(request.model_id)
        options = dict(request.options or {})
        options.setdefault("batch_size", self.buckets.max_size)
        options.setdefault("compile", True)
        cache_key = None
        if self.store is not None and not entry.live:
            cache_key = robustness_cache_key(
                entry.model_id, request.suite, options, request.images, request.labels
            )
            record = self.store.load_serve_report(cache_key)
            hit = record is not None
            self.stats.record_report_cache(hit)
            if hit:
                return {"report": record["report"], "cached": True, "key": cache_key}
        suite = (
            None
            if request.suite is None
            else [AttackSpec.from_dict(entry_) for entry_ in request.suite]
        )
        # Robustness evaluation instruments the *shared* module (forward-pass
        # counters are installed on it), so concurrent suites against the
        # same entry serialize here; batched classify/attack traffic on the
        # workers' own compiled views keeps flowing.
        with entry.engine_lock:
            report = evaluate_robustness(
                entry.module,
                request.images,
                request.labels,
                attacks=suite,
                method_name=request.model_id,
                **options,
            )
        result_dict = report.result.as_dict()
        if cache_key is not None:
            self.store.save_serve_report(
                cache_key,
                {
                    "report": result_dict,
                    "model": entry.model_id,
                    "suite": request.suite,
                    "options": options,
                },
            )
        return {"report": result_dict, "cached": False, "key": cache_key}

    def _stats_result(self) -> Dict[str, Any]:
        return {
            "server": self.stats.snapshot(),
            "models": self.pool.stats(),
            #: per-model, per-signature executor profiles ({} until the obs
            #: profiler has seen a replay — see repro.obs.profiler).
            "profile": self.pool.profiles(),
            "queue_depth": self.queue.depth,
            "buckets": list(self.buckets.sizes),
            "workers": self.workers,
        }

    # -- health / SLOs -----------------------------------------------------------
    #: rolling error rate at/above which the server reports ``degraded``.
    DEGRADED_ERROR_RATE = 0.5
    #: queue utilization at/above which the server reports ``degraded``.
    DEGRADED_QUEUE_UTILIZATION = 0.8

    def health(self) -> Dict[str, Any]:
        """The SLO health report (also served as the ``health`` kind)."""
        return self._health_result()

    def _health_result(self) -> Dict[str, Any]:
        now = time.monotonic()
        ages = {
            worker_id: now - beat for worker_id, beat in sorted(self._heartbeats.items())
        }
        stalled = [
            worker_id for worker_id, age in ages.items() if age >= self.stall_after_s
        ]
        depth = self.queue.depth
        max_depth = self.queue.max_depth
        utilization = depth / max_depth if max_depth else 0.0
        window = self.stats.window.snapshot()
        queue_full = max_depth is not None and depth >= max_depth
        all_stalled = self._started and len(stalled) == len(self._heartbeats) > 0
        if all_stalled or queue_full:
            status = "overloaded"
        elif (
            stalled
            or window["error_rate"] >= self.DEGRADED_ERROR_RATE
            or utilization >= self.DEGRADED_QUEUE_UTILIZATION > 0
        ):
            status = "degraded"
        else:
            status = "ok"
        pool_stats = self.pool.stats()
        return {
            "status": status,
            "started": self._started,
            "workers": {
                "configured": self.workers,
                "stalled": stalled,
                "stall_after_s": self.stall_after_s,
                "heartbeat_age_s": {str(k): v for k, v in ages.items()},
            },
            "queue": {
                "depth": depth,
                "max_depth": max_depth,
                "utilization": utilization,
            },
            "window": window,
            "counters": {
                "errors": self.stats.errors,
                "shed": self.stats.shed,
                "deadline_exceeded": self.stats.deadline_exceeded,
            },
            "pool": {
                "models": len(pool_stats),
                "allocations": self.pool.pool_allocations(),
            },
        }


# --------------------------------------------------------------------------- #
# asyncio socket transport (newline-delimited JSON)
# --------------------------------------------------------------------------- #
#: per-line read limit — base64 image batches dwarf asyncio's 64 KiB default.
_READ_LIMIT = 256 * 1024 * 1024


async def start_socket_server(
    server: RobustnessServer, host: str = "127.0.0.1", port: int = 0
):
    """Expose a started :class:`RobustnessServer` over a TCP socket.

    One JSON request per line; responses stream back **as they complete**
    (out of order relative to arrival — clients correlate by ``id``).
    Returns the ``asyncio.Server``; its first socket's ``getsockname()``
    reveals the bound port when ``port=0``.
    """
    loop = asyncio.get_running_loop()

    async def handle_connection(reader, writer):
        out: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue()

        async def drain() -> None:
            while True:
                response = await out.get()
                if response is None:
                    break
                try:
                    writer.write((json.dumps(response) + "\n").encode("utf-8"))
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break

        writer_task = asyncio.ensure_future(drain())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = json.loads(line)
                except json.JSONDecodeError as error:
                    out.put_nowait({"id": None, "ok": False, "error": str(error)})
                    continue
                future = server.submit(message)
                future.add_done_callback(
                    lambda f: loop.call_soon_threadsafe(out.put_nowait, f.result())
                )
        finally:
            out.put_nowait(None)
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    return await asyncio.start_server(handle_connection, host, port, limit=_READ_LIMIT)
