"""Clients for :mod:`repro.serve`: in-process and over the socket.

:class:`ServeClient` wraps a running :class:`RobustnessServer` directly —
the shape used by tests and benches (no socket, same request lifecycle,
including coalescing across concurrent client threads).
:class:`SocketServeClient` speaks the newline-delimited JSON protocol to a
``python -m repro.serve`` process.  Both expose the same four calls and
return decoded result dicts (ndarray values restored), raising
:class:`ServeError` on error responses.
"""

from __future__ import annotations

import json
import socket
import threading
from itertools import count
from typing import Any, Dict, List, Optional

import numpy as np

from .protocol import decode_payload, encode_payload

__all__ = ["ServeClient", "SocketServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The server answered ``ok: false``."""


def _check(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        raise ServeError(response.get("error", "unknown server error"))
    return decode_payload(response["result"])


class _RequestBuilder:
    """Shared request assembly for both transports."""

    def __init__(self) -> None:
        self._ids = count()
        self._lock = threading.Lock()

    def _next_id(self) -> int:
        with self._lock:
            return next(self._ids)

    def classify_request(
        self, model: str, images: np.ndarray, return_logits: bool = False
    ) -> Dict[str, Any]:
        return encode_payload(
            {
                "id": self._next_id(),
                "kind": "classify",
                "model": model,
                "images": np.asarray(images),
                "return_logits": bool(return_logits),
            }
        )

    def attack_request(
        self, model: str, spec, images: np.ndarray, labels: np.ndarray
    ) -> Dict[str, Any]:
        spec_dict = spec.as_dict() if hasattr(spec, "as_dict") else dict(spec)
        return encode_payload(
            {
                "id": self._next_id(),
                "kind": "attack",
                "model": model,
                "spec": spec_dict,
                "images": np.asarray(images),
                "labels": np.asarray(labels),
            }
        )

    def robustness_request(
        self,
        model: str,
        images: np.ndarray,
        labels: np.ndarray,
        suite: Optional[List] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        suite_dicts = None
        if suite is not None:
            suite_dicts = [
                entry.as_dict() if hasattr(entry, "as_dict") else dict(entry)
                for entry in suite
            ]
        return encode_payload(
            {
                "id": self._next_id(),
                "kind": "robustness",
                "model": model,
                "images": np.asarray(images),
                "labels": np.asarray(labels),
                "suite": suite_dicts,
                "options": dict(options or {}),
            }
        )

    def stats_request(self) -> Dict[str, Any]:
        return {"id": self._next_id(), "kind": "stats"}


class ServeClient(_RequestBuilder):
    """In-process client bound to a running :class:`RobustnessServer`.

    Calls block until the response arrives but the work itself is executed
    by the server's worker threads, so many :class:`ServeClient` calls from
    different threads coalesce into shared batches exactly like socket
    traffic does.
    """

    def __init__(self, server) -> None:
        super().__init__()
        self.server = server

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return _check(self.server.submit(request).result())

    def classify(self, model: str, images, return_logits: bool = False):
        return self._roundtrip(self.classify_request(model, images, return_logits))

    def attack(self, model: str, spec, images, labels):
        return self._roundtrip(self.attack_request(model, spec, images, labels))

    def robustness(self, model: str, images, labels, suite=None, options=None):
        return self._roundtrip(
            self.robustness_request(model, images, labels, suite, options)
        )

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip(self.stats_request())


class SocketServeClient(_RequestBuilder):
    """Blocking JSON-over-socket client (one request in flight per instance).

    The server streams responses in completion order across the whole
    connection, but this client sends one request at a time and matches the
    response by ``id``, so each instance is a simple synchronous channel —
    run several instances (one per thread) for concurrency.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7341, timeout: float = 300.0) -> None:
        super().__init__()
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._io_lock = threading.Lock()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._io_lock:
            self._file.write(json.dumps(request).encode("utf-8") + b"\n")
            self._file.flush()
            while True:
                line = self._file.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                response = json.loads(line)
                if response.get("id") == request["id"]:
                    return _check(response)

    def classify(self, model: str, images, return_logits: bool = False):
        return self._roundtrip(self.classify_request(model, images, return_logits))

    def attack(self, model: str, spec, images, labels):
        return self._roundtrip(self.attack_request(model, spec, images, labels))

    def robustness(self, model: str, images, labels, suite=None, options=None):
        return self._roundtrip(
            self.robustness_request(model, images, labels, suite, options)
        )

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip(self.stats_request())
