"""Clients for :mod:`repro.serve`: in-process and over the socket.

:class:`ServeClient` wraps a running :class:`RobustnessServer` directly —
the shape used by tests and benches (no socket, same request lifecycle,
including coalescing across concurrent client threads).
:class:`SocketServeClient` speaks the newline-delimited JSON protocol to a
``python -m repro.serve`` process.  Both expose the same calls and return
decoded result dicts (ndarray values restored), raising :class:`ServeError`
on error responses — server-side SLO rejections carry a machine-readable
``code`` and surface as the typed subclasses
:class:`DeadlineExceededError` / :class:`OverloadedError`, so callers can
retry-with-backoff on overload without string-matching error text.
"""

from __future__ import annotations

import json
import socket
import threading
from itertools import count
from typing import Any, Dict, List, Optional

import numpy as np

from .protocol import decode_payload, encode_payload

__all__ = [
    "ServeClient",
    "SocketServeClient",
    "ServeError",
    "DeadlineExceededError",
    "OverloadedError",
    "ServeTimeoutError",
]


class ServeError(RuntimeError):
    """The server answered ``ok: false``."""

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


class DeadlineExceededError(ServeError):
    """The request's ``deadline_ms`` expired before the server executed it."""


class OverloadedError(ServeError):
    """Admission control shed the request: the queue is at capacity."""


class ServeTimeoutError(ServeError):
    """The socket timed out waiting for the server (client-side deadline)."""


_ERROR_TYPES = {
    "deadline_exceeded": DeadlineExceededError,
    "overloaded": OverloadedError,
}


def _check(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        code = response.get("code")
        error_type = _ERROR_TYPES.get(code, ServeError)
        raise error_type(response.get("error", "unknown server error"), code=code)
    return decode_payload(response["result"])


class _RequestBuilder:
    """Shared request assembly for both transports."""

    def __init__(self) -> None:
        self._ids = count()
        self._lock = threading.Lock()

    def _next_id(self) -> int:
        with self._lock:
            return next(self._ids)

    @staticmethod
    def _with_deadline(
        message: Dict[str, Any], deadline_ms: Optional[float]
    ) -> Dict[str, Any]:
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
        return message

    def classify_request(
        self,
        model: str,
        images: np.ndarray,
        return_logits: bool = False,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        return encode_payload(
            self._with_deadline(
                {
                    "id": self._next_id(),
                    "kind": "classify",
                    "model": model,
                    "images": np.asarray(images),
                    "return_logits": bool(return_logits),
                },
                deadline_ms,
            )
        )

    def attack_request(
        self,
        model: str,
        spec,
        images: np.ndarray,
        labels: np.ndarray,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        spec_dict = spec.as_dict() if hasattr(spec, "as_dict") else dict(spec)
        return encode_payload(
            self._with_deadline(
                {
                    "id": self._next_id(),
                    "kind": "attack",
                    "model": model,
                    "spec": spec_dict,
                    "images": np.asarray(images),
                    "labels": np.asarray(labels),
                },
                deadline_ms,
            )
        )

    def robustness_request(
        self,
        model: str,
        images: np.ndarray,
        labels: np.ndarray,
        suite: Optional[List] = None,
        options: Optional[Dict[str, Any]] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        suite_dicts = None
        if suite is not None:
            suite_dicts = [
                entry.as_dict() if hasattr(entry, "as_dict") else dict(entry)
                for entry in suite
            ]
        return encode_payload(
            self._with_deadline(
                {
                    "id": self._next_id(),
                    "kind": "robustness",
                    "model": model,
                    "images": np.asarray(images),
                    "labels": np.asarray(labels),
                    "suite": suite_dicts,
                    "options": dict(options or {}),
                },
                deadline_ms,
            )
        )

    def stats_request(self) -> Dict[str, Any]:
        return {"id": self._next_id(), "kind": "stats"}

    def health_request(self) -> Dict[str, Any]:
        return {"id": self._next_id(), "kind": "health"}


class ServeClient(_RequestBuilder):
    """In-process client bound to a running :class:`RobustnessServer`.

    Calls block until the response arrives but the work itself is executed
    by the server's worker threads, so many :class:`ServeClient` calls from
    different threads coalesce into shared batches exactly like socket
    traffic does.
    """

    def __init__(self, server) -> None:
        super().__init__()
        self.server = server

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return _check(self.server.submit(request).result())

    def classify(self, model: str, images, return_logits: bool = False, deadline_ms=None):
        return self._roundtrip(
            self.classify_request(model, images, return_logits, deadline_ms=deadline_ms)
        )

    def attack(self, model: str, spec, images, labels, deadline_ms=None):
        return self._roundtrip(
            self.attack_request(model, spec, images, labels, deadline_ms=deadline_ms)
        )

    def robustness(self, model: str, images, labels, suite=None, options=None, deadline_ms=None):
        return self._roundtrip(
            self.robustness_request(
                model, images, labels, suite, options, deadline_ms=deadline_ms
            )
        )

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip(self.stats_request())

    def health(self) -> Dict[str, Any]:
        return self._roundtrip(self.health_request())


class SocketServeClient(_RequestBuilder):
    """Blocking JSON-over-socket client (one request in flight per instance).

    The server streams responses in completion order across the whole
    connection, but this client sends one request at a time and matches the
    response by ``id``, so each instance is a simple synchronous channel —
    run several instances (one per thread) for concurrency.

    ``timeout`` bounds every read (a stalled server surfaces as
    :class:`ServeTimeoutError` instead of a hang); ``connect_timeout``
    bounds only the initial connection (defaults to ``timeout``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7341,
        timeout: float = 300.0,
        connect_timeout: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.timeout = timeout
        self._sock = socket.create_connection(
            (host, port),
            timeout=timeout if connect_timeout is None else connect_timeout,
        )
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self._io_lock = threading.Lock()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._io_lock:
            try:
                self._file.write(json.dumps(request).encode("utf-8") + b"\n")
                self._file.flush()
                while True:
                    line = self._file.readline()
                    if not line:
                        raise ConnectionError("server closed the connection")
                    response = json.loads(line)
                    if response.get("id") == request["id"]:
                        return _check(response)
            except socket.timeout as error:
                raise ServeTimeoutError(
                    f"no response within {self.timeout}s", code="timeout"
                ) from error

    def classify(self, model: str, images, return_logits: bool = False, deadline_ms=None):
        return self._roundtrip(
            self.classify_request(model, images, return_logits, deadline_ms=deadline_ms)
        )

    def attack(self, model: str, spec, images, labels, deadline_ms=None):
        return self._roundtrip(
            self.attack_request(model, spec, images, labels, deadline_ms=deadline_ms)
        )

    def robustness(self, model: str, images, labels, suite=None, options=None, deadline_ms=None):
        return self._roundtrip(
            self.robustness_request(
                model, images, labels, suite, options, deadline_ms=deadline_ms
            )
        )

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip(self.stats_request())

    def health(self) -> Dict[str, Any]:
        return self._roundtrip(self.health_request())
