"""Checkpoint resolution and compiled-model ownership for the server.

A :class:`ModelPool` entry pins one resolved model: the shared eval-mode
module plus one compiled view **per worker thread** (plans and their buffer
pools are single-threaded by design, so workers never share a plan; the
module's weights are shared and read-only while serving).  Checkpoints are
resolved through the :class:`~repro.experiments.store.ArtifactStore` by
training-hash prefix and loaded lazily, with LRU eviction past ``capacity``;
in-process modules registered via :meth:`ModelPool.register` are pinned and
served through :class:`~repro.compile.training.LiveEvalModel` so weight
updates between requests are honoured.

On a worker's first batch against an entry the pool builds the compiled
view and immediately warms every configured bucket signature
(:meth:`CompiledModel.warm` bypasses the compile-on-second-sighting
policy), so steady-state batches — all of which are padded to bucket
sizes — replay already-traced plans and allocate nothing.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from ..compile import CompileError, compile_model
from ..compile.training import LiveEvalModel
from ..obs.profiler import merge_profiles
from ..models.base import ImageClassifier
from ..nn import get_default_dtype
from .queueing import BucketConfig

__all__ = ["ModelPool", "ModelNotFound"]


class ModelNotFound(KeyError):
    """No registered module or stored checkpoint matches the model id."""


class _Entry:
    def __init__(
        self,
        model_id: str,
        module: ImageClassifier,
        live: bool,
        provider: Optional[str] = None,
    ) -> None:
        self.model_id = model_id
        self.module = module
        #: registered in-process module (live weights) vs. frozen checkpoint.
        self.live = live
        #: kernel-provider name every worker view compiles with.
        self.provider = provider
        #: serializes view construction and bucket warming per worker.
        self.lock = threading.RLock()
        #: serializes whole-model eager instrumentation (robustness jobs
        #: monkeypatch ``forward_with_hidden`` on the shared module).
        self.engine_lock = threading.Lock()
        self.views: Dict[int, object] = {}
        self._warmed: set = set()
        self.last_used = 0

    def view(self, worker_id: int, sample: np.ndarray, buckets: BucketConfig):
        """This worker's compiled view, built and bucket-warmed on first use."""
        with self.lock:
            view = self.views.get(worker_id)
            if view is None:
                if self.live:
                    view = LiveEvalModel(
                        self.module,
                        max_plans=len(buckets.sizes) + 4,
                        provider=self.provider,
                    )
                else:
                    view = compile_model(
                        self.module,
                        sample,
                        max_plans=len(buckets.sizes) + 4,
                        provider=self.provider,
                    )
                self.views[worker_id] = view
            example_shape = tuple(sample.shape[1:])
            warm_key = (worker_id, example_shape)
            if warm_key not in self._warmed:
                self._warmed.add(warm_key)
                dtype = get_default_dtype()
                view.warm(
                    np.zeros((size,) + example_shape, dtype=dtype)
                    for size in buckets.sizes
                )
            return view

    def cache_stats(self) -> Dict[str, int]:
        """Signature-cache counters summed across this entry's worker views."""
        totals: Dict[str, int] = {}
        with self.lock:
            views = list(self.views.values())
        for view in views:
            for key, value in view.cache_stats().items():
                if key == "capacity":
                    continue
                totals[key] = totals.get(key, 0) + value
        return totals

    def pool_allocations(self) -> int:
        with self.lock:
            views = list(self.views.values())
        return sum(view.pool_allocations for view in views)

    def profiles(self) -> Dict[str, dict]:
        """Per-signature executor profiles merged across this entry's views.

        Empty unless the obs profiler has been on for at least one replay
        (see :mod:`repro.obs.profiler`).
        """
        with self.lock:
            views = list(self.views.values())
        merged: Dict[str, dict] = {}
        for view in views:
            merge_profiles(merged, view.profile())
        return merged


class ModelPool:
    """Lazy, LRU-bounded cache of resolved models and their compiled views."""

    def __init__(
        self,
        store=None,
        capacity: int = 4,
        buckets: Optional[BucketConfig] = None,
        provider: Optional[str] = None,
    ) -> None:
        self.store = store
        self.capacity = int(capacity)
        self.buckets = buckets or BucketConfig()
        self.provider = provider
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.Lock()
        self._tick = 0
        self.evictions = 0

    # -- registration / resolution -----------------------------------------------
    def register(self, name: str, module: ImageClassifier) -> None:
        """Serve an in-process module under ``name`` (pinned, live weights)."""
        module.eval()
        with self._lock:
            self._entries[name] = _Entry(name, module, live=True, provider=self.provider)

    def get(self, model_id: str) -> _Entry:
        """The entry for a registered name or stored training-hash prefix."""
        with self._lock:
            entry = self._entries.get(model_id)
            if entry is not None:
                self._tick += 1
                entry.last_used = self._tick
                return entry
        entry = self._load(model_id)
        with self._lock:
            # Another worker may have loaded the same model concurrently;
            # keep the first published entry so plans are not duplicated.
            existing = self._entries.get(entry.model_id)
            if existing is None:
                self._entries[entry.model_id] = existing = entry
                self._evict_lru()
            self._tick += 1
            existing.last_used = self._tick
            if entry.model_id != model_id:
                # Remember the prefix alias so repeat lookups skip the store.
                self._entries.setdefault(model_id, existing)
            return existing

    def _load(self, model_id: str) -> _Entry:
        if self.store is None:
            raise ModelNotFound(f"unknown model '{model_id}' (no store configured)")
        try:
            full_hash = self.store.resolve_model_hash(model_id)
        except ValueError as error:
            raise ModelNotFound(str(error)) from error
        if full_hash is None:
            raise ModelNotFound(f"no stored checkpoint matches '{model_id}'")
        module = self.store.load_model_by_hash(full_hash)
        if module is None:
            raise ModelNotFound(f"checkpoint '{full_hash}' is missing or corrupt")
        module.eval()
        return _Entry(full_hash, module, live=False, provider=self.provider)

    def _evict_lru(self) -> None:
        """Drop least-recently-used checkpoint entries past capacity (locked).

        Registered (live) entries are pinned.  Alias keys pointing at an
        evicted entry die with it.
        """
        while True:
            loaded = {
                id(e): e for e in self._entries.values() if not e.live
            }
            if len(loaded) <= self.capacity:
                return
            victim = min(loaded.values(), key=lambda e: e.last_used)
            self.evictions += 1
            for key in [k for k, e in self._entries.items() if e is victim]:
                del self._entries[key]

    # -- telemetry ---------------------------------------------------------------
    def stats(self) -> Dict[str, Dict]:
        with self._lock:
            entries = {e.model_id: e for e in self._entries.values()}
        return {
            model_id: {
                "live": entry.live,
                "workers": len(entry.views),
                "cache": entry.cache_stats(),
                "pool_allocations": entry.pool_allocations(),
            }
            for model_id, entry in entries.items()
        }

    def pool_allocations(self) -> int:
        """Buffer allocations across every loaded entry (steady state: flat)."""
        with self._lock:
            entries = list(self._entries.values())
        return sum(entry.pool_allocations() for entry in {id(e): e for e in entries}.values())

    def profiles(self) -> Dict[str, Dict[str, dict]]:
        """``model_id -> per-signature executor profile`` for every entry.

        The ``profile`` field of the serve ``stats`` endpoint; entries
        without profiled replays report ``{}``.
        """
        with self._lock:
            entries = {e.model_id: e for e in self._entries.values()}
        return {model_id: entry.profiles() for model_id, entry in entries.items()}
