"""Per-request / per-batch telemetry for the serve layer.

One :class:`ServerStats` instance is shared by every worker; all mutation
happens under its lock.  Latency and queue-time distributions are kept in
bounded reservoirs (most recent ``maxlen`` observations) so a long-running
server reports recent behaviour, not its cold start, and the ``stats``
endpoint stays O(reservoir) no matter how much traffic has passed.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["ServerStats", "percentile"]


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a sequence; 0.0 when empty."""
    data = sorted(values)
    if not data:
        return 0.0
    rank = max(0, min(len(data) - 1, int(round(q / 100.0 * (len(data) - 1)))))
    return float(data[rank])


class ServerStats:
    """Counters + bounded latency reservoirs behind the ``stats`` endpoint."""

    def __init__(self, reservoir: int = 4096) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.requests: Dict[str, int] = {}
        self.errors = 0
        self.examples = 0
        self.batches = 0
        self.batched_examples = 0
        self.padded_examples = 0
        self.jobs = 0
        self.report_cache_hits = 0
        self.report_cache_misses = 0
        self._latencies: Dict[str, Deque[float]] = {}
        self._queue_times: Deque[float] = deque(maxlen=reservoir)
        self._batch_sizes: Deque[int] = deque(maxlen=reservoir)
        self._reservoir = reservoir

    def reset(self) -> None:
        """Zero every counter and reservoir (e.g. after a warmup pass)."""
        with self._lock:
            self._started = time.monotonic()
            self.requests = {}
            self.errors = 0
            self.examples = 0
            self.batches = 0
            self.batched_examples = 0
            self.padded_examples = 0
            self.jobs = 0
            self.report_cache_hits = 0
            self.report_cache_misses = 0
            self._latencies = {}
            self._queue_times = deque(maxlen=self._reservoir)
            self._batch_sizes = deque(maxlen=self._reservoir)

    # -- recording ---------------------------------------------------------------
    def record_request(
        self, kind: str, latency: float, examples: int = 0, error: bool = False
    ) -> None:
        with self._lock:
            self.requests[kind] = self.requests.get(kind, 0) + 1
            self.examples += examples
            if error:
                self.errors += 1
            reservoir = self._latencies.get(kind)
            if reservoir is None:
                reservoir = self._latencies[kind] = deque(maxlen=self._reservoir)
            reservoir.append(latency)

    def record_batch(self, examples: int, pad_to: int, queue_times) -> None:
        with self._lock:
            self.batches += 1
            self.batched_examples += examples
            self.padded_examples += pad_to - examples
            self._batch_sizes.append(pad_to)
            self._queue_times.extend(queue_times)

    def record_job(self) -> None:
        with self._lock:
            self.jobs += 1

    def record_report_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.report_cache_hits += 1
            else:
                self.report_cache_misses += 1

    # -- reporting ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            elapsed = max(time.monotonic() - self._started, 1e-9)
            total_slots = self.batched_examples + self.padded_examples
            latencies = {
                kind: {
                    "count": len(reservoir),
                    "p50_ms": percentile(reservoir, 50) * 1e3,
                    "p95_ms": percentile(reservoir, 95) * 1e3,
                    "p99_ms": percentile(reservoir, 99) * 1e3,
                }
                for kind, reservoir in self._latencies.items()
            }
            all_latencies = [v for r in self._latencies.values() for v in r]
            return {
                "uptime_s": elapsed,
                "requests": dict(self.requests),
                "errors": self.errors,
                "examples": self.examples,
                "examples_per_sec": self.examples / elapsed,
                "batches": self.batches,
                "batched_examples": self.batched_examples,
                "padded_examples": self.padded_examples,
                "pad_waste_pct": (
                    100.0 * self.padded_examples / total_slots if total_slots else 0.0
                ),
                "mean_batch_size": (
                    sum(self._batch_sizes) / len(self._batch_sizes)
                    if self._batch_sizes
                    else 0.0
                ),
                "jobs": self.jobs,
                "report_cache": {
                    "hits": self.report_cache_hits,
                    "misses": self.report_cache_misses,
                },
                "queue_ms": {
                    "p50": percentile(self._queue_times, 50) * 1e3,
                    "p95": percentile(self._queue_times, 95) * 1e3,
                    "p99": percentile(self._queue_times, 99) * 1e3,
                },
                "latency_ms": {
                    "p50": percentile(all_latencies, 50) * 1e3,
                    "p95": percentile(all_latencies, 95) * 1e3,
                    "p99": percentile(all_latencies, 99) * 1e3,
                },
                "latency_ms_by_kind": latencies,
            }
