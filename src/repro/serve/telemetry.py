"""Per-request / per-batch telemetry for the serve layer.

One :class:`ServerStats` instance is shared by every worker.  Since PR 7 it
is a **thin view over the shared observability registry**
(:mod:`repro.obs.registry`): every counter and reservoir is a labeled
series (``serve.*{server=...}``, per-kind latencies additionally labeled
``{kind=...}``), so a registry snapshot or Prometheus scrape sees the same
numbers the ``stats`` endpoint reports — byte-identical, because
:meth:`snapshot` computes the identical dict from the identical reservoir
contents with the same nearest-rank :func:`percentile`.

Latency and queue-time distributions are bounded reservoirs (most recent
``maxlen`` observations) so a long-running server reports recent
behaviour, not its cold start, and the ``stats`` endpoint stays
O(reservoir) no matter how much traffic has passed.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Optional

from ..obs.registry import Counter, Histogram, get_registry, percentile

__all__ = ["ServerStats", "percentile"]

#: unique per-instance label so concurrent servers never share series.
_instance_ids = itertools.count(1)


class ServerStats:
    """Counters + bounded latency reservoirs behind the ``stats`` endpoint."""

    def __init__(self, reservoir: int = 4096, name: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._reservoir = reservoir
        self._registry = get_registry()
        self._labels = {"server": name or f"server-{next(_instance_ids)}"}
        reg = self._registry
        self._requests: Dict[str, Counter] = {}
        self._errors = reg.counter("serve.errors", self._labels)
        self._examples = reg.counter("serve.examples", self._labels)
        self._batches = reg.counter("serve.batches", self._labels)
        self._batched_examples = reg.counter("serve.batched_examples", self._labels)
        self._padded_examples = reg.counter("serve.padded_examples", self._labels)
        self._jobs = reg.counter("serve.jobs", self._labels)
        self._report_cache_hits = reg.counter("serve.report_cache_hits", self._labels)
        self._report_cache_misses = reg.counter(
            "serve.report_cache_misses", self._labels
        )
        self._latencies: Dict[str, Histogram] = {}
        self._queue_times = reg.histogram(
            "serve.queue_seconds", self._labels, maxlen=reservoir
        )
        self._batch_sizes = reg.histogram(
            "serve.batch_size", self._labels, maxlen=reservoir
        )

    # -- registry read-through (legacy attribute shapes) -------------------------
    @property
    def requests(self) -> Dict[str, int]:
        with self._lock:
            return {kind: counter.value for kind, counter in self._requests.items()}

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def examples(self) -> int:
        return self._examples.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def batched_examples(self) -> int:
        return self._batched_examples.value

    @property
    def padded_examples(self) -> int:
        return self._padded_examples.value

    @property
    def jobs(self) -> int:
        return self._jobs.value

    @property
    def report_cache_hits(self) -> int:
        return self._report_cache_hits.value

    @property
    def report_cache_misses(self) -> int:
        return self._report_cache_misses.value

    def _kind_series(self, kind: str) -> tuple:
        """(request counter, latency reservoir) for one request kind."""
        counter = self._requests.get(kind)
        if counter is None:
            labels = dict(self._labels)
            labels["kind"] = kind
            counter = self._requests[kind] = self._registry.counter(
                "serve.requests", labels
            )
            self._latencies[kind] = self._registry.histogram(
                "serve.latency_seconds", labels, maxlen=self._reservoir
            )
        return counter, self._latencies[kind]

    def reset(self) -> None:
        """Zero every counter and reservoir (e.g. after a warmup pass)."""
        with self._lock:
            self._started = time.monotonic()
            for metric in (
                self._errors,
                self._examples,
                self._batches,
                self._batched_examples,
                self._padded_examples,
                self._jobs,
                self._report_cache_hits,
                self._report_cache_misses,
                self._queue_times,
                self._batch_sizes,
                *self._requests.values(),
                *self._latencies.values(),
            ):
                metric.reset()
            self._requests = {}
            self._latencies = {}

    # -- recording ---------------------------------------------------------------
    def record_request(
        self, kind: str, latency: float, examples: int = 0, error: bool = False
    ) -> None:
        with self._lock:
            counter, reservoir = self._kind_series(kind)
        counter.inc()
        self._examples.inc(examples)
        if error:
            self._errors.inc()
        reservoir.observe(latency)

    def record_batch(self, examples: int, pad_to: int, queue_times) -> None:
        self._batches.inc()
        self._batched_examples.inc(examples)
        self._padded_examples.inc(pad_to - examples)
        self._batch_sizes.observe(pad_to)
        self._queue_times.extend(queue_times)

    def record_job(self) -> None:
        self._jobs.inc()

    def record_report_cache(self, hit: bool) -> None:
        if hit:
            self._report_cache_hits.inc()
        else:
            self._report_cache_misses.inc()

    # -- reporting ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            elapsed = max(time.monotonic() - self._started, 1e-9)
            kinds = {
                kind: (counter, self._latencies[kind])
                for kind, counter in self._requests.items()
            }
            batched = self._batched_examples.value
            padded = self._padded_examples.value
            total_slots = batched + padded
            batch_sizes = self._batch_sizes.values()
            queue_times = self._queue_times.values()
        reservoirs = {kind: series[1].values() for kind, series in kinds.items()}
        latencies = {
            kind: {
                "count": len(reservoir),
                "p50_ms": percentile(reservoir, 50) * 1e3,
                "p95_ms": percentile(reservoir, 95) * 1e3,
                "p99_ms": percentile(reservoir, 99) * 1e3,
            }
            for kind, reservoir in reservoirs.items()
        }
        all_latencies = [v for r in reservoirs.values() for v in r]
        examples = self._examples.value
        return {
            "uptime_s": elapsed,
            "requests": {kind: series[0].value for kind, series in kinds.items()},
            "errors": self._errors.value,
            "examples": examples,
            "examples_per_sec": examples / elapsed,
            "batches": self._batches.value,
            "batched_examples": batched,
            "padded_examples": padded,
            "pad_waste_pct": (
                100.0 * padded / total_slots if total_slots else 0.0
            ),
            "mean_batch_size": (
                sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
            ),
            "jobs": self._jobs.value,
            "report_cache": {
                "hits": self._report_cache_hits.value,
                "misses": self._report_cache_misses.value,
            },
            "queue_ms": {
                "p50": percentile(queue_times, 50) * 1e3,
                "p95": percentile(queue_times, 95) * 1e3,
                "p99": percentile(queue_times, 99) * 1e3,
            },
            "latency_ms": {
                "p50": percentile(all_latencies, 50) * 1e3,
                "p95": percentile(all_latencies, 95) * 1e3,
                "p99": percentile(all_latencies, 99) * 1e3,
            },
            "latency_ms_by_kind": latencies,
        }
