"""Per-request / per-batch telemetry for the serve layer.

One :class:`ServerStats` instance is shared by every worker.  Since PR 7 it
is a **thin view over the shared observability registry**
(:mod:`repro.obs.registry`): every counter and reservoir is a labeled
series (``serve.*{server=...}``, per-kind latencies additionally labeled
``{kind=...}``), so a registry snapshot or Prometheus scrape sees the same
numbers the ``stats`` endpoint reports — byte-identical, because
:meth:`snapshot` computes the identical dict from the identical reservoir
contents with the same nearest-rank :func:`percentile`.

Latency and queue-time distributions are bounded reservoirs (most recent
``maxlen`` observations) so a long-running server reports recent
behaviour, not its cold start, and the ``stats`` endpoint stays
O(reservoir) no matter how much traffic has passed.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

from ..obs.registry import Counter, Histogram, get_registry, percentile

__all__ = ["ServerStats", "RollingWindow", "percentile"]

#: unique per-instance label so concurrent servers never share series.
_instance_ids = itertools.count(1)


class RollingWindow:
    """Time-based ring buffer of request outcomes for SLO health checks.

    Unlike the cumulative :class:`ServerStats` (whose reservoirs hold the
    most recent *N observations* regardless of age), the window answers
    "how is the server doing over the last ``window_s`` seconds" — stale
    entries are evicted by timestamp on every record and snapshot, so an
    idle server decays back to an empty (healthy) window instead of
    reporting its last burst forever.  ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        window_s: float = 60.0,
        maxlen: int = 8192,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.window_s = float(window_s)
        self._clock = clock
        self._lock = threading.Lock()
        #: (timestamp, latency_s, error) triples, oldest first.
        self._entries: deque = deque(maxlen=maxlen)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        entries = self._entries
        while entries and entries[0][0] < cutoff:
            entries.popleft()

    def record(self, latency_s: float, error: bool = False) -> None:
        now = self._clock()
        with self._lock:
            self._entries.append((now, float(latency_s), bool(error)))
            self._evict(now)

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            self._evict(self._clock())
            return len(self._entries)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            self._evict(self._clock())
            entries = list(self._entries)
        latencies = [entry[1] for entry in entries]
        errors = sum(1 for entry in entries if entry[2])
        count = len(entries)
        return {
            "window_s": self.window_s,
            "requests": count,
            "errors": errors,
            "error_rate": errors / count if count else 0.0,
            "requests_per_sec": count / self.window_s,
            "p50_ms": percentile(latencies, 50) * 1e3,
            "p95_ms": percentile(latencies, 95) * 1e3,
            "p99_ms": percentile(latencies, 99) * 1e3,
        }


class ServerStats:
    """Counters + bounded latency reservoirs behind the ``stats`` endpoint."""

    def __init__(
        self,
        reservoir: int = 4096,
        name: Optional[str] = None,
        window_s: float = 60.0,
    ) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._reservoir = reservoir
        self._registry = get_registry()
        self._labels = {"server": name or f"server-{next(_instance_ids)}"}
        reg = self._registry
        self._requests: Dict[str, Counter] = {}
        self._errors = reg.counter("serve.errors", self._labels)
        self._examples = reg.counter("serve.examples", self._labels)
        self._batches = reg.counter("serve.batches", self._labels)
        self._batched_examples = reg.counter("serve.batched_examples", self._labels)
        self._padded_examples = reg.counter("serve.padded_examples", self._labels)
        self._jobs = reg.counter("serve.jobs", self._labels)
        self._report_cache_hits = reg.counter("serve.report_cache_hits", self._labels)
        self._report_cache_misses = reg.counter(
            "serve.report_cache_misses", self._labels
        )
        self._shed = reg.counter("serve.shed", self._labels)
        self._deadline_exceeded = reg.counter(
            "serve.deadline_exceeded", self._labels
        )
        self._latencies: Dict[str, Histogram] = {}
        self._queue_times = reg.histogram(
            "serve.queue_seconds", self._labels, maxlen=reservoir
        )
        self._batch_sizes = reg.histogram(
            "serve.batch_size", self._labels, maxlen=reservoir
        )
        #: rolling SLO window, distinct from the cumulative series above.
        self.window = RollingWindow(window_s=window_s)

    @property
    def name(self) -> str:
        return self._labels["server"]

    # -- registry read-through (legacy attribute shapes) -------------------------
    @property
    def requests(self) -> Dict[str, int]:
        with self._lock:
            return {kind: counter.value for kind, counter in self._requests.items()}

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def examples(self) -> int:
        return self._examples.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def batched_examples(self) -> int:
        return self._batched_examples.value

    @property
    def padded_examples(self) -> int:
        return self._padded_examples.value

    @property
    def jobs(self) -> int:
        return self._jobs.value

    @property
    def report_cache_hits(self) -> int:
        return self._report_cache_hits.value

    @property
    def report_cache_misses(self) -> int:
        return self._report_cache_misses.value

    @property
    def shed(self) -> int:
        return self._shed.value

    @property
    def deadline_exceeded(self) -> int:
        return self._deadline_exceeded.value

    def _kind_series(self, kind: str) -> tuple:
        """(request counter, latency reservoir) for one request kind."""
        counter = self._requests.get(kind)
        if counter is None:
            labels = dict(self._labels)
            labels["kind"] = kind
            counter = self._requests[kind] = self._registry.counter(
                "serve.requests", labels
            )
            self._latencies[kind] = self._registry.histogram(
                "serve.latency_seconds", labels, maxlen=self._reservoir
            )
        return counter, self._latencies[kind]

    def reset(self) -> None:
        """Zero every counter and reservoir (e.g. after a warmup pass)."""
        with self._lock:
            self._started = time.monotonic()
            for metric in (
                self._errors,
                self._examples,
                self._batches,
                self._batched_examples,
                self._padded_examples,
                self._jobs,
                self._report_cache_hits,
                self._report_cache_misses,
                self._shed,
                self._deadline_exceeded,
                self._queue_times,
                self._batch_sizes,
                *self._requests.values(),
                *self._latencies.values(),
            ):
                metric.reset()
            self._requests = {}
            self._latencies = {}
            self.window.reset()

    # -- recording ---------------------------------------------------------------
    def record_request(
        self, kind: str, latency: float, examples: int = 0, error: bool = False
    ) -> None:
        with self._lock:
            counter, reservoir = self._kind_series(kind)
        counter.inc()
        self._examples.inc(examples)
        if error:
            self._errors.inc()
        reservoir.observe(latency)
        # Health probes are meta-traffic: they must not dilute the SLO
        # window they are reporting on.
        if kind != "health":
            self.window.record(latency, error=error)

    def record_shed(self, kind: Optional[str] = None) -> None:
        """One request rejected by admission control (queue at capacity)."""
        self._shed.inc()

    def record_deadline_exceeded(self) -> None:
        """One request whose deadline expired before execution."""
        self._deadline_exceeded.inc()

    def record_batch(self, examples: int, pad_to: int, queue_times) -> None:
        self._batches.inc()
        self._batched_examples.inc(examples)
        self._padded_examples.inc(pad_to - examples)
        self._batch_sizes.observe(pad_to)
        self._queue_times.extend(queue_times)

    def record_job(self) -> None:
        self._jobs.inc()

    def record_report_cache(self, hit: bool) -> None:
        if hit:
            self._report_cache_hits.inc()
        else:
            self._report_cache_misses.inc()

    # -- reporting ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            elapsed = max(time.monotonic() - self._started, 1e-9)
            kinds = {
                kind: (counter, self._latencies[kind])
                for kind, counter in self._requests.items()
            }
            batched = self._batched_examples.value
            padded = self._padded_examples.value
            total_slots = batched + padded
            batch_sizes = self._batch_sizes.values()
            queue_times = self._queue_times.values()
        reservoirs = {kind: series[1].values() for kind, series in kinds.items()}
        latencies = {
            kind: {
                "count": len(reservoir),
                "p50_ms": percentile(reservoir, 50) * 1e3,
                "p95_ms": percentile(reservoir, 95) * 1e3,
                "p99_ms": percentile(reservoir, 99) * 1e3,
            }
            for kind, reservoir in reservoirs.items()
        }
        all_latencies = [v for r in reservoirs.values() for v in r]
        examples = self._examples.value
        return {
            "uptime_s": elapsed,
            "requests": {kind: series[0].value for kind, series in kinds.items()},
            "errors": self._errors.value,
            "examples": examples,
            "examples_per_sec": examples / elapsed,
            "batches": self._batches.value,
            "batched_examples": batched,
            "padded_examples": padded,
            "pad_waste_pct": (
                100.0 * padded / total_slots if total_slots else 0.0
            ),
            "mean_batch_size": (
                sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
            ),
            "jobs": self._jobs.value,
            "shed": self._shed.value,
            "deadline_exceeded": self._deadline_exceeded.value,
            "window": self.window.snapshot(),
            "report_cache": {
                "hits": self._report_cache_hits.value,
                "misses": self._report_cache_misses.value,
            },
            "queue_ms": {
                "p50": percentile(queue_times, 50) * 1e3,
                "p95": percentile(queue_times, 95) * 1e3,
                "p99": percentile(queue_times, 99) * 1e3,
            },
            "latency_ms": {
                "p50": percentile(all_latencies, 50) * 1e3,
                "p95": percentile(all_latencies, 95) * 1e3,
                "p99": percentile(all_latencies, 99) * 1e3,
            },
            "latency_ms_by_kind": latencies,
        }
