"""Wire protocol for :mod:`repro.serve`.

Requests and responses are JSON objects (newline-delimited over the socket
transport; plain dicts in process).  Arrays travel as base64-encoded raw
bytes plus shape/dtype so the payload survives JSON without precision loss —
the byte-identity contract of the server extends to the wire.

Request schema::

    {"id": <any>,
     "kind": "classify" | "attack" | "robustness" | "stats" | "health",
     "model": "<training-hash prefix or registered name>",   # not stats/health
     "images": <array>, "labels": <array>,                   # kind-dependent
     "spec": {"name": ..., "params": {...}},                 # attack only
     "suite": [<spec>, ...] | null, "options": {...},        # robustness only
     "deadline_ms": <number>,                                # optional SLO
     "trace": {"trace_id": ..., "span_id": ...}}             # optional carrier

The optional ``trace`` field carries a :func:`repro.obs.trace.carrier` from
the client: worker-side spans (``serve.batch`` / ``serve.job``) parent onto
it, so a distributed trace stays one tree across the socket boundary.

``deadline_ms`` is a server-side time budget measured from admission: work
whose deadline expires before a worker reaches it is rejected (counted as
``deadline_exceeded``) instead of occupying a batch slot.  The ``health``
kind is answered synchronously from the submission path — never queued —
so it keeps responding while the server is overloaded.

Responses echo the ``id``: ``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": "...", "code": "..."}`` — ``code`` is a
machine-readable classifier present on SLO rejections
(``"deadline_exceeded"``, ``"overloaded"``) so clients can branch without
string-matching error text.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = [
    "encode_array",
    "decode_array",
    "encode_payload",
    "decode_payload",
    "robustness_cache_key",
    "trace_carrier",
    "ProtocolError",
]


class ProtocolError(ValueError):
    """A malformed request or payload."""


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """JSON-safe lossless encoding of an ndarray (raw bytes, base64)."""
    array = np.ascontiguousarray(array)
    return {
        "__ndarray__": base64.b64encode(array.tobytes()).decode("ascii"),
        "shape": list(array.shape),
        "dtype": array.dtype.str,
    }


def decode_array(obj: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array` (returns a writable copy)."""
    try:
        raw = base64.b64decode(obj["__ndarray__"])
        return (
            np.frombuffer(raw, dtype=np.dtype(obj["dtype"]))
            .reshape(tuple(obj["shape"]))
            .copy()
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed array payload: {error}") from error


def _is_encoded_array(value: Any) -> bool:
    return isinstance(value, dict) and "__ndarray__" in value


def encode_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Encode every ndarray value (one level deep) of a request/response."""
    return {
        key: encode_array(value) if isinstance(value, np.ndarray) else value
        for key, value in payload.items()
    }


def decode_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Decode every encoded array value (one level deep)."""
    return {
        key: decode_array(value) if _is_encoded_array(value) else value
        for key, value in payload.items()
    }


def trace_carrier(message: Dict[str, Any]) -> Optional[Dict[str, str]]:
    """The request's ``trace`` carrier, validated; ``None`` when absent.

    A malformed carrier is dropped (tracing is best-effort telemetry — it
    must never fail a request).  ``path`` is deliberately not accepted from
    the wire: remote clients must not steer the server's trace sink.
    """
    carrier = message.get("trace")
    if not isinstance(carrier, dict):
        return None
    trace_id = carrier.get("trace_id")
    span_id = carrier.get("span_id")
    if not isinstance(trace_id, str) or not isinstance(span_id, str):
        return None
    return {"trace_id": trace_id, "span_id": span_id}


def robustness_cache_key(
    model_hash: str,
    suite: Optional[List[Dict[str, Any]]],
    options: Dict[str, Any],
    images: np.ndarray,
    labels: np.ndarray,
) -> str:
    """Content digest of one robustness request.

    Keyed on the checkpoint's training hash, the attack-suite spec dicts,
    the evaluation options and a digest of the evaluation data, so the
    store's read-through cache (``ArtifactStore.load_serve_report``) hits
    exactly when the same evaluation would recompute the same report.
    """
    hasher = hashlib.sha256()
    hasher.update(
        json.dumps(
            {"model": model_hash, "suite": suite, "options": options},
            sort_keys=True,
        ).encode("utf-8")
    )
    for array in (np.ascontiguousarray(images), np.ascontiguousarray(labels)):
        hasher.update(str(array.dtype.str).encode())
        hasher.update(str(array.shape).encode())
        hasher.update(array.tobytes())
    return hasher.hexdigest()
