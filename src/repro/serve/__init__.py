"""repro.serve — dynamic-batching robustness evaluation as a service.

The serving layer spends the compiled foundation of :mod:`repro.compile`:
requests (``classify`` / ``attack`` / ``robustness``) against checkpoints in
the :class:`~repro.experiments.store.ArtifactStore` are coalesced into
pad-to-bucket batches so every batch replays an already-traced plan
signature with zero steady-state allocations, while stochastic attacks and
full robustness suites run as whole jobs on the same worker pool.

Quickstart (in process)::

    from repro.serve import RobustnessServer, ServeClient

    with RobustnessServer(store=store) as server:
        client = ServeClient(server)
        out = client.classify("ab12", images)          # hash prefix
        adv = client.attack("ab12", spec, images, labels)
        report = client.robustness("ab12", images, labels)
        print(client.stats()["server"]["latency_ms"])

Over a socket: ``python -m repro.serve --store .repro-artifacts`` and
:class:`SocketServeClient`.
"""

from .client import (
    DeadlineExceededError,
    OverloadedError,
    ServeClient,
    ServeError,
    ServeTimeoutError,
    SocketServeClient,
)
from .models import ModelNotFound, ModelPool
from .protocol import ProtocolError, decode_array, encode_array, robustness_cache_key
from .queueing import Batch, BucketConfig, QueueFull, RequestQueue, WorkItem
from .server import RobustnessServer, is_coalescable, start_socket_server
from .telemetry import RollingWindow, ServerStats

__all__ = [
    "RobustnessServer",
    "ServeClient",
    "SocketServeClient",
    "ServeError",
    "DeadlineExceededError",
    "OverloadedError",
    "ServeTimeoutError",
    "ModelPool",
    "ModelNotFound",
    "BucketConfig",
    "RequestQueue",
    "WorkItem",
    "Batch",
    "QueueFull",
    "ServerStats",
    "RollingWindow",
    "ProtocolError",
    "encode_array",
    "decode_array",
    "robustness_cache_key",
    "is_coalescable",
    "start_socket_server",
]
