"""Dynamic batching: the request queue and pad-to-bucket scheduler.

Coalescable work (classify, per-example-deterministic attacks) is chunked
into :class:`WorkItem` slices and grouped by ``(model, kind, spec)``.  A
worker asking for work gets, in priority order:

1. a **full batch** — a group holding at least ``max bucket`` examples is
   carved immediately (no padding, maximal plan utilization);
2. an **expired batch** — once a group's oldest example has waited
   ``max_wait`` seconds it is flushed and padded up to the smallest
   configured bucket that fits (the max-wait-deadline vs. bucket-fill
   tradeoff: latency is bounded by ``max_wait`` at the price of pad waste);
3. a **job** — whole-request work that cannot be coalesced (stochastic
   attacks, robustness evaluations, stats).

Every batch size a worker can ever see is a configured bucket size, so after
the buckets are warmed every batch replays an already-traced plan signature.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["BucketConfig", "WorkItem", "Batch", "RequestQueue", "QueueFull"]

DEFAULT_BUCKETS = (4, 8, 16, 32)


class QueueFull(RuntimeError):
    """Admission control rejected new work: the queue is at ``max_depth``."""


class BucketConfig:
    """The small fixed set of batch sizes every served batch is padded to."""

    def __init__(self, sizes=DEFAULT_BUCKETS) -> None:
        normalized = sorted({int(size) for size in sizes})
        if not normalized or normalized[0] < 1:
            raise ValueError(f"bucket sizes must be positive: {sizes!r}")
        self.sizes: Tuple[int, ...] = tuple(normalized)

    @property
    def max_size(self) -> int:
        return self.sizes[-1]

    def fit(self, count: int) -> int:
        """The smallest bucket holding ``count`` examples (callers chunk first)."""
        for size in self.sizes:
            if count <= size:
                return size
        raise ValueError(f"{count} examples exceed the largest bucket {self.max_size}")

    def __repr__(self) -> str:
        return f"BucketConfig({self.sizes})"


@dataclass
class WorkItem:
    """One contiguous slice of a coalescable request (at most one bucket)."""

    request: Any  # the owning _PendingRequest (server-side bookkeeping)
    start: int  # offset of this slice inside the request's arrays
    count: int
    enqueued: float = field(default_factory=time.monotonic)

    @property
    def images(self) -> np.ndarray:
        return self.request.images[self.start : self.start + self.count]

    @property
    def labels(self) -> Optional[np.ndarray]:
        if self.request.labels is None:
            return None
        return self.request.labels[self.start : self.start + self.count]


@dataclass
class Batch:
    """A carved batch: items to execute together, padded to ``pad_to`` rows."""

    key: Tuple[Any, ...]  # (model_id, kind, spec_json) — the plan-compatible group
    items: List[WorkItem]
    pad_to: int

    @property
    def examples(self) -> int:
        return sum(item.count for item in self.items)

    @property
    def padding(self) -> int:
        return self.pad_to - self.examples


class _Group:
    __slots__ = ("items", "total")

    def __init__(self) -> None:
        self.items: Deque[WorkItem] = deque()
        self.total = 0


class RequestQueue:
    """Thread-safe front of the batch scheduler.

    ``put_items`` / ``put_job`` are called from the submission side (any
    thread, including the asyncio loop); ``next_work`` blocks worker threads
    until a batch is carvable, a job is pending, or the timeout expires.
    """

    def __init__(
        self,
        buckets: BucketConfig,
        max_wait: float = 0.005,
        max_depth: Optional[int] = None,
    ) -> None:
        self.buckets = buckets
        self.max_wait = float(max_wait)
        #: admission bound on :attr:`depth` (examples + jobs); ``None`` is
        #: unbounded.  New work that would push the depth past the bound
        #: raises :class:`QueueFull` — size it above the largest single
        #: request, since requests are admitted or rejected whole.
        self.max_depth = int(max_depth) if max_depth is not None else None
        self._groups: "OrderedDict[Tuple[Any, ...], _Group]" = OrderedDict()
        self._jobs: Deque[Any] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def _depth_locked(self) -> int:
        return sum(g.total for g in self._groups.values()) + len(self._jobs)

    def _admit_locked(self, incoming: int) -> None:
        if self._closed:
            raise RuntimeError("queue is closed")
        if self.max_depth is not None and self._depth_locked() + incoming > self.max_depth:
            raise QueueFull(
                f"queue depth {self._depth_locked()} + {incoming} exceeds "
                f"max_depth {self.max_depth}"
            )

    # -- submission side ---------------------------------------------------------
    def put_items(self, key: Tuple[Any, ...], items: List[WorkItem]) -> None:
        with self._cond:
            self._admit_locked(sum(item.count for item in items))
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = _Group()
            for item in items:
                group.items.append(item)
                group.total += item.count
            self._cond.notify_all()

    def put_job(self, job: Any, force: bool = False) -> None:
        """Enqueue whole-request work.

        ``force=True`` bypasses admission control — used for the ``stats``
        kind so the telemetry endpoint stays reachable under overload.
        """
        with self._cond:
            if force:
                if self._closed:
                    raise RuntimeError("queue is closed")
            else:
                self._admit_locked(1)
            self._jobs.append(job)
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def depth(self) -> int:
        """Examples + jobs currently waiting (telemetry)."""
        with self._cond:
            return self._depth_locked()

    # -- worker side -------------------------------------------------------------
    def _carve(self, key: Tuple[Any, ...], group: _Group, limit: int) -> Batch:
        """Take items FIFO until ``limit`` examples; drop the group if drained.

        Items are chunked to at most one bucket at submission, so FIFO item
        granularity always packs to exactly ``limit`` when the group holds
        enough examples.
        """
        taken: List[WorkItem] = []
        count = 0
        while group.items and count + group.items[0].count <= limit:
            item = group.items.popleft()
            group.total -= item.count
            taken.append(item)
            count += item.count
        if not group.items:
            del self._groups[key]
        return Batch(key=key, items=taken, pad_to=self.buckets.fit(count))

    def _full_batch(self) -> Optional[Batch]:
        for key, group in self._groups.items():
            if group.total >= self.buckets.max_size:
                return self._carve(key, group, self.buckets.max_size)
        return None

    def _expired_batch(self, now: float) -> Optional[Batch]:
        oldest_key = None
        oldest_time = None
        for key, group in self._groups.items():
            head = group.items[0].enqueued
            if now - head >= self.max_wait and (oldest_time is None or head < oldest_time):
                oldest_key, oldest_time = key, head
        if oldest_key is None:
            return None
        return self._carve(oldest_key, self._groups[oldest_key], self.buckets.max_size)

    def _next_deadline(self) -> Optional[float]:
        heads = [group.items[0].enqueued for group in self._groups.values()]
        if not heads:
            return None
        return min(heads) + self.max_wait

    def next_work(self, timeout: float = 0.05):
        """The next unit of work: ``("batch", Batch)``, ``("job", job)`` or ``None``.

        Blocks up to ``timeout`` seconds.  A full group is carved instantly;
        a pending job is returned while partial groups ride out their
        ``max_wait``; an expired partial group is flushed padded.
        """
        with self._cond:
            overall = time.monotonic() + timeout
            while True:
                now = time.monotonic()
                batch = self._full_batch()
                if batch is not None:
                    return ("batch", batch)
                expired = self._expired_batch(now)
                if expired is not None:
                    return ("batch", expired)
                if self._jobs:
                    return ("job", self._jobs.popleft())
                if self._closed or now >= overall:
                    return None
                deadline = self._next_deadline()
                wait_until = overall if deadline is None else min(deadline, overall)
                self._cond.wait(timeout=max(wait_until - now, 0.0))
