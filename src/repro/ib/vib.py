"""Variational Information Bottleneck (Alemi et al., 2017) baseline.

VIB is one of the IB-based baselines the paper compares against (Figure 2).
It inserts a stochastic bottleneck after the penultimate representation of a
backbone classifier: an encoder predicts the mean and log-variance of a
Gaussian code ``Z``, a sample of which (reparameterization trick) is fed to a
linear decoder.  The training loss is

    L = CE(decoder(z), y) + beta * KL( q(z | x) || N(0, I) )

which bounds ``I(X, Z)`` from above while the CE term keeps ``I(Z, Y)`` high.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from ..nn import Linear, Tensor
from ..nn import functional as F
from ..models.base import ImageClassifier

__all__ = ["VIBClassifier", "vib_loss"]


class VIBClassifier(ImageClassifier):
    """A backbone classifier with a VIB head replacing its final classifier.

    The backbone's penultimate hidden representation feeds an encoder that
    outputs ``(mu, log_var)`` of the bottleneck code.  During training a
    sample ``z = mu + sigma * eps`` is classified; at evaluation time the
    mean code is used (the standard VIB test-time procedure).
    """

    def __init__(
        self,
        backbone: ImageClassifier,
        bottleneck_dim: int = 16,
        beta: float = 1e-3,
        seed: int = 0,
    ) -> None:
        super().__init__(backbone.num_classes)
        rng = np.random.default_rng(seed)
        self.backbone = backbone
        self.bottleneck_dim = bottleneck_dim
        self.beta = beta
        self._rng = rng
        feature_dim = self._infer_feature_dim(backbone)
        self.encoder_mu = Linear(feature_dim, bottleneck_dim, rng=rng)
        self.encoder_logvar = Linear(feature_dim, bottleneck_dim, rng=rng)
        self.decoder = Linear(bottleneck_dim, backbone.num_classes, rng=rng)
        # Populated by the most recent forward pass, consumed by vib_loss().
        self.last_mu: Optional[Tensor] = None
        self.last_logvar: Optional[Tensor] = None

    @staticmethod
    def _infer_feature_dim(backbone: ImageClassifier) -> int:
        """Penultimate feature width of the backbone (fc2 / pool output)."""
        if hasattr(backbone, "hidden_dim"):
            return int(backbone.hidden_dim)
        if hasattr(backbone, "widths"):
            return int(backbone.widths[-1])
        if hasattr(backbone, "hidden_dims"):
            return int(backbone.hidden_dims[-1])
        raise ValueError("cannot infer the backbone's penultimate feature width")

    @property
    def last_conv_channels(self) -> int:
        return self.backbone.last_conv_channels

    @property
    def hidden_layer_names(self) -> List[str]:
        return self.backbone.hidden_layer_names + ["bottleneck"]

    def forward_with_hidden(self, x: Tensor) -> Tuple[Tensor, "OrderedDict[str, Tensor]"]:
        _, hidden = self.backbone.forward_with_hidden(x)
        penultimate = hidden[self.backbone.hidden_layer_names[-1]]
        if penultimate.ndim > 2:
            penultimate = penultimate.flatten(start_dim=1)
        mu = self.encoder_mu(penultimate)
        logvar = self.encoder_logvar(penultimate)
        self.last_mu = mu
        self.last_logvar = logvar
        if self.training:
            std = (logvar * 0.5).exp()
            noise = Tensor(self._rng.normal(size=mu.shape))
            code = mu + std * noise
        else:
            code = mu
        hidden = OrderedDict(hidden)
        hidden["bottleneck"] = code
        logits = self.decoder(code)
        return logits, hidden


def vib_loss(model: VIBClassifier, logits: Tensor, labels: np.ndarray) -> Tensor:
    """Cross-entropy plus the KL regularizer of the most recent forward pass."""
    if model.last_mu is None or model.last_logvar is None:
        raise RuntimeError("vib_loss() must be called after a forward pass of the model")
    ce = F.cross_entropy(logits, labels)
    mu, logvar = model.last_mu, model.last_logvar
    # KL( N(mu, sigma^2) || N(0, 1) ) summed over code dims, averaged over batch.
    kl = ((mu * mu + logvar.exp() - logvar - 1.0) * 0.5).sum(axis=1).mean()
    return ce + kl * model.beta
