"""HSIC Bottleneck as Regularizer (HBaR, Wang et al., 2021) baseline.

HBaR combines standard back-propagation with an HSIC-bottleneck penalty over
**all** hidden layers:

    L = CE + lambda_x * sum_l HSIC(X, T_l) - lambda_y * sum_l HSIC(Y, T_l)

IB-RAR's Eq. (1) has exactly this form; the differences are that IB-RAR
(a) restricts the sum to the *robust layers* and (b) adds the Eq. (3)
feature-channel mask.  Keeping HBaR as a separate, explicitly "all layers,
no mask" loss makes the Figure 2 comparison and the Table 4 ablation
faithful to the paper.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..nn import Tensor
from ..nn import functional as F
from .hsic import gaussian_kernel, hsic, linear_kernel, normalized_hsic

__all__ = ["HBaRLoss"]


class HBaRLoss:
    """Callable computing the HBaR training objective.

    Parameters
    ----------
    lambda_x:
        Weight of the compression term ``sum_l HSIC(X, T_l)``.
    lambda_y:
        Weight of the relevance term ``sum_l HSIC(Y, T_l)``.
    num_classes:
        Number of classes (for the one-hot label kernel).
    normalized:
        Use normalized HSIC (scale-invariant); matches the reference HBaR
        configuration and our Eq. (1) implementation.
    sigma:
        Fixed Gaussian-kernel bandwidth; ``None`` selects the median
        heuristic per batch.
    """

    def __init__(
        self,
        num_classes: int,
        lambda_x: float = 0.005,
        lambda_y: float = 0.05,
        normalized: bool = True,
        sigma: Optional[float] = None,
    ) -> None:
        self.num_classes = num_classes
        self.lambda_x = lambda_x
        self.lambda_y = lambda_y
        self.normalized = normalized
        self.sigma = sigma

    def _hsic(self, kernel_a: Tensor, kernel_b: Tensor) -> Tensor:
        if self.normalized:
            return normalized_hsic(kernel_a, kernel_b)
        return hsic(kernel_a, kernel_b)

    def __call__(
        self,
        logits: Tensor,
        labels: np.ndarray,
        inputs: Tensor,
        hidden: Mapping[str, Tensor],
    ) -> Tensor:
        """Compute CE + HSIC penalties over every hidden representation."""
        loss = F.cross_entropy(logits, labels)
        input_kernel = gaussian_kernel(inputs.detach(), sigma=self.sigma)
        label_kernel = linear_kernel(Tensor(F.one_hot(labels, self.num_classes)))
        for representation in hidden.values():
            layer_kernel = gaussian_kernel(representation, sigma=self.sigma)
            loss = loss + self._hsic(layer_kernel, input_kernel) * self.lambda_x
            loss = loss - self._hsic(layer_kernel, label_kernel) * self.lambda_y
        return loss

    def components(
        self,
        logits: Tensor,
        labels: np.ndarray,
        inputs: Tensor,
        hidden: Mapping[str, Tensor],
    ) -> Dict[str, float]:
        """Return the scalar value of each loss component (for logging)."""
        ce = float(F.cross_entropy(logits, labels).item())
        input_kernel = gaussian_kernel(inputs.detach(), sigma=self.sigma)
        label_kernel = linear_kernel(Tensor(F.one_hot(labels, self.num_classes)))
        hsic_x = 0.0
        hsic_y = 0.0
        for representation in hidden.values():
            layer_kernel = gaussian_kernel(representation, sigma=self.sigma)
            hsic_x += float(self._hsic(layer_kernel, input_kernel).item())
            hsic_y += float(self._hsic(layer_kernel, label_kernel).item())
        return {"cross_entropy": ce, "hsic_x": hsic_x, "hsic_y": hsic_y}
