"""Information-bottleneck machinery: HSIC, MI estimators, VIB and HBaR baselines."""

from .hbar import HBaRLoss
from .hsic import (
    center,
    gaussian_kernel,
    hsic,
    hsic_xy_labels,
    linear_kernel,
    median_bandwidth,
    normalized_hsic,
    pairwise_squared_distances,
)
from .mi import binned_mutual_information, channel_label_mi, discrete_mutual_information
from .vib import VIBClassifier, vib_loss

__all__ = [
    "gaussian_kernel",
    "linear_kernel",
    "median_bandwidth",
    "pairwise_squared_distances",
    "center",
    "hsic",
    "normalized_hsic",
    "hsic_xy_labels",
    "binned_mutual_information",
    "channel_label_mi",
    "discrete_mutual_information",
    "VIBClassifier",
    "vib_loss",
    "HBaRLoss",
]
