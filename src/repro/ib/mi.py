"""Non-parametric mutual-information estimators.

Two estimators are provided:

* :func:`binned_mutual_information` — the binning estimator of
  Shwartz-Ziv & Tishby used for the information-plane plot (Figure 5).  It
  discretizes activations into equal-width bins and computes the discrete
  ``I(X; T)`` / ``I(T; Y)``.
* :func:`channel_label_mi` — per-feature-channel MI scores against the label,
  used by Eq. (3) to decide which channels of the last convolutional layer
  are "unnecessary".  Channels are summarised by their spatial mean response
  and scored with a histogram MI estimate; an HSIC-based scorer is available
  as an alternative and gives the same ranking in practice.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from ..nn import Tensor
from .hsic import gaussian_kernel, hsic, linear_kernel

__all__ = [
    "discrete_mutual_information",
    "binned_mutual_information",
    "channel_label_mi",
]


def discrete_mutual_information(codes_a: np.ndarray, codes_b: np.ndarray) -> float:
    """Mutual information between two discrete (integer-coded) variables, in nats."""
    codes_a = np.asarray(codes_a).reshape(-1)
    codes_b = np.asarray(codes_b).reshape(-1)
    if codes_a.shape != codes_b.shape:
        raise ValueError("inputs must have the same length")
    n = codes_a.shape[0]
    if n == 0:
        return 0.0
    _, inverse_a = np.unique(codes_a, return_inverse=True)
    _, inverse_b = np.unique(codes_b, return_inverse=True)
    num_a = inverse_a.max() + 1
    num_b = inverse_b.max() + 1
    joint = np.zeros((num_a, num_b))
    np.add.at(joint, (inverse_a, inverse_b), 1.0)
    joint /= n
    p_a = joint.sum(axis=1, keepdims=True)
    p_b = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / (p_a @ p_b)
        terms = np.where(joint > 0, joint * np.log(ratio), 0.0)
    return float(terms.sum())


def _reduce_features(flat: np.ndarray, max_features: Optional[int]) -> np.ndarray:
    """Average contiguous feature groups down to at most ``max_features`` columns.

    The binning estimator treats each example's binned feature vector as one
    discrete symbol.  With hundreds of features every example hashes to a
    unique symbol and the estimate saturates at ``log(batch size)`` — the
    well-known small-sample failure mode.  Averaging features into a few
    groups keeps the estimate informative on the modest probe batches the
    CPU benches use, while preserving the compression-vs-no-compression
    contrast the information-plane figure is about.
    """
    if max_features is None or flat.shape[1] <= max_features:
        return flat
    groups = np.array_split(np.arange(flat.shape[1]), max_features)
    return np.stack([flat[:, g].mean(axis=1) for g in groups], axis=1)


def _discretize(values: np.ndarray, num_bins: int, max_features: Optional[int] = None) -> np.ndarray:
    """Map each row of ``values`` to a single integer code via equal-width bins."""
    flat = values.reshape(len(values), -1)
    flat = _reduce_features(flat, max_features)
    low = flat.min()
    high = flat.max()
    if high - low < 1e-12:
        return np.zeros(len(flat), dtype=np.int64)
    edges = np.linspace(low, high, num_bins + 1)
    binned = np.digitize(flat, edges[1:-1])
    # Hash each row of bin indices to one discrete code.
    codes = np.zeros(len(flat), dtype=np.int64)
    _, codes = np.unique(binned, axis=0, return_inverse=True)
    return codes


def binned_mutual_information(
    inputs: np.ndarray,
    activations: np.ndarray,
    labels: np.ndarray,
    num_bins: int = 30,
    max_features: Optional[int] = None,
) -> tuple[float, float]:
    """Estimate ``(I(X; T), I(T; Y))`` with the binning estimator.

    ``inputs`` and ``activations`` are per-example arrays; ``labels`` are
    integer class labels.  Following Shwartz-Ziv & Tishby, activations are
    discretized into ``num_bins`` equal-width bins and treated as a single
    discrete variable per example.  ``max_features`` (optional) averages the
    per-example feature vector down to that many groups before binning — use
    it when the probe batch is small relative to the layer width, otherwise
    the estimate saturates at ``log(batch size)``.
    """
    input_codes = _discretize(np.asarray(inputs), num_bins, max_features)
    activation_codes = _discretize(np.asarray(activations), num_bins, max_features)
    label_codes = np.asarray(labels).reshape(-1)
    i_xt = discrete_mutual_information(input_codes, activation_codes)
    i_ty = discrete_mutual_information(activation_codes, label_codes)
    return i_xt, i_ty


def channel_label_mi(
    features: np.ndarray,
    labels: np.ndarray,
    num_classes: int,
    method: Literal["histogram", "hsic"] = "histogram",
    num_bins: int = 16,
    sigma: Optional[float] = None,
) -> np.ndarray:
    """Score each feature channel by its mutual information with the labels.

    Parameters
    ----------
    features:
        Activations of the last convolutional block, shape ``(N, C, H, W)``
        or already-pooled ``(N, C)``.
    labels:
        Integer labels of the same batch.
    num_classes:
        Number of classes (used by the HSIC scorer's label kernel).
    method:
        ``"histogram"`` bins the per-channel mean response and computes the
        discrete MI with the labels; ``"hsic"`` computes per-channel HSIC
        with a linear label kernel.  Both induce the same ordering on
        channels, which is all Eq. (3) needs.
    """
    features = np.asarray(features)
    if features.ndim == 4:
        responses = features.mean(axis=(2, 3))  # (N, C) mean spatial response
    elif features.ndim == 2:
        responses = features
    else:
        raise ValueError(f"expected (N,C,H,W) or (N,C) features, got shape {features.shape}")
    labels = np.asarray(labels).reshape(-1)
    if len(labels) != len(responses):
        raise ValueError("features and labels must have the same batch size")

    num_channels = responses.shape[1]
    scores = np.zeros(num_channels)
    if method == "histogram":
        for channel in range(num_channels):
            values = responses[:, channel]
            low, high = values.min(), values.max()
            if high - low < 1e-12:
                scores[channel] = 0.0
                continue
            edges = np.linspace(low, high, num_bins + 1)
            codes = np.digitize(values, edges[1:-1])
            scores[channel] = discrete_mutual_information(codes, labels)
    elif method == "hsic":
        from ..nn.functional import one_hot

        label_kernel = linear_kernel(Tensor(one_hot(labels, num_classes)))
        for channel in range(num_channels):
            channel_kernel = gaussian_kernel(Tensor(responses[:, channel : channel + 1]), sigma=sigma)
            scores[channel] = float(hsic(channel_kernel, label_kernel).item())
    else:
        raise ValueError(f"unknown method '{method}'")
    return scores
