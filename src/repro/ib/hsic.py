"""Hilbert-Schmidt Independence Criterion (HSIC) as a differentiable op.

The paper (following HSIC-Bottleneck and HBaR) replaces the intractable
mutual-information quantities ``I(X, T_l)`` and ``I(Y, T_l)`` in the IB
objective with HSIC estimates.  Both the biased batch estimator

    HSIC(X, Y) = (m - 1)^{-2} tr(K_X H K_Y H)

and its normalized variant (nHSIC, scale-invariant) are provided.  All
computations are expressed with :class:`repro.nn.Tensor` operations so that
gradients flow back into the network activations, which is what makes HSIC
usable as a *regularizer* in Eq. (1)/(2) of the paper.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..nn import Tensor, as_tensor

__all__ = [
    "pairwise_squared_distances",
    "gaussian_kernel",
    "linear_kernel",
    "median_bandwidth",
    "median_bandwidth_array",
    "sigma_from_median",
    "center",
    "hsic",
    "normalized_hsic",
    "hsic_xy_labels",
]

ArrayOrTensor = Union[np.ndarray, Tensor]


def _flatten_batch(x: ArrayOrTensor) -> Tensor:
    """View ``x`` as a 2-D (batch, features) tensor."""
    t = as_tensor(x)
    if t.ndim == 1:
        return t.reshape(-1, 1)
    if t.ndim > 2:
        return t.flatten(start_dim=1)
    return t


def pairwise_squared_distances(x: Tensor) -> Tensor:
    """Squared Euclidean distances between all rows of a (n, d) tensor."""
    x = _flatten_batch(x)
    squared_norms = (x * x).sum(axis=1, keepdims=True)  # (n, 1)
    gram = x @ x.transpose()
    distances = squared_norms + squared_norms.transpose() - gram * 2.0
    # Numerical noise can make diagonal entries slightly negative.
    return distances.maximum(0.0)


def sigma_from_median(median: float) -> float:
    """Map the median pairwise squared distance to a kernel bandwidth.

    Factored out of :func:`median_bandwidth_array` so the pooled selection
    kernel in :mod:`repro.compile.kernels` — which computes the median in
    preallocated scratch — applies the *same* final expression and stays
    bit-identical to the eager heuristic.
    """
    return float(np.sqrt(max(float(median), 1e-12) / 2.0))


def median_bandwidth_array(flat: np.ndarray) -> float:
    """:func:`median_bandwidth` on a raw, already-flattened ``(n, d)`` array.

    The compiled loss kernels (:mod:`repro.compile`) derive the same sigma
    per replay in pooled scratch (see ``MedianBandwidth``); this eager form
    is the reference they must match bitwise.
    """
    diffs = flat[:, None, :] - flat[None, :, :]
    sq = (diffs ** 2).sum(axis=-1)
    upper = sq[np.triu_indices(len(flat), k=1)]
    if upper.size == 0:
        return 1.0
    median = float(np.median(upper))
    return sigma_from_median(median)


def median_bandwidth(x: ArrayOrTensor) -> float:
    """Median-of-distances bandwidth heuristic for the Gaussian kernel.

    The heuristic is computed on the raw values (no gradient), matching the
    common HSIC-bottleneck implementations.
    """
    data = as_tensor(x).data
    return median_bandwidth_array(data.reshape(len(data), -1))


def gaussian_kernel(x: ArrayOrTensor, sigma: Optional[float] = None) -> Tensor:
    """Gaussian (RBF) kernel matrix ``K_ij = exp(-||x_i - x_j||^2 / (2 sigma^2))``.

    When ``sigma`` is omitted the median heuristic is used.  The kernel is
    differentiable with respect to ``x``.
    """
    x_t = _flatten_batch(x)
    if sigma is None:
        sigma = median_bandwidth(x_t)
    sigma = max(float(sigma), 1e-6)
    distances = pairwise_squared_distances(x_t)
    return (distances * (-1.0 / (2.0 * sigma * sigma))).exp()


def linear_kernel(x: ArrayOrTensor) -> Tensor:
    """Linear kernel ``K = X X^T`` (appropriate for one-hot labels)."""
    x_t = _flatten_batch(x)
    return x_t @ x_t.transpose()


def center(kernel: Tensor) -> Tensor:
    """Double-center a kernel matrix: ``H K H`` with ``H = I - 1/m``.

    Computed from the row/column/total means, so the ``m x m`` centering
    matrix ``H`` is never materialized (and no ``m x m`` matmul is paid).
    """
    row_mean = kernel.mean(axis=0, keepdims=True)
    col_mean = kernel.mean(axis=1, keepdims=True)
    total_mean = kernel.mean()
    return kernel - row_mean - col_mean + total_mean


# Backwards-compatible private alias (pre-fast-path name).
_center = center


def hsic(kernel_x: Tensor, kernel_y: Tensor, centered_x: Optional[Tensor] = None) -> Tensor:
    """Biased HSIC estimate from two precomputed kernel matrices.

    Uses the one-sided centering identity: ``H`` is idempotent, so

        tr(K_X H K_Y H) = tr((H K_X H) K_Y) = sum(center(K_X) * K_Y)

    and only **one** of the two kernels is ever centered.  Callers that
    evaluate several HSIC terms against the same first kernel (the IB-RAR
    loss pairs every layer kernel with both the input and the label Gram
    matrix) pass the precomputed ``centered_x`` to share that work.
    """
    if kernel_x.shape != kernel_y.shape:
        raise ValueError(f"kernel shapes differ: {kernel_x.shape} vs {kernel_y.shape}")
    m = kernel_x.shape[0]
    if m < 2:
        raise ValueError("HSIC requires a batch of at least 2 examples")
    if centered_x is None:
        centered_x = center(kernel_x)
    return (centered_x * kernel_y).sum() * (1.0 / ((m - 1) ** 2))


def normalized_hsic(
    kernel_x: Tensor,
    kernel_y: Tensor,
    eps: float = 1e-9,
    centered_x: Optional[Tensor] = None,
    norm_x: Optional[Tensor] = None,
    norm_y: Optional[Tensor] = None,
) -> Tensor:
    """Normalized HSIC: ``HSIC(X, Y) / sqrt(HSIC(X, X) HSIC(Y, Y))``.

    Scale invariance makes the regularizer weights transferable between
    layers of very different dimensionality, which is why HBaR and our
    Eq. (1) implementation default to it.

    ``centered_x`` / ``norm_x`` / ``norm_y`` are optional precomputed pieces
    (the centered first kernel and the two self-HSIC normalizers).  The
    IB-RAR loss computes the label/input normalizers once per batch and the
    centered layer kernel once per layer, instead of re-deriving all three
    inside every call.
    """
    if centered_x is None:
        centered_x = center(kernel_x)
    cross = hsic(kernel_x, kernel_y, centered_x=centered_x)
    if norm_x is None:
        norm_x = hsic(kernel_x, kernel_x, centered_x=centered_x)
    if norm_y is None:
        norm_y = hsic(kernel_y, kernel_y)
    denominator = (norm_x * norm_y + eps).sqrt()
    return cross / (denominator + eps)


def hsic_xy_labels(
    features: ArrayOrTensor,
    labels: np.ndarray,
    num_classes: int,
    sigma: Optional[float] = None,
    normalized: bool = True,
) -> Tensor:
    """HSIC between a feature batch and integer labels (one-hot, linear kernel)."""
    from ..nn.functional import one_hot

    label_kernel = linear_kernel(Tensor(one_hot(labels, num_classes)))
    feature_kernel = gaussian_kernel(features, sigma=sigma)
    if normalized:
        return normalized_hsic(feature_kernel, label_kernel)
    return hsic(feature_kernel, label_kernel)
