"""Adversarial classification-tendency analysis (Table 5 of the paper).

For every target (ground-truth) class, count how often adversarial examples
of that class are predicted as each other class, and report the top-k most
frequent predictions.  The paper uses this to show that similar classes
(car/truck, cat/dog) absorb most adversarial misclassifications, supporting
the shared-features discussion in Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models.base import ImageClassifier
from ..nn import Tensor, no_grad

__all__ = ["confusion_counts", "classification_tendency", "TendencyRow", "format_tendency_table"]


def confusion_counts(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Confusion matrix ``M[target, predicted]`` from integer arrays."""
    predictions = np.asarray(predictions).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same length")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


@dataclass
class TendencyRow:
    """Top-k predicted classes (excluding the target itself) for one target class."""

    target_class: str
    predictions: List[Tuple[str, int]]


def classification_tendency(
    model: ImageClassifier,
    attack,
    images: np.ndarray,
    labels: np.ndarray,
    class_names: Optional[Sequence[str]] = None,
    top_k: int = 4,
    batch_size: int = 64,
) -> List[TendencyRow]:
    """Generate adversarial examples and tabulate the misclassification tendency."""
    labels = np.asarray(labels).reshape(-1)
    num_classes = model.num_classes
    names = list(class_names) if class_names else [f"class_{i}" for i in range(num_classes)]
    all_predictions = []
    for start in range(0, len(images), batch_size):
        batch = images[start : start + batch_size]
        batch_labels = labels[start : start + batch_size]
        adversarial = attack.attack(batch, batch_labels)
        with no_grad():
            all_predictions.append(model.predict(Tensor(adversarial)))
    predictions = np.concatenate(all_predictions)
    matrix = confusion_counts(predictions, labels, num_classes)

    rows: List[TendencyRow] = []
    for target in range(num_classes):
        counts = matrix[target].copy()
        counts[target] = -1  # exclude correct predictions from the tendency ranking
        order = np.argsort(counts)[::-1][:top_k]
        rows.append(
            TendencyRow(
                target_class=names[target],
                predictions=[(names[j], int(matrix[target, j])) for j in order],
            )
        )
    return rows


def format_tendency_table(rows: Sequence[TendencyRow]) -> str:
    """Render the Table 5 layout: ``target : class-count class-count ...``."""
    lines = []
    width = max(len(row.target_class) for row in rows)
    for row in rows:
        cells = " ".join(f"{name}-{count}" for name, count in row.predictions)
        lines.append(f"{row.target_class.ljust(width)} : {cells}")
    return "\n".join(lines)
