"""Information-plane recording (Figure 5 of the paper).

During training, periodically estimate ``I(X; T)`` and ``I(T; Y)`` for a
chosen hidden layer with the binning MI estimator and record the trajectory.
The paper's Figure 5 contrasts the 4th VGG16 conv block trained with the MI
loss (compression visible: I(X;T) decreases while I(T;Y) stays high) against
plain CE training (no compression).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..ib.mi import binned_mutual_information
from ..models.base import ImageClassifier
from ..nn import Tensor, no_grad

__all__ = ["InformationPlanePoint", "InformationPlaneRecorder"]


@dataclass
class InformationPlanePoint:
    """One snapshot of the information plane."""

    step: int
    i_xt: float
    i_ty: float


@dataclass
class InformationPlaneRecorder:
    """Record (I(X;T), I(T;Y)) snapshots for one hidden layer.

    Parameters
    ----------
    layer:
        Hidden-layer name to monitor (Figure 5 uses VGG16's 4th conv block).
    images, labels:
        Fixed probe batch used for every snapshot, so points are comparable.
    num_bins:
        Number of bins for the discretization estimator.
    max_features:
        Average activations/inputs down to this many feature groups before
        binning.  Keeps the estimator informative when the probe batch is
        small relative to the layer width (see
        :func:`repro.ib.binned_mutual_information`).
    """

    layer: str
    images: np.ndarray
    labels: np.ndarray
    num_bins: int = 30
    max_features: Optional[int] = 6
    points: List[InformationPlanePoint] = field(default_factory=list)

    def record(self, model: ImageClassifier, step: int) -> InformationPlanePoint:
        """Take one snapshot of the monitored layer."""
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                _, hidden = model.forward_with_hidden(Tensor(self.images))
                activations = hidden[self.layer].data
        finally:
            model.train(was_training)
        i_xt, i_ty = binned_mutual_information(
            self.images, activations, self.labels, num_bins=self.num_bins, max_features=self.max_features
        )
        point = InformationPlanePoint(step=step, i_xt=i_xt, i_ty=i_ty)
        self.points.append(point)
        return point

    @property
    def trajectory(self) -> np.ndarray:
        """Array of shape (num_points, 3): step, I(X;T), I(T;Y)."""
        return np.array([[p.step, p.i_xt, p.i_ty] for p in self.points])

    def compression(self) -> float:
        """Net change in I(X;T) from the first to the last snapshot.

        Negative values indicate compression (the MI-loss behaviour in
        Figure 5 left); values near zero indicate no compression (plain CE).
        """
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].i_xt - self.points[0].i_xt
