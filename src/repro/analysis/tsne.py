"""Exact t-SNE (van der Maaten & Hinton, 2008) for feature-space analysis.

Figure 3 of the paper visualizes penultimate-layer features of CIFAR-10
networks with t-SNE and argues that IB-RAR increases the distance between
class clusters.  This module implements exact (non-Barnes-Hut) t-SNE, which
is fine for the few hundred points used in the figure, plus a
cluster-separation score so the bench can report the figure's qualitative
claim ("better-clustered, larger inter-class distance") as a number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["tsne", "cluster_separation", "TSNEResult"]


def _pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    norms = (x ** 2).sum(axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _binary_search_perplexity(distances: np.ndarray, perplexity: float, tol: float = 1e-5, max_iter: int = 50) -> np.ndarray:
    """Find per-point bandwidths so each row of P has the target perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = -np.inf, np.inf
        beta = 1.0
        row = np.delete(distances[i], i)
        for _ in range(max_iter):
            exp_row = np.exp(-row * beta)
            total = exp_row.sum()
            if total <= 0:
                probabilities = np.full_like(row, 1.0 / len(row))
            else:
                probabilities = exp_row / total
            entropy = -(probabilities * np.log(np.maximum(probabilities, 1e-12))).sum()
            error = entropy - target_entropy
            if abs(error) < tol:
                break
            if error > 0:
                beta_low = beta
                beta = beta * 2 if np.isinf(beta_high) else (beta + beta_high) / 2
            else:
                beta_high = beta
                beta = beta / 2 if np.isinf(beta_low) else (beta + beta_low) / 2
        full = np.insert(probabilities, i, 0.0)
        p[i] = full
    return p


@dataclass
class TSNEResult:
    """Embedding plus the KL divergence of the final iteration."""

    embedding: np.ndarray
    kl_divergence: float


def tsne(
    features: np.ndarray,
    num_components: int = 2,
    perplexity: float = 20.0,
    learning_rate: float = 100.0,
    num_iterations: int = 300,
    early_exaggeration: float = 4.0,
    exaggeration_iterations: int = 50,
    seed: int = 0,
) -> TSNEResult:
    """Embed ``features`` (n, d) into ``num_components`` dimensions."""
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if n < 5:
        raise ValueError("t-SNE needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    rng = np.random.default_rng(seed)

    distances = _pairwise_squared_distances(features)
    p_conditional = _binary_search_perplexity(distances, perplexity)
    p_joint = (p_conditional + p_conditional.T) / (2.0 * n)
    p_joint = np.maximum(p_joint, 1e-12)

    embedding = rng.normal(0.0, 1e-4, size=(n, num_components))
    velocity = np.zeros_like(embedding)
    gains = np.ones_like(embedding)
    kl = np.inf

    for iteration in range(num_iterations):
        exaggeration = early_exaggeration if iteration < exaggeration_iterations else 1.0
        p_effective = p_joint * exaggeration

        embedded_distances = _pairwise_squared_distances(embedding)
        student = 1.0 / (1.0 + embedded_distances)
        np.fill_diagonal(student, 0.0)
        q_joint = np.maximum(student / student.sum(), 1e-12)

        difference = (p_effective - q_joint) * student
        gradient = 4.0 * (np.diag(difference.sum(axis=1)) - difference) @ embedding

        momentum = 0.5 if iteration < 100 else 0.8
        same_sign = np.sign(gradient) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)

        kl = float((p_joint * np.log(p_joint / q_joint)).sum())
    return TSNEResult(embedding=embedding, kl_divergence=kl)


def cluster_separation(embedding: np.ndarray, labels: np.ndarray) -> float:
    """Ratio of mean inter-class centroid distance to mean intra-class spread.

    Larger values mean better-separated class clusters — the quantitative
    proxy for Figure 3's visual claim.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    labels = np.asarray(labels).reshape(-1)
    classes = np.unique(labels)
    if len(classes) < 2:
        raise ValueError("need at least two classes to measure separation")
    centroids = np.stack([embedding[labels == c].mean(axis=0) for c in classes])
    intra = np.mean([
        np.linalg.norm(embedding[labels == c] - centroid, axis=1).mean()
        for c, centroid in zip(classes, centroids)
    ])
    inter_distances = _pairwise_squared_distances(centroids) ** 0.5
    upper = inter_distances[np.triu_indices(len(classes), k=1)]
    inter = upper.mean()
    return float(inter / max(intra, 1e-12))
