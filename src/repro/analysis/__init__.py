"""Analysis tools: t-SNE (Figure 3), confusion tendency (Table 5), information plane (Figure 5)."""

from .confusion import TendencyRow, classification_tendency, confusion_counts, format_tendency_table
from .information_plane import InformationPlanePoint, InformationPlaneRecorder
from .tsne import TSNEResult, cluster_separation, tsne

__all__ = [
    "tsne",
    "TSNEResult",
    "cluster_separation",
    "confusion_counts",
    "classification_tendency",
    "TendencyRow",
    "format_tendency_table",
    "InformationPlaneRecorder",
    "InformationPlanePoint",
]
