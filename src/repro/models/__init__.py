"""Model zoo: the architectures used in the IB-RAR paper.

* :class:`VGG16` (CIFAR-10, SVHN, Tiny ImageNet experiments)
* :class:`ResNet18` (CIFAR-10 experiments)
* :class:`WideResNet28x10` (CIFAR-100 experiments)
* :class:`SmallCNN` / :class:`MLP` (CPU-fast stand-ins with the same interface)

Every model derives from :class:`ImageClassifier`, which exposes hidden
representations for the IB regularizers and supports the Eq. (3) channel mask.
"""

from .base import ImageClassifier
from .registry import MODEL_REGISTRY, available_models, build_model
from .resnet import BasicBlock, ResNet, ResNet18, ResNet34, resnet18
from .small import MLP, SmallCNN
from .vgg import VGG, VGG11, VGG13, VGG16, vgg16
from .wide_resnet import WideBasicBlock, WideResNet, WideResNet28x10, wide_resnet28_10

__all__ = [
    "ImageClassifier",
    "VGG",
    "VGG11",
    "VGG13",
    "VGG16",
    "vgg16",
    "ResNet",
    "ResNet18",
    "ResNet34",
    "resnet18",
    "BasicBlock",
    "WideResNet",
    "WideResNet28x10",
    "wide_resnet28_10",
    "WideBasicBlock",
    "SmallCNN",
    "MLP",
    "MODEL_REGISTRY",
    "build_model",
    "available_models",
]
