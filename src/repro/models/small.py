"""Small reference models used by tests, examples, and fast benches.

``SmallCNN`` keeps the *shape* of the paper's pipeline (a convolutional
feature extractor whose last block can be channel-masked, followed by two
fully connected layers whose outputs feed the IB regularizers) at a size
that trains in seconds on a CPU.  ``MLP`` is a plain fully connected
classifier used by unit tests of the training loop and attack code.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

import numpy as np

from ..nn import BatchNorm2d, Conv2d, Linear, MaxPool2d, Module, ReLU, Sequential, Tensor
from ..nn import functional as F
from .base import ImageClassifier

__all__ = ["SmallCNN", "MLP"]


class SmallCNN(ImageClassifier):
    """Two-conv-block CNN with the same hidden-layer interface as VGG.

    Hidden layers: ``conv_block1``, ``conv_block2`` (last conv, maskable),
    ``fc1``, ``fc2``.  Default input is 3x32x32 (CIFAR-shaped).
    """

    last_conv_name = "conv_block2"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        base_channels: int = 8,
        hidden_dim: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__(num_classes)
        if image_size % 4 != 0:
            raise ValueError("image_size must be divisible by 4")
        rng = np.random.default_rng(seed)
        self.image_size = image_size
        c1, c2 = base_channels, base_channels * 2
        self.conv_block1 = Sequential(
            Conv2d(in_channels, c1, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(c1),
            ReLU(),
            MaxPool2d(2, 2),
        )
        self.conv_block2 = Sequential(
            Conv2d(c1, c2, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(c2),
            ReLU(),
            MaxPool2d(2, 2),
        )
        self._last_conv_channels = c2
        spatial = image_size // 4
        self.fc1 = Linear(c2 * spatial * spatial, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, hidden_dim, rng=rng)
        self.fc3 = Linear(hidden_dim, num_classes, rng=rng)
        self.hidden_dim = hidden_dim

    @property
    def last_conv_channels(self) -> int:
        return self._last_conv_channels

    @property
    def hidden_layer_names(self) -> List[str]:
        return ["conv_block1", "conv_block2", "fc1", "fc2"]

    def forward_with_hidden(self, x: Tensor) -> Tuple[Tensor, "OrderedDict[str, Tensor]"]:
        hidden: "OrderedDict[str, Tensor]" = OrderedDict()
        h = self.conv_block1(x)
        hidden["conv_block1"] = h
        h = self.conv_block2(h)
        h = self._apply_channel_mask(h)
        hidden["conv_block2"] = h
        h = h.flatten(start_dim=1)
        h = self.fc1(h).relu()
        hidden["fc1"] = h
        h = self.fc2(h).relu()
        hidden["fc2"] = h
        logits = self.fc3(h)
        return logits, hidden


class MLP(ImageClassifier):
    """Fully connected classifier over flattened inputs.

    Hidden layers: ``fc1`` ... ``fc{n}``.  There is no convolutional block,
    so the Eq. (3) mask applies to the first hidden layer's units instead
    (the masking mechanics are identical: zero out low-MI feature channels).
    """

    last_conv_name = "fc1"

    def __init__(
        self,
        input_dim: int,
        num_classes: int = 10,
        hidden_dims: Tuple[int, ...] = (64, 32),
        seed: int = 0,
    ) -> None:
        super().__init__(num_classes)
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.hidden_dims = tuple(hidden_dims)
        dims = [input_dim, *hidden_dims]
        self._layers: List[Linear] = []
        for index, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:]), start=1):
            layer = Linear(d_in, d_out, rng=rng)
            setattr(self, f"fc{index}", layer)
            self._layers.append(layer)
        self.head = Linear(dims[-1], num_classes, rng=rng)
        self._last_conv_channels = hidden_dims[0]

    @property
    def last_conv_channels(self) -> int:
        return self._last_conv_channels

    @property
    def hidden_layer_names(self) -> List[str]:
        return [f"fc{i}" for i in range(1, len(self._layers) + 1)]

    def forward_with_hidden(self, x: Tensor) -> Tuple[Tensor, "OrderedDict[str, Tensor]"]:
        hidden: "OrderedDict[str, Tensor]" = OrderedDict()
        h = x if x.ndim == 2 else x.flatten(start_dim=1)
        for index, layer in enumerate(self._layers, start=1):
            h = layer(h).relu()
            if index == 1:
                h = self._apply_channel_mask(h)
            hidden[f"fc{index}"] = h
        logits = self.head(h)
        return logits, hidden
