"""ResNet-18/34 (He et al., 2016) with hidden-layer capture.

Used by the paper for CIFAR-10 (Table 2, Table 4, Figure 6b).  The CIFAR
variant follows the standard recipe: a 3x3 stem convolution (no max-pool)
followed by four residual stages and a global-average-pool classifier.
The four stage outputs plus the pooled feature vector are exposed as hidden
representations for the IB regularizers; the output of ``layer4`` (the last
convolutional stage) is the target of the Eq. (3) channel mask.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from ..nn import BatchNorm2d, Conv2d, Identity, Linear, Module, Sequential, Tensor
from ..nn import functional as F
from .base import ImageClassifier

__all__ = ["BasicBlock", "ResNet", "ResNet18", "ResNet34", "resnet18"]


class BasicBlock(Module):
    """Standard two-convolution residual block with an optional projection."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut_conv = Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng)
            self.shortcut_bn = BatchNorm2d(out_channels)
            self._has_projection = True
        else:
            self._has_projection = False

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        if self._has_projection:
            shortcut = self.shortcut_bn(self.shortcut_conv(x))
        else:
            shortcut = x
        return (out + shortcut).relu()


class ResNet(ImageClassifier):
    """CIFAR-style ResNet built from :class:`BasicBlock` stages.

    Parameters mirror :class:`repro.models.vgg.VGG`: ``width_multiplier``
    scales channel counts to keep CPU runs tractable while preserving the
    residual topology.
    """

    last_conv_name = "layer4"

    def __init__(
        self,
        blocks_per_stage: List[int],
        num_classes: int = 10,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(num_classes)
        rng = np.random.default_rng(seed)
        widths = [max(4, int(round(w * width_multiplier))) for w in (64, 128, 256, 512)]
        self.widths = widths
        self.blocks_per_stage = list(blocks_per_stage)

        self.conv1 = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(widths[0])

        in_ch = widths[0]
        stages: List[Sequential] = []
        for stage_index, (width, count) in enumerate(zip(widths, blocks_per_stage)):
            stride = 1 if stage_index == 0 else 2
            blocks: List[Module] = []
            for block_index in range(count):
                block_stride = stride if block_index == 0 else 1
                blocks.append(BasicBlock(in_ch, width, block_stride, rng))
                in_ch = width
            stages.append(Sequential(*blocks))
        self.layer1, self.layer2, self.layer3, self.layer4 = stages
        self._last_conv_channels = widths[-1]
        self.fc = Linear(widths[-1], num_classes, rng=rng)

    @property
    def last_conv_channels(self) -> int:
        return self._last_conv_channels

    @property
    def hidden_layer_names(self) -> List[str]:
        return ["layer1", "layer2", "layer3", "layer4", "pool"]

    def forward_with_hidden(self, x: Tensor) -> Tuple[Tensor, "OrderedDict[str, Tensor]"]:
        hidden: "OrderedDict[str, Tensor]" = OrderedDict()
        h = self.bn1(self.conv1(x)).relu()
        for name in ["layer1", "layer2", "layer3", "layer4"]:
            h = getattr(self, name)(h)
            if name == self.last_conv_name:
                h = self._apply_channel_mask(h)
            hidden[name] = h
        pooled = F.global_avg_pool2d(h)
        hidden["pool"] = pooled
        logits = self.fc(pooled)
        return logits, hidden


class ResNet18(ResNet):
    def __init__(self, **kwargs) -> None:
        super().__init__(blocks_per_stage=[2, 2, 2, 2], **kwargs)


class ResNet34(ResNet):
    def __init__(self, **kwargs) -> None:
        super().__init__(blocks_per_stage=[3, 4, 6, 3], **kwargs)


def resnet18(num_classes: int = 10, **kwargs) -> ResNet18:
    """Factory matching the paper's CIFAR-10 ResNet-18 configuration."""
    return ResNet18(num_classes=num_classes, **kwargs)
