"""Common interface for the image classifiers used in the paper.

Every model in the zoo is an :class:`ImageClassifier`: a module that, in
addition to producing logits, can expose its intermediate representations
``T_l`` (needed by the IB regularizers of Eq. 1/2) and accept a channel mask
applied to the output of its **last convolutional block** (Eq. 3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import Module, Tensor, no_grad

__all__ = ["ImageClassifier", "HiddenRepresentations", "predict_batched"]

HiddenRepresentations = "OrderedDict[str, Tensor]"


class ImageClassifier(Module):
    """Base class for classifiers that expose hidden representations.

    Subclasses must implement :meth:`forward_with_hidden` which returns
    ``(logits, hidden)`` where ``hidden`` is an ordered mapping from layer
    name (e.g. ``"conv_block5"``, ``"fc1"``) to the layer's output tensor.
    The ordinary :meth:`forward` simply discards the hidden outputs.

    Attributes
    ----------
    num_classes:
        Number of output classes.
    channel_mask:
        Optional binary vector of length ``last_conv_channels``.  When set
        (via :meth:`set_channel_mask`) the output of the last convolutional
        block is multiplied channel-wise by this mask on every forward pass,
        implementing Eq. (3) of the paper.
    """

    #: name of the hidden entry holding the last convolutional block output
    last_conv_name: str = "conv_block5"

    def __init__(self, num_classes: int) -> None:
        super().__init__()
        self.num_classes = num_classes
        self.channel_mask: Optional[np.ndarray] = None

    # -- mask management -------------------------------------------------------
    @property
    def last_conv_channels(self) -> int:
        """Number of channels produced by the last convolutional block."""
        raise NotImplementedError

    def set_channel_mask(self, mask: Optional[np.ndarray]) -> None:
        """Install (or clear, with ``None``) the Eq. (3) feature-channel mask."""
        if mask is not None:
            mask = np.asarray(mask, dtype=np.float64).reshape(-1)
            if mask.shape[0] != self.last_conv_channels:
                raise ValueError(
                    f"mask has {mask.shape[0]} entries but the last conv block has "
                    f"{self.last_conv_channels} channels"
                )
        self.channel_mask = mask

    def _apply_channel_mask(self, features: Tensor) -> Tensor:
        """Multiply an NCHW (or NC) tensor channel-wise by the installed mask."""
        if self.channel_mask is None:
            return features
        if features.ndim == 4:
            mask = self.channel_mask.reshape(1, -1, 1, 1)
        else:
            mask = self.channel_mask.reshape(1, -1)
        return features * Tensor(mask)

    # -- forward interface -------------------------------------------------------
    def forward_with_hidden(self, x: Tensor) -> Tuple[Tensor, "OrderedDict[str, Tensor]"]:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        logits, _ = self.forward_with_hidden(x)
        return logits

    # -- convenience -------------------------------------------------------------
    @property
    def hidden_layer_names(self) -> List[str]:
        """Names of the hidden representations, in forward order."""
        raise NotImplementedError

    def features(self, x: Tensor, layer: Optional[str] = None) -> Tensor:
        """Return the representation of ``layer`` (default: penultimate layer)."""
        _, hidden = self.forward_with_hidden(x)
        if layer is None:
            layer = self.hidden_layer_names[-1]
        if layer not in hidden:
            raise KeyError(f"unknown layer '{layer}'; available: {list(hidden)}")
        return hidden[layer]

    @no_grad()
    def predict(self, x: Tensor) -> np.ndarray:
        """Return hard class predictions as an integer array.

        Decorated with :class:`~repro.nn.no_grad`: predictions are
        forward-only, so no autograd graph is ever recorded for them (the
        same convention every attack's forward-only pass follows).
        """
        logits = self.forward(x)
        return np.argmax(logits.data, axis=1)


def predict_batched(model: "ImageClassifier", images: np.ndarray, batch_size: int = 128) -> np.ndarray:
    """Hard predictions in eval mode, batched, without building a graph.

    Shared by the evaluation metrics and the attack engine; the model's
    train/eval mode is restored afterwards.
    """
    outputs = []
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for start in range(0, len(images), batch_size):
                outputs.append(model.predict(Tensor(images[start : start + batch_size])))
    finally:
        model.train(was_training)
    return np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)
