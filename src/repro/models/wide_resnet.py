"""Wide ResNet (Zagoruyko & Komodakis, 2016) with hidden-layer capture.

The paper uses WideResNet-28-10 for CIFAR-100 (Table 2, right half).  The
depth/width parametrization follows the original paper: depth ``d`` means
``(d - 4) / 6`` blocks per stage, and the widen factor multiplies the base
widths (16, 32, 64).  Pre-activation residual blocks are used, as in the
reference implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

import numpy as np

from ..nn import BatchNorm2d, Conv2d, Linear, Module, Sequential, Tensor
from ..nn import functional as F
from .base import ImageClassifier

__all__ = ["WideBasicBlock", "WideResNet", "WideResNet28x10", "wide_resnet28_10"]


class WideBasicBlock(Module):
    """Pre-activation residual block used by Wide ResNet."""

    def __init__(self, in_channels: int, out_channels: int, stride: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.bn1 = BatchNorm2d(in_channels)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng)
            self._has_projection = True
        else:
            self._has_projection = False

    def forward(self, x: Tensor) -> Tensor:
        pre = self.bn1(x).relu()
        out = self.conv1(pre)
        out = self.conv2(self.bn2(out).relu())
        shortcut = self.shortcut(pre) if self._has_projection else x
        return out + shortcut


class WideResNet(ImageClassifier):
    """WRN-d-k: depth ``d`` and widen factor ``k`` over three stages."""

    last_conv_name = "stage3"

    def __init__(
        self,
        depth: int = 28,
        widen_factor: int = 10,
        num_classes: int = 100,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(num_classes)
        if (depth - 4) % 6 != 0:
            raise ValueError("WideResNet depth must satisfy depth = 6n + 4")
        rng = np.random.default_rng(seed)
        blocks_per_stage = (depth - 4) // 6
        base_widths = [16, 16 * widen_factor, 32 * widen_factor, 64 * widen_factor]
        widths = [max(4, int(round(w * width_multiplier))) for w in base_widths]
        self.depth = depth
        self.widen_factor = widen_factor
        self.widths = widths

        self.conv1 = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)

        in_ch = widths[0]
        stages: List[Sequential] = []
        for stage_index, width in enumerate(widths[1:]):
            stride = 1 if stage_index == 0 else 2
            blocks: List[Module] = []
            for block_index in range(blocks_per_stage):
                block_stride = stride if block_index == 0 else 1
                blocks.append(WideBasicBlock(in_ch, width, block_stride, rng))
                in_ch = width
            stages.append(Sequential(*blocks))
        self.stage1, self.stage2, self.stage3 = stages
        self.bn_final = BatchNorm2d(widths[-1])
        self._last_conv_channels = widths[-1]
        self.fc = Linear(widths[-1], num_classes, rng=rng)

    @property
    def last_conv_channels(self) -> int:
        return self._last_conv_channels

    @property
    def hidden_layer_names(self) -> List[str]:
        return ["stage1", "stage2", "stage3", "pool"]

    def forward_with_hidden(self, x: Tensor) -> Tuple[Tensor, "OrderedDict[str, Tensor]"]:
        hidden: "OrderedDict[str, Tensor]" = OrderedDict()
        h = self.conv1(x)
        for name in ["stage1", "stage2", "stage3"]:
            h = getattr(self, name)(h)
            if name == self.last_conv_name:
                h = self._apply_channel_mask(h)
            hidden[name] = h
        h = self.bn_final(h).relu()
        pooled = F.global_avg_pool2d(h)
        hidden["pool"] = pooled
        logits = self.fc(pooled)
        return logits, hidden


class WideResNet28x10(WideResNet):
    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("depth", 28)
        kwargs.setdefault("widen_factor", 10)
        super().__init__(**kwargs)


def wide_resnet28_10(num_classes: int = 100, **kwargs) -> WideResNet28x10:
    """Factory matching the paper's CIFAR-100 WRN-28-10 configuration."""
    return WideResNet28x10(num_classes=num_classes, **kwargs)
