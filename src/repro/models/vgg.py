"""VGG networks (Simonyan & Zisserman, 2014) with hidden-layer capture.

The paper's main experiments (Tables 1, 3, 4; Figures 2-6) use VGG16 on
CIFAR-10 / Tiny ImageNet / SVHN.  The implementation keeps the reference
topology — five convolutional blocks followed by three fully connected
layers — and exposes every block output as a hidden representation for the
IB regularizers.  A ``width_multiplier`` scales the channel counts so the
CPU-only benches stay tractable while preserving the architecture shape.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import BatchNorm2d, Conv2d, Dropout, Linear, MaxPool2d, Module, ReLU, Sequential, Tensor
from ..nn import functional as F
from .base import ImageClassifier

__all__ = ["VGG", "VGG11", "VGG13", "VGG16", "vgg16"]

# Standard VGG configurations: numbers are conv output channels, "M" is maxpool.
_VGG_CONFIGS: Dict[str, List] = {
    "VGG11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "VGG13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "VGG16": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, "M",
        512, 512, 512, "M",
        512, 512, 512, "M",
    ],
}


class _ConvBlock(Module):
    """A VGG convolutional block: (conv-bn-relu)* followed by max-pool."""

    def __init__(
        self,
        in_channels: int,
        out_channels_list: List[int],
        batch_norm: bool,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        layers: List[Module] = []
        current = in_channels
        for out_channels in out_channels_list:
            layers.append(Conv2d(current, out_channels, 3, padding=1, bias=not batch_norm, rng=rng))
            if batch_norm:
                layers.append(BatchNorm2d(out_channels))
            layers.append(ReLU())
            current = out_channels
        layers.append(MaxPool2d(2, 2))
        self.block = Sequential(*layers)
        self.out_channels = current

    def forward(self, x: Tensor) -> Tensor:
        return self.block(x)


class VGG(ImageClassifier):
    """VGG network organised into five blocks plus a three-layer classifier.

    Parameters
    ----------
    config:
        One of ``"VGG11"``, ``"VGG13"``, ``"VGG16"``.
    num_classes:
        Output dimensionality (10 for CIFAR-10/SVHN, 100 for CIFAR-100,
        200 for Tiny ImageNet).
    in_channels:
        Input channels (3 for RGB images).
    image_size:
        Spatial size of the (square) input.  32 for CIFAR, 64 for Tiny
        ImageNet.  Must be divisible by 32 so five max-pools are valid.
    width_multiplier:
        Scales every channel count; 1.0 reproduces the reference widths,
        smaller values give CPU-sized models with the same topology.
    hidden_dim:
        Width of the two fully connected hidden layers (512 in the paper's
        CIFAR variant of VGG16).
    batch_norm:
        Whether to insert BatchNorm after each convolution (the paper's
        training recipe uses it).
    """

    last_conv_name = "conv_block5"

    def __init__(
        self,
        config: str = "VGG16",
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        width_multiplier: float = 1.0,
        hidden_dim: int = 512,
        batch_norm: bool = True,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(num_classes)
        if config not in _VGG_CONFIGS:
            raise ValueError(f"unknown VGG config '{config}'")
        if image_size % 32 != 0:
            raise ValueError("image_size must be divisible by 32 for five max-pool stages")
        rng = np.random.default_rng(seed)
        self.config = config
        self.image_size = image_size
        self.width_multiplier = width_multiplier

        # Split the flat config into the five blocks delimited by "M".
        block_channels: List[List[int]] = []
        current: List[int] = []
        for entry in _VGG_CONFIGS[config]:
            if entry == "M":
                block_channels.append(current)
                current = []
            else:
                scaled = max(4, int(round(entry * width_multiplier)))
                current.append(scaled)
        if len(block_channels) != 5:
            raise RuntimeError("VGG config must contain exactly five pooling stages")

        in_ch = in_channels
        blocks: List[_ConvBlock] = []
        for channels in block_channels:
            block = _ConvBlock(in_ch, channels, batch_norm, rng)
            blocks.append(block)
            in_ch = block.out_channels
        self.conv_block1, self.conv_block2, self.conv_block3, self.conv_block4, self.conv_block5 = blocks
        self._last_conv_channels = blocks[-1].out_channels

        spatial = image_size // 32
        feature_dim = self._last_conv_channels * spatial * spatial
        hidden_dim = max(8, int(round(hidden_dim * width_multiplier))) if width_multiplier != 1.0 else hidden_dim
        self.fc1 = Linear(feature_dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, hidden_dim, rng=rng)
        self.fc3 = Linear(hidden_dim, num_classes, rng=rng)
        # Counter-based dropout: masks derive from (seed, layer_id, step),
        # so they are replayable under compile and exact across resume.
        self.dropout1 = Dropout(dropout, seed=seed, layer_id=1) if dropout > 0 else None
        self.dropout2 = Dropout(dropout, seed=seed, layer_id=2) if dropout > 0 else None
        self.hidden_dim = hidden_dim

    # -- ImageClassifier interface -------------------------------------------
    @property
    def last_conv_channels(self) -> int:
        return self._last_conv_channels

    @property
    def hidden_layer_names(self) -> List[str]:
        return [
            "conv_block1",
            "conv_block2",
            "conv_block3",
            "conv_block4",
            "conv_block5",
            "fc1",
            "fc2",
        ]

    def forward_with_hidden(self, x: Tensor) -> Tuple[Tensor, "OrderedDict[str, Tensor]"]:
        hidden: "OrderedDict[str, Tensor]" = OrderedDict()
        h = x
        for name in ["conv_block1", "conv_block2", "conv_block3", "conv_block4", "conv_block5"]:
            block: _ConvBlock = getattr(self, name)
            h = block(h)
            if name == self.last_conv_name:
                h = self._apply_channel_mask(h)
            hidden[name] = h
        h = h.flatten(start_dim=1)
        h = self.fc1(h).relu()
        if self.dropout1 is not None:
            h = self.dropout1(h)
        hidden["fc1"] = h
        h = self.fc2(h).relu()
        if self.dropout2 is not None:
            h = self.dropout2(h)
        hidden["fc2"] = h
        logits = self.fc3(h)
        return logits, hidden


class VGG11(VGG):
    def __init__(self, **kwargs) -> None:
        super().__init__(config="VGG11", **kwargs)


class VGG13(VGG):
    def __init__(self, **kwargs) -> None:
        super().__init__(config="VGG13", **kwargs)


class VGG16(VGG):
    def __init__(self, **kwargs) -> None:
        super().__init__(config="VGG16", **kwargs)


def vgg16(num_classes: int = 10, **kwargs) -> VGG16:
    """Factory matching the paper's default VGG16 configuration."""
    return VGG16(num_classes=num_classes, **kwargs)
