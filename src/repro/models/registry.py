"""Model registry: build any paper architecture by name.

The benches and examples refer to models by the names used in the paper
("vgg16", "resnet18", "wrn28-10", ...).  The registry maps those names to
factories and applies the dataset-appropriate defaults (class counts and
input sizes).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import ImageClassifier
from .resnet import ResNet18, ResNet34
from .small import MLP, SmallCNN
from .vgg import VGG11, VGG13, VGG16
from .wide_resnet import WideResNet28x10

__all__ = ["MODEL_REGISTRY", "build_model", "available_models"]

MODEL_REGISTRY: Dict[str, Callable[..., ImageClassifier]] = {
    "vgg11": VGG11,
    "vgg13": VGG13,
    "vgg16": VGG16,
    "resnet18": ResNet18,
    "resnet34": ResNet34,
    "wrn28-10": WideResNet28x10,
    "wideresnet28-10": WideResNet28x10,
    "smallcnn": SmallCNN,
    "mlp": MLP,
}


def available_models() -> List[str]:
    """Return the sorted list of model names accepted by :func:`build_model`."""
    return sorted(MODEL_REGISTRY)


def build_model(name: str, num_classes: int = 10, **kwargs) -> ImageClassifier:
    """Instantiate a model by its registry name.

    Extra keyword arguments (``width_multiplier``, ``image_size``, ``seed``,
    ...) are forwarded to the model constructor.
    """
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model '{name}'; available: {available_models()}")
    return MODEL_REGISTRY[key](num_classes=num_classes, **kwargs)
