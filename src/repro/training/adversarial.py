"""Training-loss strategies: plain CE and the three adversarial-training benchmarks.

The paper combines IB-RAR with three adversarial-training methods:

* **PGD adversarial training** (Madry et al., 2018) — train on PGD examples
  only (Eq. 2's ``max_delta L_CE`` inner problem).
* **TRADES** (Zhang et al., 2019) — CE on clean examples plus a KL term
  between clean and adversarial predictions, weighted by ``beta``.
* **MART** (Wang et al., 2020) — boosted CE on adversarial examples plus a
  misclassification-aware KL term.

Each strategy is a callable ``(model, images, labels) -> scalar Tensor`` so
the :class:`repro.training.Trainer` and the IB-RAR wrapper in
:mod:`repro.core` can compose them freely.
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from ..nn import Tensor
from ..nn import functional as F
from ..models.base import ImageClassifier
from ..attacks.pgd import PGD

__all__ = [
    "LossStrategy",
    "CrossEntropyLoss",
    "PGDAdversarialLoss",
    "TRADESLoss",
    "MARTLoss",
    "ADVERSARIAL_TRAINING_REGISTRY",
    "build_training_loss",
]


class LossStrategy(Protocol):
    """Protocol for training-loss strategies."""

    name: str

    def __call__(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> Tensor:
        ...

    def hyperparameters(self) -> dict:
        """Constructor arguments, JSON-ready (for :class:`repro.training.LossSpec`)."""
        ...


class CrossEntropyLoss:
    """Plain CE training (the undefended baseline, row (1) of Table 4)."""

    name = "ce"

    def hyperparameters(self) -> dict:
        return {}

    def loss_and_logits(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> tuple:
        """Return ``(loss, clean logits)`` from a single forward pass.

        The trainer reuses the logits for the training-accuracy metric, so
        plain-CE epochs run one forward pass per batch instead of two.
        """
        logits = model.forward(Tensor(images))
        return F.cross_entropy(logits, labels), logits

    def __call__(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> Tensor:
        return self.loss_and_logits(model, images, labels)[0]


class PGDAdversarialLoss:
    """Madry-style adversarial training: CE on PGD examples only.

    Paper setting: eps = 8/255, alpha = 2/255, 10 inner steps; clean examples
    are not used in the loss.
    """

    name = "pgd"

    def __init__(
        self,
        eps: float = 8.0 / 255.0,
        alpha: float = 2.0 / 255.0,
        steps: int = 10,
        random_start: bool = True,
        seed: int = 0,
    ) -> None:
        self.eps = eps
        self.alpha = alpha
        self.steps = steps
        self.random_start = random_start
        self.seed = seed

    def hyperparameters(self) -> dict:
        return {
            "eps": self.eps,
            "alpha": self.alpha,
            "steps": self.steps,
            "random_start": self.random_start,
            "seed": self.seed,
        }

    def generate(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        attack = PGD(
            model,
            eps=self.eps,
            alpha=self.alpha,
            steps=self.steps,
            random_start=self.random_start,
            seed=self.seed,
        )
        return attack.attack(images, labels)

    def __call__(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> Tensor:
        adversarial = self.generate(model, images, labels)
        logits = model.forward(Tensor(adversarial))
        return F.cross_entropy(logits, labels)


class TRADESLoss:
    """TRADES: ``CE(clean) + beta * KL(p(x) || p(x_adv))``.

    The inner maximization perturbs ``x`` to maximize the KL divergence from
    the clean prediction, as in the reference implementation.
    """

    name = "trades"

    def __init__(
        self,
        beta: float = 6.0,
        eps: float = 8.0 / 255.0,
        alpha: float = 2.0 / 255.0,
        steps: int = 10,
        seed: int = 0,
    ) -> None:
        self.beta = beta
        self.eps = eps
        self.alpha = alpha
        self.steps = steps
        self.seed = seed

    def hyperparameters(self) -> dict:
        return {
            "beta": self.beta,
            "eps": self.eps,
            "alpha": self.alpha,
            "steps": self.steps,
            "seed": self.seed,
        }

    def generate(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Inner maximization of the KL term via PGD."""
        from ..nn import no_grad

        with no_grad():
            clean_logits = model.forward(Tensor(images)).data

        def kl_loss(m: ImageClassifier, x: Tensor, y: np.ndarray) -> Tensor:
            adv_logits = m.forward(x)
            return F.kl_div_with_logits(Tensor(clean_logits), adv_logits)

        attack = PGD(
            model,
            eps=self.eps,
            alpha=self.alpha,
            steps=self.steps,
            random_start=True,
            loss_fn=kl_loss,
            seed=self.seed,
        )
        return attack.attack(images, labels)

    def __call__(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> Tensor:
        adversarial = self.generate(model, images, labels)
        clean_logits = model.forward(Tensor(images))
        adv_logits = model.forward(Tensor(adversarial))
        natural = F.cross_entropy(clean_logits, labels)
        robust = F.kl_div_with_logits(clean_logits, adv_logits)
        return natural + robust * self.beta


class MARTLoss:
    """MART: boosted CE on adversarial examples + misclassification-aware KL.

    ``L = BCE(p_adv, y) + beta * KL(p_clean || p_adv) * (1 - p_clean[y])``
    with ``BCE(p, y) = -log p_y - log(1 - max_{k != y} p_k)``.
    """

    name = "mart"

    def __init__(
        self,
        beta: float = 5.0,
        eps: float = 8.0 / 255.0,
        alpha: float = 2.0 / 255.0,
        steps: int = 10,
        seed: int = 0,
    ) -> None:
        self.beta = beta
        self.eps = eps
        self.alpha = alpha
        self.steps = steps
        self.seed = seed

    def hyperparameters(self) -> dict:
        return {
            "beta": self.beta,
            "eps": self.eps,
            "alpha": self.alpha,
            "steps": self.steps,
            "seed": self.seed,
        }

    def generate(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        attack = PGD(
            model,
            eps=self.eps,
            alpha=self.alpha,
            steps=self.steps,
            random_start=True,
            seed=self.seed,
        )
        return attack.attack(images, labels)

    def __call__(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> Tensor:
        n = len(labels)
        num_classes = model.num_classes
        adversarial = self.generate(model, images, labels)
        adv_logits = model.forward(Tensor(adversarial))
        clean_logits = model.forward(Tensor(images))
        adv_probs = F.softmax(adv_logits, axis=1)
        clean_probs = F.softmax(clean_logits, axis=1)

        true_mask = Tensor(F.one_hot(labels, num_classes))
        adv_true = (adv_probs * true_mask).sum(axis=1)
        # Largest wrong-class probability under the adversarial prediction.
        adv_wrong_max = (adv_probs + true_mask * (-1e9)).max(axis=1)
        boosted_ce = -((adv_true + 1e-12).log()) - ((1.0 - adv_wrong_max + 1e-12).log())

        kl_per_example = F.kl_div_with_logits(clean_logits, adv_logits, reduction="none")
        clean_true = (clean_probs * true_mask).sum(axis=1)
        weighted_kl = kl_per_example * (1.0 - clean_true)
        return boosted_ce.mean() + weighted_kl.mean() * self.beta


ADVERSARIAL_TRAINING_REGISTRY = {
    "ce": CrossEntropyLoss,
    "pgd": PGDAdversarialLoss,
    "trades": TRADESLoss,
    "mart": MARTLoss,
}


def build_training_loss(name: str, **kwargs) -> LossStrategy:
    """Instantiate a training-loss strategy by name ("ce", "pgd", "trades", "mart")."""
    key = name.lower()
    if key not in ADVERSARIAL_TRAINING_REGISTRY:
        raise KeyError(
            f"unknown training loss '{name}'; available: {sorted(ADVERSARIAL_TRAINING_REGISTRY)}"
        )
    return ADVERSARIAL_TRAINING_REGISTRY[key](**kwargs)
