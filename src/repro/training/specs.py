"""Loss-strategy specs: declarative, serializable training-loss descriptions.

Mirrors the :class:`repro.attacks.AttackSpec` idiom for training losses: a
:class:`LossSpec` is a frozen ``(registry name, hyperparameters)`` pair with a
canonical JSON form, so a whole training recipe (plain CE, PGD-AT, TRADES,
MART, or an IB-RAR-wrapped variant) can be embedded in experiment specs,
hashed deterministically, shipped across process boundaries, and rebuilt with
:meth:`LossSpec.build`.

Hyperparameters are stored as a canonical (sorted-keys) JSON string rather
than the attack module's tuple-of-pairs because IB-RAR loss specs nest whole
:class:`~repro.core.config.IBRARConfig` dicts and sub-loss specs.

Unknown names and hyperparameters raise :class:`LossConfigError` (the
training-loss analogue of :class:`repro.attacks.AttackConfigError`).
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Union

from .adversarial import (
    ADVERSARIAL_TRAINING_REGISTRY,
    CrossEntropyLoss,
    LossStrategy,
    MARTLoss,
    PGDAdversarialLoss,
    TRADESLoss,
)

__all__ = [
    "LossConfigError",
    "LossSpec",
    "LOSS_REGISTRY",
    "available_losses",
    "build_loss",
    "coerce_loss_spec",
]


class LossConfigError(ValueError):
    """Unknown loss name or invalid hyperparameters for a training loss."""


def _ibrar_mi_factory(**kwargs) -> LossStrategy:
    from ..core.losses import MILoss

    return MILoss(**kwargs)


def _ibrar_adversarial_factory(**kwargs) -> LossStrategy:
    from ..core.losses import AdversarialMILoss

    return AdversarialMILoss(**kwargs)


def _ibrar_mi_signature() -> inspect.Signature:
    from ..core.losses import MILoss

    return inspect.signature(MILoss.__init__)


def _ibrar_adversarial_signature() -> inspect.Signature:
    from ..core.losses import AdversarialMILoss

    return inspect.signature(AdversarialMILoss.__init__)


#: name -> factory.  The four benchmark strategies come straight from
#: ADVERSARIAL_TRAINING_REGISTRY; the IB-RAR variants are factories that
#: import repro.core lazily (core imports this package, not vice versa).
LOSS_REGISTRY: Dict[str, Callable[..., LossStrategy]] = dict(ADVERSARIAL_TRAINING_REGISTRY)
LOSS_REGISTRY["ib-rar-mi"] = _ibrar_mi_factory
LOSS_REGISTRY["ib-rar-adversarial"] = _ibrar_adversarial_factory

_SIGNATURE_PROVIDERS: Dict[str, Callable[[], inspect.Signature]] = {
    "ib-rar-mi": _ibrar_mi_signature,
    "ib-rar-adversarial": _ibrar_adversarial_signature,
}

#: hyperparameters of the IB-RAR variants that arrive as JSON dicts and need
#: reviving into richer objects before the constructor sees them.
_CONFIG_KEYS = ("config",)
_NESTED_SPEC_KEYS = ("base_loss", "adversarial_strategy")


def available_losses() -> List[str]:
    """Sorted registry names accepted by :func:`build_loss`."""
    return sorted(LOSS_REGISTRY)


def _signature_for(name: str) -> inspect.Signature:
    provider = _SIGNATURE_PROVIDERS.get(name)
    if provider is not None:
        return provider()
    return inspect.signature(LOSS_REGISTRY[name].__init__)


def _accepted_hyperparameters(name: str) -> List[str]:
    signature = _signature_for(name)
    return [p for p in signature.parameters if p not in ("self", "args", "kwargs")]


def _revive(name: str, kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Turn JSON-shaped hyperparameter values back into constructor objects."""
    revived = dict(kwargs)
    for key in _CONFIG_KEYS:
        value = revived.get(key)
        if isinstance(value, Mapping):
            from ..core.config import IBRARConfig

            revived[key] = IBRARConfig.from_dict(dict(value))
    for key in _NESTED_SPEC_KEYS:
        value = revived.get(key)
        if isinstance(value, (Mapping, str)):
            revived[key] = coerce_loss_spec(value).build()
    return revived


def build_loss(name: str, strict: bool = True, **kwargs) -> LossStrategy:
    """Instantiate a training loss by registry name with validated kwargs.

    Unknown names raise :class:`LossConfigError` listing the registry;
    unknown hyperparameters raise (or, with ``strict=False``, are dropped)
    with the accepted names in the message — the same contract as
    :func:`repro.attacks.build_attack`.
    """
    key = str(name).lower()
    if key not in LOSS_REGISTRY:
        raise LossConfigError(
            f"unknown training loss '{name}'; available: {available_losses()}"
        )
    accepted = _accepted_hyperparameters(key)
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        if strict:
            raise LossConfigError(
                f"training loss '{key}' does not accept hyperparameter(s) "
                f"{unknown}; accepted: {sorted(accepted)}"
            )
        kwargs = {k: v for k, v in kwargs.items() if k in accepted}
    return LOSS_REGISTRY[key](**_revive(key, kwargs))


def _canonical_params(name: str, params: Any) -> str:
    """Normalize hyperparameters to a canonical (sorted-keys) JSON object.

    Canonicalization *completes* the params with the constructor defaults of
    the named loss, so the same recipe hashes identically no matter how it
    was expressed: ``LossSpec("pgd", {"steps": 3})`` equals
    ``LossSpec.from_strategy(PGDAdversarialLoss(steps=3))`` (which reports
    every constructor argument).  Unknown names and hyperparameters are
    rejected here, at spec construction, rather than at build time.
    """
    if params is None:
        params = {}
    if isinstance(params, str):
        params = json.loads(params) if params else {}
    elif isinstance(params, Mapping):
        params = dict(params)
    elif isinstance(params, Iterable):
        params = dict(params)
    if not isinstance(params, dict):
        raise LossConfigError(f"loss hyperparameters must be a mapping, got {params!r}")
    if name not in LOSS_REGISTRY:
        raise LossConfigError(f"unknown training loss '{name}'; available: {available_losses()}")
    signature = _signature_for(name)
    accepted = [p for p in signature.parameters if p not in ("self", "args", "kwargs")]
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        raise LossConfigError(
            f"training loss '{name}' does not accept hyperparameter(s) {unknown}; "
            f"accepted: {sorted(accepted)}"
        )
    for parameter_name in accepted:
        default = signature.parameters[parameter_name].default
        if parameter_name not in params and default is not inspect.Parameter.empty:
            params[parameter_name] = default
    try:
        return json.dumps(params, sort_keys=True)
    except TypeError as error:
        raise LossConfigError(
            f"loss hyperparameters {params!r} are not JSON-serializable: {error}"
        ) from None


@dataclass(frozen=True)
class LossSpec:
    """A frozen, model-free description of a training loss.

    ``params`` accepts a mapping (or a JSON object string) and is normalized
    to canonical JSON *completed with the loss's constructor defaults*, so
    equal recipes compare and hash equal regardless of key order or of how
    explicitly they were spelled out (``LossSpec("pgd", {"steps": 3})`` ==
    ``LossSpec.from_strategy(PGDAdversarialLoss(steps=3))``).  Unknown loss
    names and hyperparameters are rejected at construction.
    """

    name: str
    params: Any = "{}"

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name).lower())
        object.__setattr__(self, "params", _canonical_params(self.name, self.params))

    # -- accessors ---------------------------------------------------------------
    @property
    def kwargs(self) -> Dict[str, Any]:
        """Hyperparameters as a plain keyword dict (build-ready)."""
        return json.loads(self.params)

    def with_params(self, **updates: Any) -> "LossSpec":
        merged = self.kwargs
        merged.update(updates)
        return LossSpec(self.name, merged)

    # -- construction ------------------------------------------------------------
    def build(self, **overrides: Any) -> LossStrategy:
        """Instantiate the strategy (strict hyperparameter checking)."""
        kwargs = self.kwargs
        kwargs.update(overrides)
        return build_loss(self.name, **kwargs)

    @classmethod
    def from_strategy(cls, strategy: LossStrategy) -> "LossSpec":
        """Recover the spec of a constructed strategy via ``hyperparameters()``."""
        hyper = getattr(strategy, "hyperparameters", None)
        if hyper is None:
            raise LossConfigError(
                f"{type(strategy).__name__} does not expose hyperparameters(); "
                "cannot derive a LossSpec from it"
            )
        return cls(strategy.name, hyper())

    # -- serialization -----------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": self.kwargs}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LossSpec":
        if "name" not in data:
            raise LossConfigError(f"loss spec dict needs a 'name' key: {dict(data)!r}")
        return cls(data["name"], data.get("params", {}))

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LossSpec":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.kwargs.items()))
        return f"LossSpec({self.name!r}, {inner})" if inner else f"LossSpec({self.name!r})"


def coerce_loss_spec(entry: Union["LossSpec", LossStrategy, str, Mapping[str, Any]]) -> "LossSpec":
    """Turn a spec / strategy / registry name / dict into a :class:`LossSpec`."""
    if isinstance(entry, LossSpec):
        return entry
    if isinstance(entry, str):
        return LossSpec(entry)
    if isinstance(entry, Mapping):
        return LossSpec.from_dict(entry)
    if callable(entry):
        return LossSpec.from_strategy(entry)
    raise LossConfigError(f"cannot interpret {entry!r} as a loss spec")
