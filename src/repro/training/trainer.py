"""Generic training loop shared by every experiment in the reproduction.

The :class:`Trainer` follows Algorithm 1 of the paper: iterate mini-batches,
compute the configured loss strategy (plain CE, an adversarial-training loss,
or an IB-RAR wrapped loss from :mod:`repro.core`), back-propagate, and step
SGD + StepLR.  Optional per-epoch evaluation records the natural and
adversarial accuracy curves used by Figures 2d and 4.

``Trainer(compile=True)`` routes supported loss strategies through
:mod:`repro.compile.training`: the training-mode forward, the full
parameter-gradient backward and the optimizer update replay static,
buffer-pooled plans, with automatic per-batch eager fallback.  The per-epoch
evaluation hooks are offered a live-parameter compiled eval model (captured
once, tracking every in-place weight update) when they declare a
``compiled`` parameter.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, Optional

import numpy as np

from ..nn import Tensor, advance_dropout_steps, no_grad
from ..nn.optim import Optimizer, SGD, StepLR, _Scheduler
from ..data.loaders import DataLoader
from ..models.base import ImageClassifier
from ..obs import publish_dict as _publish_dict, records as _records, trace as _trace
from .adversarial import CrossEntropyLoss, LossStrategy
from .history import EpochRecord, TrainingHistory

__all__ = ["Trainer", "evaluate_accuracy"]


def evaluate_accuracy(
    model: ImageClassifier,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 128,
    compiled=None,
) -> float:
    """Top-1 accuracy of ``model`` on an array of images (no gradients).

    ``compiled`` optionally supplies a :class:`repro.compile.CompiledModel`
    for the same module: predictions then replay its static eval plans
    (falling back to eager for unseen shapes) instead of building the
    dynamic graph batch by batch.  The :class:`Trainer`'s per-epoch hooks
    pass one automatically when compilation is enabled.
    """
    labels = np.asarray(labels).reshape(-1)
    correct = 0
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for start in range(0, len(images), batch_size):
                batch = images[start : start + batch_size]
                batch_labels = labels[start : start + batch_size]
                if compiled is not None:
                    predictions = compiled.predict(batch)
                else:
                    predictions = model.predict(Tensor(batch))
                correct += int((predictions == batch_labels).sum())
    finally:
        model.train(was_training)
    return correct / max(len(labels), 1)


def _hook_accepts_compiled(hook: Callable) -> bool:
    """Whether an eval hook opts into the compiled model argument.

    Opt-in is explicit: the hook must declare a parameter *named*
    ``compiled`` (e.g. ``def hook(model, compiled=None)``).  A mere second
    positional parameter is not enough — existing hooks with unrelated
    extras (``def hook(model, batch_size=128)``) must keep receiving only
    the model.
    """
    try:
        signature = inspect.signature(hook)
    except (TypeError, ValueError):
        return False
    parameter = signature.parameters.get("compiled")
    return parameter is not None and parameter.kind in (
        parameter.POSITIONAL_OR_KEYWORD,
        parameter.KEYWORD_ONLY,
    )


class Trainer:
    """Mini-batch trainer with optional per-epoch evaluation hooks.

    Parameters
    ----------
    model:
        The classifier to optimize.
    loss_strategy:
        Callable ``(model, images, labels) -> Tensor`` computing the training
        loss for one batch; defaults to plain cross-entropy.
    optimizer:
        Defaults to the paper's SGD (lr 0.01, momentum 0.9, weight decay 1e-2).
    scheduler:
        Defaults to the paper's StepLR (step 20, gamma 0.2).
    eval_natural / eval_adversarial:
        Optional callables run at the end of every epoch; their results
        populate the corresponding history columns.  A hook is called as
        ``hook(model)`` — or, when compilation is enabled and the hook
        explicitly declares a ``compiled`` parameter (e.g.
        ``def hook(model, compiled=None)``), as
        ``hook(model, compiled=compiled_eval)`` with a persistent
        :class:`repro.compile.training.LiveEvalModel` (a
        ``CompiledModel``-compatible eval view over the live weights).
    epoch_callback:
        Optional hook ``(trainer, record) -> None`` invoked after each epoch
        (used by the IB-RAR trainer to refresh the Eq. (3) mask and by the
        convergence-rescue experiment to switch loss strategies).
    compile:
        Execute supported training steps through static, buffer-pooled
        plans (:mod:`repro.compile.training`) — the adversarial and IB-RAR
        loss terms included, as in-plan nodes.  Unsupported strategies and
        unseen batch signatures fall back to eager per batch, so enabling
        this is always safe; :attr:`TrainingHistory.compile_stats` reports
        the compiled-vs-eager split, the capture count (one traced forward
        per batch signature) and the compiled forward-replay counters the
        experiment runner folds into ``train_forward_examples``.
    """

    def __init__(
        self,
        model: ImageClassifier,
        loss_strategy: Optional[LossStrategy] = None,
        optimizer: Optional[Optimizer] = None,
        scheduler: Optional[_Scheduler] = None,
        eval_natural: Optional[Callable[[ImageClassifier], float]] = None,
        eval_adversarial: Optional[Callable[[ImageClassifier], float]] = None,
        epoch_callback: Optional[Callable[["Trainer", EpochRecord], None]] = None,
        verbose: bool = False,
        compile: bool = False,
        provider: Optional[str] = None,
    ) -> None:
        self.model = model
        self.loss_strategy = loss_strategy or CrossEntropyLoss()
        self.optimizer = optimizer or SGD(model.parameters(), lr=0.01, momentum=0.9, weight_decay=1e-2)
        self.scheduler = scheduler or StepLR(self.optimizer, step_size=20, gamma=0.2)
        self.eval_natural = eval_natural
        self.eval_adversarial = eval_adversarial
        self.epoch_callback = epoch_callback
        self.verbose = verbose
        self.compile = bool(compile)
        #: kernel-provider name for compiled plans (None = resolve at build
        #: time through use_provider scopes / REPRO_PROVIDER).
        self.provider = provider
        self.history = TrainingHistory()
        self._compiled_trainer = None
        self._retired_compile_stats = None  # counters from replaced instances
        self._live_eval = None

    def _batch_loss(self, images: np.ndarray, labels: np.ndarray):
        """Compute the training loss, reusing the strategy's logits when it shares them.

        Strategies whose classification term is computed on the clean inputs
        (plain CE, and the fused IB-RAR CE path) expose ``loss_and_logits``;
        the logits they already computed double as the training-accuracy
        predictions.  Adversarial strategies (whose logits describe perturbed
        inputs) return ``None`` and the trainer falls back to an extra
        forward pass.
        """
        loss_and_logits = getattr(self.loss_strategy, "loss_and_logits", None)
        if loss_and_logits is not None:
            return loss_and_logits(self.model, images, labels)
        return self.loss_strategy(self.model, images, labels), None

    # ------------------------------------------------------------------ #
    # compiled execution
    # ------------------------------------------------------------------ #
    @property
    def compile_stats(self):
        """Compiled-training counters (``None`` until the first compiled epoch).

        Counters accumulate monotonically across the whole trainer lifetime:
        when a mid-fit loss-strategy swap retires a compiled-trainer
        instance, its counts merge into the total instead of resetting, so
        per-epoch snapshot deltas (and the final history telemetry) stay
        consistent.
        """
        live = self._compiled_trainer.stats if self._compiled_trainer is not None else None
        retired = self._retired_compile_stats
        if live is None:
            return retired
        if retired is None:
            return live
        return retired.merge(live)

    def _compiled_batch(self, images: np.ndarray, labels: np.ndarray):
        """Try one compiled train step; ``None`` means run the batch eagerly."""
        # Rebuild when the strategy (or optimizer) was swapped out — the
        # convergence-rescue pattern reassigns ``trainer.loss_strategy``
        # between fits, and a stale adapter would keep optimizing the old
        # objective on compiled batches.  The retired instance's counters
        # fold into the running total.
        if self._compiled_trainer is not None and (
            self._compiled_trainer.loss_strategy is not self.loss_strategy
            or self._compiled_trainer.optimizer is not self.optimizer
        ):
            retired = self._compiled_trainer.stats
            self._retired_compile_stats = (
                retired
                if self._retired_compile_stats is None
                else self._retired_compile_stats.merge(retired)
            )
            self._compiled_trainer = None
        if self._compiled_trainer is None:
            from ..compile.training import CompiledTrainer

            self._compiled_trainer = CompiledTrainer(
                self.model, self.optimizer, self.loss_strategy, provider=self.provider
            )
        return self._compiled_trainer.train_batch(images, labels)

    def _compiled_eval_model(self):
        """The persistent live-parameter eval view over the current weights.

        Built once and reused every epoch: its plans alias parameter storage
        (updated in place by the fused optimizer), so no per-epoch recapture
        is needed and eval batch shapes compile on their second sighting —
        from the second epoch on, every hook batch replays a plan.
        """
        if self._live_eval is None:
            from ..compile.training import LiveEvalModel

            self._live_eval = LiveEvalModel(self.model, provider=self.provider)
        return self._live_eval

    def _run_eval_hook(self, hook, compiled) -> Optional[float]:
        if hook is None:
            return None
        if compiled is not None and _hook_accepts_compiled(hook):
            return hook(self.model, compiled=compiled)
        return hook(self.model)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def train_epoch(self, loader: DataLoader) -> tuple[float, float]:
        """Run one epoch; returns (mean loss, training accuracy)."""
        self.model.train()
        total_loss = 0.0
        total_correct = 0
        total_examples = 0
        for images, labels in loader:
            outcome = self._compiled_batch(images, labels) if self.compile else None
            if outcome is not None:
                loss_value, predictions = outcome
            else:
                loss, logits = self._batch_loss(images, labels)
                self.optimizer.zero_grad()
                loss.backward()
                # Training accuracy is measured on the pre-update weights for
                # every strategy (shared logits or the fallback pass alike).
                if logits is not None:
                    predictions = np.argmax(logits.data, axis=1)
                else:
                    with no_grad():
                        predictions = self.model.predict(Tensor(images))
                if (
                    self.compile
                    and self._compiled_trainer is not None
                    and self._compiled_trainer.supported
                ):
                    # Keep parameter storage stable so live-parameter plans
                    # survive eager-fallback batches (same values bitwise).
                    self.optimizer.step_with_grads(
                        [p.grad for p in self.optimizer.parameters]
                    )
                else:
                    # Fully-eager strategies/optimizers (no fused path) use
                    # the plain update — no live plans exist to protect.
                    self.optimizer.step()
                loss_value = float(loss.item())
            # Every batch is one optimizer step: advance the counter-based
            # dropout state so the next batch draws fresh masks.  Both the
            # compiled and the eager path read the same live buffers, so
            # advancing here (once, after the step) keeps them in lockstep.
            advance_dropout_steps(self.model)
            total_loss += loss_value * len(labels)
            total_correct += int((predictions == labels).sum())
            total_examples += len(labels)
        if total_examples == 0:
            raise RuntimeError("the data loader produced no batches")
        return total_loss / total_examples, total_correct / total_examples

    def fit(self, loader: DataLoader, epochs: int) -> TrainingHistory:
        """Train for ``epochs`` epochs, recording history.

        Under ``REPRO_RUNS`` (see :mod:`repro.obs.records`) the whole fit is
        bracketed by a :class:`~repro.obs.records.RunWindow` and persisted as
        a ``train`` run record — per-epoch series, span roll-up, executor
        profile and wall/CPU time — retrievable via
        ``python -m repro.obs runs list``.
        """
        if not _records.enabled():
            return self._fit(loader, epochs)
        window = _records.RunWindow("train", label=type(self.loss_strategy).__name__)
        with window:
            history = self._fit(loader, epochs)
        try:
            _records.save_record(
                window.build(
                    history=history.as_dict(),
                    profile=self.profile() or None,
                )
            )
        except OSError:
            pass  # recording must never fail the training run
        return history

    def _fit(self, loader: DataLoader, epochs: int) -> TrainingHistory:
        offer_compiled_eval = self.compile and any(
            hook is not None and _hook_accepts_compiled(hook)
            for hook in (self.eval_natural, self.eval_adversarial)
        )
        for epoch in range(1, epochs + 1):
            stats = self.compile_stats
            before = stats.snapshot() if stats is not None else None
            epoch_start = time.perf_counter()
            with _trace.span(
                "train.epoch", {"epoch": epoch} if _trace.enabled() else None
            ):
                train_loss, train_accuracy = self.train_epoch(loader)
            epoch_seconds = time.perf_counter() - epoch_start
            compiled_eval = self._compiled_eval_model() if offer_compiled_eval else None
            natural = self._run_eval_hook(self.eval_natural, compiled_eval)
            adversarial = self._run_eval_hook(self.eval_adversarial, compiled_eval)
            record = EpochRecord(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_accuracy,
                learning_rate=self.optimizer.lr,
                natural_accuracy=natural,
                adversarial_accuracy=adversarial,
                seconds=epoch_seconds,
            )
            stats = self.compile_stats
            if stats is not None:
                compiled_now, eager_now = stats.snapshot()
                record.extra["compiled_batches"] = float(
                    compiled_now - (before[0] if before else 0)
                )
                record.extra["eager_batches"] = float(
                    eager_now - (before[1] if before else 0)
                )
            self.history.append(record)
            if self.epoch_callback is not None:
                self.epoch_callback(self, record)
            self.scheduler.step()
            if self.verbose:
                parts = [f"epoch {epoch:3d}", f"loss {train_loss:.4f}", f"train acc {train_accuracy:.3f}"]
                if natural is not None:
                    parts.append(f"nat {natural:.3f}")
                if adversarial is not None:
                    parts.append(f"adv {adversarial:.3f}")
                print("  ".join(parts))
        stats = self.compile_stats
        if stats is not None:
            self.history.compile_stats = stats.as_dict()
            # Mirror the legacy surface onto the shared registry so a final
            # metrics snapshot carries the same compile counters.
            _publish_dict("train.compile", self.history.compile_stats)
        return self.history

    def profile(self):
        """Per-signature executor profiles from the compiled training path.

        Merges the :class:`~repro.compile.training.CompiledTrainer`'s plans
        with the live eval view's; empty unless the obs profiler was on for
        at least one replayed batch (see :mod:`repro.obs.profiler`).
        """
        from ..obs.profiler import merge_profiles

        merged: dict = {}
        if self._compiled_trainer is not None:
            merge_profiles(merged, self._compiled_trainer.profile())
        if self._live_eval is not None:
            merge_profiles(merged, self._live_eval.profile())
        return merged
