"""Generic training loop shared by every experiment in the reproduction.

The :class:`Trainer` follows Algorithm 1 of the paper: iterate mini-batches,
compute the configured loss strategy (plain CE, an adversarial-training loss,
or an IB-RAR wrapped loss from :mod:`repro.core`), back-propagate, and step
SGD + StepLR.  Optional per-epoch evaluation records the natural and
adversarial accuracy curves used by Figures 2d and 4.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..nn import Tensor, no_grad
from ..nn.optim import Optimizer, SGD, StepLR, _Scheduler
from ..data.loaders import DataLoader
from ..models.base import ImageClassifier
from .adversarial import CrossEntropyLoss, LossStrategy
from .history import EpochRecord, TrainingHistory

__all__ = ["Trainer", "evaluate_accuracy"]


def evaluate_accuracy(model: ImageClassifier, images: np.ndarray, labels: np.ndarray, batch_size: int = 128) -> float:
    """Top-1 accuracy of ``model`` on an array of images (no gradients)."""
    labels = np.asarray(labels).reshape(-1)
    correct = 0
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for start in range(0, len(images), batch_size):
                batch = images[start : start + batch_size]
                batch_labels = labels[start : start + batch_size]
                predictions = model.predict(Tensor(batch))
                correct += int((predictions == batch_labels).sum())
    finally:
        model.train(was_training)
    return correct / max(len(labels), 1)


class Trainer:
    """Mini-batch trainer with optional per-epoch evaluation hooks.

    Parameters
    ----------
    model:
        The classifier to optimize.
    loss_strategy:
        Callable ``(model, images, labels) -> Tensor`` computing the training
        loss for one batch; defaults to plain cross-entropy.
    optimizer:
        Defaults to the paper's SGD (lr 0.01, momentum 0.9, weight decay 1e-2).
    scheduler:
        Defaults to the paper's StepLR (step 20, gamma 0.2).
    eval_natural / eval_adversarial:
        Optional callables ``(model) -> float`` run at the end of every epoch;
        their results populate the corresponding history columns.
    epoch_callback:
        Optional hook ``(trainer, record) -> None`` invoked after each epoch
        (used by the IB-RAR trainer to refresh the Eq. (3) mask and by the
        convergence-rescue experiment to switch loss strategies).
    """

    def __init__(
        self,
        model: ImageClassifier,
        loss_strategy: Optional[LossStrategy] = None,
        optimizer: Optional[Optimizer] = None,
        scheduler: Optional[_Scheduler] = None,
        eval_natural: Optional[Callable[[ImageClassifier], float]] = None,
        eval_adversarial: Optional[Callable[[ImageClassifier], float]] = None,
        epoch_callback: Optional[Callable[["Trainer", EpochRecord], None]] = None,
        verbose: bool = False,
    ) -> None:
        self.model = model
        self.loss_strategy = loss_strategy or CrossEntropyLoss()
        self.optimizer = optimizer or SGD(model.parameters(), lr=0.01, momentum=0.9, weight_decay=1e-2)
        self.scheduler = scheduler or StepLR(self.optimizer, step_size=20, gamma=0.2)
        self.eval_natural = eval_natural
        self.eval_adversarial = eval_adversarial
        self.epoch_callback = epoch_callback
        self.verbose = verbose
        self.history = TrainingHistory()

    def _batch_loss(self, images: np.ndarray, labels: np.ndarray):
        """Compute the training loss, reusing the strategy's logits when it shares them.

        Strategies whose classification term is computed on the clean inputs
        (plain CE, and the fused IB-RAR CE path) expose ``loss_and_logits``;
        the logits they already computed double as the training-accuracy
        predictions.  Adversarial strategies (whose logits describe perturbed
        inputs) return ``None`` and the trainer falls back to an extra
        forward pass.
        """
        loss_and_logits = getattr(self.loss_strategy, "loss_and_logits", None)
        if loss_and_logits is not None:
            return loss_and_logits(self.model, images, labels)
        return self.loss_strategy(self.model, images, labels), None

    def train_epoch(self, loader: DataLoader) -> tuple[float, float]:
        """Run one epoch; returns (mean loss, training accuracy)."""
        self.model.train()
        total_loss = 0.0
        total_correct = 0
        total_examples = 0
        for images, labels in loader:
            loss, logits = self._batch_loss(images, labels)
            self.optimizer.zero_grad()
            loss.backward()
            # Training accuracy is measured on the pre-update weights for
            # every strategy (shared logits or the fallback pass alike).
            if logits is not None:
                predictions = np.argmax(logits.data, axis=1)
            else:
                with no_grad():
                    predictions = self.model.predict(Tensor(images))
            self.optimizer.step()
            total_loss += float(loss.item()) * len(labels)
            total_correct += int((predictions == labels).sum())
            total_examples += len(labels)
        if total_examples == 0:
            raise RuntimeError("the data loader produced no batches")
        return total_loss / total_examples, total_correct / total_examples

    def fit(self, loader: DataLoader, epochs: int) -> TrainingHistory:
        """Train for ``epochs`` epochs, recording history."""
        for epoch in range(1, epochs + 1):
            train_loss, train_accuracy = self.train_epoch(loader)
            natural = self.eval_natural(self.model) if self.eval_natural else None
            adversarial = self.eval_adversarial(self.model) if self.eval_adversarial else None
            record = EpochRecord(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_accuracy,
                learning_rate=self.optimizer.lr,
                natural_accuracy=natural,
                adversarial_accuracy=adversarial,
            )
            self.history.append(record)
            if self.epoch_callback is not None:
                self.epoch_callback(self, record)
            self.scheduler.step()
            if self.verbose:
                parts = [f"epoch {epoch:3d}", f"loss {train_loss:.4f}", f"train acc {train_accuracy:.3f}"]
                if natural is not None:
                    parts.append(f"nat {natural:.3f}")
                if adversarial is not None:
                    parts.append(f"adv {adversarial:.3f}")
                print("  ".join(parts))
        return self.history
