"""Training history containers.

The convergence experiments (Figure 2d, Figure 4) need per-epoch natural and
adversarial accuracy curves; :class:`TrainingHistory` records them along with
the loss so every bench and example can report the same series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["EpochRecord", "TrainingHistory"]


@dataclass
class EpochRecord:
    """Metrics for one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    learning_rate: float
    natural_accuracy: Optional[float] = None
    adversarial_accuracy: Optional[float] = None
    #: wall-clock seconds of the training epoch (excluding eval hooks);
    #: ``None`` for histories built before timing existed.
    seconds: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Sequence of :class:`EpochRecord` with convenience accessors."""

    records: List[EpochRecord] = field(default_factory=list)
    #: compiled-training telemetry (``Trainer(compile=True)``): counters from
    #: :class:`repro.compile.training.TrainingCompileStats` — compiled vs
    #: eager batches, plans built, inner-attack gradient replays.  ``None``
    #: for eager-only runs, so pre-existing histories serialize unchanged.
    compile_stats: Optional[Dict[str, int]] = None

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def train_loss(self) -> List[float]:
        return [r.train_loss for r in self.records]

    @property
    def train_accuracy(self) -> List[float]:
        return [r.train_accuracy for r in self.records]

    @property
    def natural_accuracy(self) -> List[Optional[float]]:
        return [r.natural_accuracy for r in self.records]

    @property
    def adversarial_accuracy(self) -> List[Optional[float]]:
        return [r.adversarial_accuracy for r in self.records]

    def final(self) -> EpochRecord:
        if not self.records:
            raise IndexError("history is empty")
        return self.records[-1]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by the benches when printing series.

        The ``compile`` and ``epoch_seconds`` keys appear only when the run
        produced them (compiled training / timed epochs), so histories from
        older runs keep their exact shape.
        """
        data = {
            "epoch": [r.epoch for r in self.records],
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
            "natural_accuracy": [r.natural_accuracy for r in self.records],
            "adversarial_accuracy": [r.adversarial_accuracy for r in self.records],
        }
        if any(r.seconds is not None for r in self.records):
            data["epoch_seconds"] = [r.seconds for r in self.records]
        if self.compile_stats is not None:
            data["compile"] = dict(self.compile_stats)
        return data
