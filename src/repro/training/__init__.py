"""Training loops and adversarial-training benchmark losses (PGD-AT, TRADES, MART)."""

from .adversarial import (
    ADVERSARIAL_TRAINING_REGISTRY,
    CrossEntropyLoss,
    LossStrategy,
    MARTLoss,
    PGDAdversarialLoss,
    TRADESLoss,
    build_training_loss,
)
from .history import EpochRecord, TrainingHistory
from .trainer import Trainer, evaluate_accuracy

__all__ = [
    "Trainer",
    "evaluate_accuracy",
    "TrainingHistory",
    "EpochRecord",
    "LossStrategy",
    "CrossEntropyLoss",
    "PGDAdversarialLoss",
    "TRADESLoss",
    "MARTLoss",
    "ADVERSARIAL_TRAINING_REGISTRY",
    "build_training_loss",
]
