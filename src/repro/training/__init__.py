"""Training loops, adversarial-training benchmark losses, and loss specs."""

from .adversarial import (
    ADVERSARIAL_TRAINING_REGISTRY,
    CrossEntropyLoss,
    LossStrategy,
    MARTLoss,
    PGDAdversarialLoss,
    TRADESLoss,
    build_training_loss,
)
from .history import EpochRecord, TrainingHistory
from .specs import (
    LOSS_REGISTRY,
    LossConfigError,
    LossSpec,
    available_losses,
    build_loss,
    coerce_loss_spec,
)
from .trainer import Trainer, evaluate_accuracy

__all__ = [
    "Trainer",
    "evaluate_accuracy",
    "TrainingHistory",
    "EpochRecord",
    "LossStrategy",
    "CrossEntropyLoss",
    "PGDAdversarialLoss",
    "TRADESLoss",
    "MARTLoss",
    "ADVERSARIAL_TRAINING_REGISTRY",
    "build_training_loss",
    "LOSS_REGISTRY",
    "LossConfigError",
    "LossSpec",
    "available_losses",
    "build_loss",
    "coerce_loss_spec",
]
