"""High-level IB-RAR trainer: Algorithm 1 of the paper end to end.

:class:`IBRAR` ties the pieces together:

1. build the Eq. (1)/(2) loss — base strategy (CE or an adversarial-training
   benchmark) plus the HSIC regularizers over the configured layers;
2. train with SGD + StepLR via :class:`repro.training.Trainer`;
3. periodically recompute and install the Eq. (3) feature-channel mask so
   that ``T_last = T_last * mask`` during both training and inference.

The resulting object exposes the trained model, the training history and the
final mask, which is everything the evaluation harness and the benches need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..data.loaders import ArrayDataset, DataLoader
from ..models.base import ImageClassifier
from ..nn.optim import SGD, StepLR
from ..training.adversarial import CrossEntropyLoss, LossStrategy
from ..training.history import EpochRecord, TrainingHistory
from ..training.trainer import Trainer
from .config import IBRARConfig
from .losses import MILoss
from .mask import FeatureChannelMask

__all__ = ["IBRAR", "IBRARResult"]


@dataclass
class IBRARResult:
    """Everything produced by an IB-RAR training run."""

    model: ImageClassifier
    history: TrainingHistory
    channel_mask: Optional[np.ndarray]
    config: IBRARConfig


class IBRAR:
    """Train a classifier with the IB-RAR defense.

    Parameters
    ----------
    model:
        The classifier to train (any :class:`ImageClassifier`).
    config:
        IB-RAR hyperparameters (:class:`IBRARConfig`).
    base_loss:
        ``L_CE``-like component of Eq. (1)/(2): plain CE (default) or one of
        the adversarial-training strategies (PGD-AT, TRADES, MART).
    lr, momentum, weight_decay, step_size, gamma:
        Optimizer / scheduler hyperparameters; defaults follow the paper
        (SGD lr 0.01, weight decay 1e-2, StepLR step 20 gamma 0.2).
    mask_examples:
        How many training examples are used to estimate channel MI when
        refreshing the Eq. (3) mask.
    eval_natural / eval_adversarial:
        Optional per-epoch evaluation hooks forwarded to the trainer.
    compile:
        Forwarded to :class:`~repro.training.Trainer`: run the IB-RAR loss
        (and its adversarial base strategies) through compiled training
        plans, with automatic eager fallback.  Mask refreshes invalidate
        the plans (the Eq. 3 mask is baked into the captured graph).
    """

    def __init__(
        self,
        model: ImageClassifier,
        config: Optional[IBRARConfig] = None,
        base_loss: Optional[LossStrategy] = None,
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 1e-2,
        step_size: int = 20,
        gamma: float = 0.2,
        mask_examples: int = 256,
        eval_natural: Optional[Callable[[ImageClassifier], float]] = None,
        eval_adversarial: Optional[Callable[[ImageClassifier], float]] = None,
        verbose: bool = False,
        compile: bool = False,
    ) -> None:
        self.model = model
        self.config = config or IBRARConfig()
        self.base_loss = base_loss or CrossEntropyLoss()
        self.loss = MILoss(self.config, num_classes=model.num_classes, base_loss=self.base_loss)
        self.mask_builder = FeatureChannelMask(fraction=self.config.mask_fraction)
        self.mask_examples = mask_examples
        optimizer = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
        scheduler = StepLR(optimizer, step_size=step_size, gamma=gamma)
        self._mask_data: Optional[tuple[np.ndarray, np.ndarray]] = None
        self.trainer = Trainer(
            model,
            loss_strategy=self.loss,
            optimizer=optimizer,
            scheduler=scheduler,
            eval_natural=eval_natural,
            eval_adversarial=eval_adversarial,
            epoch_callback=self._refresh_mask,
            verbose=verbose,
            compile=compile,
        )

    # -- mask refresh hook -------------------------------------------------------
    def _refresh_mask(self, trainer: Trainer, record: EpochRecord) -> None:
        if not self.config.use_mask or self._mask_data is None:
            return
        if record.epoch % self.config.mask_refresh_every != 0:
            return
        images, labels = self._mask_data
        mask = self.mask_builder.apply(self.model, images, labels)
        record.extra["masked_channels"] = float(len(mask) - mask.sum())

    # -- training ----------------------------------------------------------------
    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        epochs: int = 10,
        batch_size: int = 100,
        shuffle: bool = True,
        transform=None,
        seed: int = 0,
    ) -> IBRARResult:
        """Run Algorithm 1 for ``epochs`` epochs and return the trained model."""
        dataset = ArrayDataset(x_train, y_train)
        loader = DataLoader(
            dataset,
            batch_size=batch_size,
            shuffle=shuffle,
            transform=transform,
            drop_last=True,
            seed=seed,
        )
        if self.config.use_mask:
            subset = min(self.mask_examples, len(dataset))
            self._mask_data = (dataset.images[:subset], dataset.labels[:subset])
        history = self.trainer.fit(loader, epochs=epochs)
        return IBRARResult(
            model=self.model,
            history=history,
            channel_mask=self.model.channel_mask,
            config=self.config,
        )

    # -- conveniences -------------------------------------------------------------
    @property
    def history(self) -> TrainingHistory:
        return self.trainer.history

    def loss_components(self) -> dict:
        """Scalar values of the Eq. (1) components from the latest batch."""
        return dict(self.loss.last_components)
