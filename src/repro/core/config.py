"""Configuration dataclass for IB-RAR.

Collects every hyperparameter the paper reports so experiments can be
described declaratively and printed alongside results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Sequence, Tuple

__all__ = ["IBRARConfig", "PAPER_VGG16_CONFIG", "PAPER_RESNET18_CONFIG"]


@dataclass
class IBRARConfig:
    """Hyperparameters of the IB-RAR method (Eq. 1-3 of the paper).

    Attributes
    ----------
    alpha:
        Weight of the compression term ``+ alpha * sum_l I(X, T_l)``.
    beta:
        Weight of the relevance term ``- beta * sum_l I(Y, T_l)``.  The paper
        uses ``alpha = 0.1 * beta`` as the default coupling, selected on the
        Figure 6 sweep.
    layers:
        Hidden-layer names whose representations enter the HSIC sums.
        ``None`` means every hidden layer the model exposes ("IB-RAR(all)");
        the paper's "IB-RAR(rob)" uses the robust layers only.
    mask_fraction:
        Fraction of last-convolution channels removed by the Eq. (3) mask
        (paper default: 0.05, i.e. the lowest-MI 5 %).
    mask_refresh_every:
        Recompute the mask every this many epochs (1 = every epoch).
    use_mask:
        Disable to run the pure MI-loss variant (row (2) of Table 4).
    normalized_hsic:
        Use normalized HSIC (scale-invariant); the default for our Eq. (1).
    sigma:
        Fixed Gaussian-kernel bandwidth; ``None`` selects the median
        heuristic per batch.
    mi_on_adversarial:
        For the adversarial-training combination (Eq. 2): compute the MI
        terms on adversarial examples instead of clean ones.  The paper notes
        this helps against PGD but hurts against other attacks, so the
        default is False (clean inputs).
    """

    alpha: float = 1.0
    beta: float = 0.1
    layers: Optional[Tuple[str, ...]] = None
    mask_fraction: float = 0.05
    mask_refresh_every: int = 1
    use_mask: bool = True
    normalized_hsic: bool = True
    sigma: Optional[float] = None
    mi_on_adversarial: bool = False

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if not 0.0 <= self.mask_fraction < 1.0:
            raise ValueError("mask_fraction must lie in [0, 1)")
        if self.mask_refresh_every < 1:
            raise ValueError("mask_refresh_every must be at least 1")
        if self.layers is not None:
            self.layers = tuple(self.layers)

    @classmethod
    def coupled(cls, beta: float, ratio: float = 0.1, **kwargs) -> "IBRARConfig":
        """Build a config with the paper's ``alpha = ratio * beta`` coupling."""
        return cls(alpha=ratio * beta, beta=beta, **kwargs)

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict of every hyperparameter (tuples become lists).

        The output is stable under ``json.dumps(..., sort_keys=True)``, so
        configs can be embedded in experiment specs and hashed
        deterministically.
        """
        return {
            "alpha": float(self.alpha),
            "beta": float(self.beta),
            "layers": list(self.layers) if self.layers is not None else None,
            "mask_fraction": float(self.mask_fraction),
            "mask_refresh_every": int(self.mask_refresh_every),
            "use_mask": bool(self.use_mask),
            "normalized_hsic": bool(self.normalized_hsic),
            "sigma": float(self.sigma) if self.sigma is not None else None,
            "mi_on_adversarial": bool(self.mi_on_adversarial),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IBRARConfig":
        """Rebuild a config from :meth:`to_dict` output (strict on unknown keys)."""
        accepted = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - accepted)
        if unknown:
            raise ValueError(
                f"unknown IBRARConfig field(s) {unknown}; accepted: {sorted(accepted)}"
            )
        params = dict(data)
        if params.get("layers") is not None:
            params["layers"] = tuple(params["layers"])
        return cls(**params)


# Hyperparameters the paper selects on the Figure 6 sweeps.
PAPER_VGG16_CONFIG = IBRARConfig(alpha=1.0, beta=0.1)
PAPER_RESNET18_CONFIG = IBRARConfig(alpha=5e-4, beta=5e-5)
