"""Robust-layer selection (Section 2.2, "Selection of Robust Layers").

The paper observes that applying the IB regularizer to different hidden
layers yields very different adversarial robustness (Table 3).  A layer is a
*robust layer* if a network trained with the IB loss on that single layer
shows "obviously higher" accuracy under the PGD attack than the plain-CE
baseline.  For VGG16/CIFAR-10 these are conv block 5, FC1 and FC2.

:class:`RobustLayerSelector` automates the procedure: train one network per
candidate layer (plus the CE baseline), evaluate each under PGD, and return
the layers whose adversarial accuracy exceeds the baseline by a margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..attacks.pgd import PGD
from ..data.loaders import ArrayDataset, DataLoader
from ..models.base import ImageClassifier
from ..training.adversarial import CrossEntropyLoss
from ..training.trainer import Trainer, evaluate_accuracy
from ..nn.optim import SGD, StepLR
from .config import IBRARConfig
from .losses import MILoss

__all__ = ["LayerRobustness", "RobustLayerSelector", "PAPER_VGG16_ROBUST_LAYERS"]

# The robust layers the paper reports for VGG16 on CIFAR-10 (Table 3).
PAPER_VGG16_ROBUST_LAYERS: Tuple[str, ...] = ("conv_block5", "fc1", "fc2")


@dataclass
class LayerRobustness:
    """Result of evaluating one candidate layer."""

    layer: str
    adversarial_accuracy: float
    natural_accuracy: float

    def as_row(self) -> Dict[str, float]:
        return {
            "layer": self.layer,
            "adv_acc": self.adversarial_accuracy,
            "test_acc": self.natural_accuracy,
        }


@dataclass
class RobustLayerSelector:
    """Identify robust layers by per-layer IB training + PGD evaluation.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh, identically-initialized
        model; one network is trained per candidate layer.
    config:
        IB-RAR hyperparameters (``alpha``/``beta``); ``layers`` is overridden
        per candidate.
    epochs:
        Training epochs per candidate network (small values are enough to
        rank layers).
    margin:
        A layer is robust when its PGD accuracy exceeds the CE baseline's by
        at least this much (absolute).
    attack_kwargs:
        Overrides for the PGD evaluation attack (eps, alpha, steps).
    """

    model_factory: Callable[[], ImageClassifier]
    config: IBRARConfig = field(default_factory=IBRARConfig)
    epochs: int = 3
    batch_size: int = 64
    lr: float = 0.01
    margin: float = 0.02
    attack_kwargs: Dict[str, float] = field(default_factory=dict)
    eval_examples: int = 256

    def _train(self, layers: Optional[Sequence[str]], dataset) -> ImageClassifier:
        model = self.model_factory()
        if layers is None:
            loss = CrossEntropyLoss()
        else:
            config = IBRARConfig(
                alpha=self.config.alpha,
                beta=self.config.beta,
                layers=tuple(layers),
                normalized_hsic=self.config.normalized_hsic,
                sigma=self.config.sigma,
                use_mask=False,
            )
            loss = MILoss(config, num_classes=model.num_classes)
        loader = DataLoader(
            ArrayDataset(dataset.x_train, dataset.y_train),
            batch_size=self.batch_size,
            shuffle=True,
            drop_last=True,
            seed=0,
        )
        optimizer = SGD(model.parameters(), lr=self.lr, momentum=0.9, weight_decay=1e-2)
        trainer = Trainer(model, loss_strategy=loss, optimizer=optimizer, scheduler=StepLR(optimizer))
        trainer.fit(loader, epochs=self.epochs)
        return model

    def _evaluate(self, model: ImageClassifier, dataset) -> Tuple[float, float]:
        x_eval = dataset.x_test[: self.eval_examples]
        y_eval = dataset.y_test[: self.eval_examples]
        natural = evaluate_accuracy(model, x_eval, y_eval)
        attack = PGD(model, **self.attack_kwargs)
        adversarial_images = attack.attack(x_eval, y_eval)
        adversarial = evaluate_accuracy(model, adversarial_images, y_eval)
        return adversarial, natural

    def evaluate_layers(self, dataset, candidate_layers: Optional[Sequence[str]] = None) -> List[LayerRobustness]:
        """Train and evaluate one network per candidate layer (Table 3 rows)."""
        probe = self.model_factory()
        candidates = list(candidate_layers) if candidate_layers is not None else probe.hidden_layer_names
        results: List[LayerRobustness] = []
        for layer in candidates:
            model = self._train([layer], dataset)
            adversarial, natural = self._evaluate(model, dataset)
            results.append(LayerRobustness(layer, adversarial, natural))
        return results

    def baseline_accuracy(self, dataset) -> LayerRobustness:
        """Adversarial/natural accuracy of the plain-CE network."""
        model = self._train(None, dataset)
        adversarial, natural = self._evaluate(model, dataset)
        return LayerRobustness("ce-baseline", adversarial, natural)

    def select(
        self,
        dataset,
        candidate_layers: Optional[Sequence[str]] = None,
    ) -> Tuple[List[str], List[LayerRobustness], LayerRobustness]:
        """Full procedure: returns (robust layers, per-layer results, CE baseline)."""
        baseline = self.baseline_accuracy(dataset)
        results = self.evaluate_layers(dataset, candidate_layers)
        robust = [
            r.layer
            for r in results
            if r.adversarial_accuracy >= baseline.adversarial_accuracy + self.margin
        ]
        if not robust:
            # Fall back to the best-ranked layer so downstream training always
            # has at least one layer to regularize.
            best = max(results, key=lambda r: r.adversarial_accuracy)
            robust = [best.layer]
        return robust, results, baseline
