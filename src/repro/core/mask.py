"""Removing unnecessary feature channels (Eq. 3 of the paper).

After (or while) training with the MI loss, the feature channels produced by
the **last convolutional block** are scored by their mutual information with
the labels.  Channels whose MI falls below a threshold — chosen so that the
lowest 5 % of channels are eliminated — are zeroed by a binary mask that is
installed on the model and applied on every subsequent forward pass:

    T_last = T_last * mask,   mask_c = 1 if I(f_c, Y) >= thr else 0.

The paper stresses that the mask only helps when the network was trained
with the MI loss (row (5) vs row (6) of Table 4): the IB regularizer is what
makes unnecessary channels *distinguishable* by their MI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from ..nn import Tensor, no_grad
from ..ib.mi import channel_label_mi
from ..models.base import ImageClassifier

__all__ = ["FeatureChannelMask", "compute_channel_mask"]


def compute_channel_mask(
    scores: np.ndarray,
    fraction: float = 0.05,
    min_keep: int = 1,
) -> np.ndarray:
    """Binary mask keeping channels whose score reaches the removal threshold.

    ``fraction`` of the channels (those with the lowest scores) are removed.
    The threshold is the maximum score among that lowest group, exactly as
    described in Section 2.3; ties at the threshold are kept.
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    num_channels = scores.shape[0]
    if num_channels == 0:
        raise ValueError("cannot mask an empty channel set")
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must lie in [0, 1)")
    num_remove = int(np.floor(fraction * num_channels))
    num_remove = min(num_remove, num_channels - min_keep)
    if num_remove <= 0:
        return np.ones(num_channels)
    order = np.argsort(scores, kind="stable")
    lowest = order[:num_remove]
    threshold = scores[lowest].max()
    mask = (scores > threshold).astype(np.float64)
    # Guarantee we never remove more than requested when scores tie heavily.
    if mask.sum() < min_keep:
        mask = np.zeros(num_channels)
        mask[order[-min_keep:]] = 1.0
    return mask


@dataclass
class FeatureChannelMask:
    """Computes and installs the Eq. (3) mask on an :class:`ImageClassifier`.

    Parameters
    ----------
    fraction:
        Fraction of channels to remove (paper default 0.05).
    method:
        Channel-MI scoring method, ``"histogram"`` (default) or ``"hsic"``.
    max_batch:
        Cap on how many examples are used to estimate channel MI (keeps the
        estimate cheap on large training sets).
    """

    fraction: float = 0.05
    method: Literal["histogram", "hsic"] = "histogram"
    max_batch: int = 512

    def scores(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Per-channel MI scores of the last convolutional block's output."""
        images = np.asarray(images)[: self.max_batch]
        labels = np.asarray(labels).reshape(-1)[: self.max_batch]
        was_training = model.training
        previous_mask = model.channel_mask
        model.eval()
        # Score the unmasked representation so the mask can recover channels.
        model.set_channel_mask(None)
        try:
            with no_grad():
                _, hidden = model.forward_with_hidden(Tensor(images))
                features = hidden[model.last_conv_name].data
        finally:
            model.set_channel_mask(previous_mask)
            model.train(was_training)
        return channel_label_mi(features, labels, model.num_classes, method=self.method)

    def compute(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Return the binary channel mask for ``model`` on the given batch."""
        return compute_channel_mask(self.scores(model, images, labels), self.fraction)

    def apply(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Compute the mask and install it on the model; returns the mask."""
        mask = self.compute(model, images, labels)
        model.set_channel_mask(mask)
        return mask
