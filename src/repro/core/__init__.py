"""IB-RAR core: the paper's contribution.

* :class:`IBRARConfig` — hyperparameters (alpha, beta, layers, mask fraction).
* :class:`MILoss` / :class:`AdversarialMILoss` — Eq. (1) / Eq. (2) losses.
* :class:`FeatureChannelMask` — Eq. (3) channel mask.
* :class:`RobustLayerSelector` — the Section 2.2 robust-layer procedure.
* :class:`IBRAR` — the end-to-end trainer (Algorithm 1).
"""

from .config import IBRARConfig, PAPER_RESNET18_CONFIG, PAPER_VGG16_CONFIG
from .ibrar import IBRAR, IBRARResult
from .losses import AdversarialMILoss, MILoss, mi_regularizer_terms
from .mask import FeatureChannelMask, compute_channel_mask
from .robust_layers import (
    PAPER_VGG16_ROBUST_LAYERS,
    LayerRobustness,
    RobustLayerSelector,
)

__all__ = [
    "IBRARConfig",
    "PAPER_VGG16_CONFIG",
    "PAPER_RESNET18_CONFIG",
    "MILoss",
    "AdversarialMILoss",
    "mi_regularizer_terms",
    "FeatureChannelMask",
    "compute_channel_mask",
    "RobustLayerSelector",
    "LayerRobustness",
    "PAPER_VGG16_ROBUST_LAYERS",
    "IBRAR",
    "IBRARResult",
]
