"""The IB-RAR mutual-information loss (Eq. 1 and Eq. 2 of the paper).

``MILoss`` implements

    L = L_base + alpha * sum_l I(X, T_l) - beta * sum_l I(Y, T_l)

where ``I`` is estimated with HSIC (Gaussian kernel on activations, linear
kernel on one-hot labels) and the sum ranges over a configurable set of
hidden layers (all layers, or the paper's *robust layers*).

``L_base`` is pluggable:

* plain cross-entropy on clean inputs  -> Eq. (1);
* an adversarial-training strategy (PGD-AT, TRADES, MART from
  :mod:`repro.training.adversarial`) -> Eq. (2), "method (IB-RAR)" in
  Tables 1-2.

The MI terms are computed on **clean** inputs by default; the paper remarks
that using adversarial inputs (``I(X + delta, T_l)``) helps specifically
against PGD but hurts other attacks, and this is available via
``mi_on_adversarial=True``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..nn import Tensor
from ..nn import functional as F
from ..ib.hsic import center, gaussian_kernel, hsic, linear_kernel, normalized_hsic
from ..models.base import ImageClassifier
from ..training.adversarial import CrossEntropyLoss, LossStrategy
from .config import IBRARConfig

__all__ = ["MILoss", "AdversarialMILoss", "mi_regularizer_terms", "resolve_mi_layers"]


def resolve_mi_layers(available, layers: Optional[Sequence[str]]) -> list:
    """Validate and order the hidden layers the MI regularizers sum over.

    Shared by the eager :func:`mi_regularizer_terms` and the compiled
    adapter's in-plan HSIC graph builder, so both paths select (and reject)
    exactly the same layers.
    """
    available = list(available)
    selected = list(layers) if layers is not None else available
    if not selected:
        raise ValueError("at least one hidden layer must be selected for the MI loss")
    for name in selected:
        if name not in available:
            raise KeyError(
                f"layer '{name}' not found among hidden representations {available}"
            )
    return selected


def mi_regularizer_terms(
    inputs: Tensor,
    labels: np.ndarray,
    hidden: Mapping[str, Tensor],
    num_classes: int,
    layers: Optional[Sequence[str]] = None,
    normalized: bool = True,
    sigma: Optional[float] = None,
) -> tuple[Tensor, Tensor]:
    """Return ``(sum_l I(X, T_l), sum_l I(Y, T_l))`` as differentiable tensors.

    The input Gram matrix ``K_X`` and the label Gram matrix ``K_Y`` are built
    **once per batch** and shared by every layer's HSIC pair, and so are
    their self-HSIC normalizers (the nHSIC denominators).  Per layer, the
    layer kernel is centered exactly once — the one-sided trace identity
    ``tr(K_T H K H) = sum(center(K_T) * K)`` (see :func:`repro.ib.hsic.hsic`)
    lets the cross and normalizer terms reuse it, so no ``m x m`` centering
    matrix is materialized and no kernel is centered twice.
    """
    selected = resolve_mi_layers(hidden.keys(), layers)
    input_kernel = gaussian_kernel(inputs.detach(), sigma=sigma)
    label_kernel = linear_kernel(Tensor(F.one_hot(labels, num_classes)))
    norm_input: Optional[Tensor] = None
    norm_label: Optional[Tensor] = None
    if normalized:
        norm_input = hsic(input_kernel, input_kernel)
        norm_label = hsic(label_kernel, label_kernel)
    sum_xt: Optional[Tensor] = None
    sum_yt: Optional[Tensor] = None
    for name in selected:
        layer_kernel = gaussian_kernel(hidden[name], sigma=sigma)
        centered = center(layer_kernel)
        if normalized:
            norm_layer = hsic(layer_kernel, layer_kernel, centered_x=centered)
            term_x = normalized_hsic(
                layer_kernel, input_kernel,
                centered_x=centered, norm_x=norm_layer, norm_y=norm_input,
            )
            term_y = normalized_hsic(
                layer_kernel, label_kernel,
                centered_x=centered, norm_x=norm_layer, norm_y=norm_label,
            )
        else:
            term_x = hsic(layer_kernel, input_kernel, centered_x=centered)
            term_y = hsic(layer_kernel, label_kernel, centered_x=centered)
        sum_xt = term_x if sum_xt is None else sum_xt + term_x
        sum_yt = term_y if sum_yt is None else sum_yt + term_y
    return sum_xt, sum_yt


class MILoss:
    """Eq. (1): base loss plus the two HSIC regularizers.

    Parameters
    ----------
    config:
        :class:`IBRARConfig` with ``alpha``, ``beta``, ``layers`` etc.
    num_classes:
        Number of classes (for the label kernel).
    base_loss:
        The ``L_CE``-like component; defaults to plain cross-entropy on clean
        inputs.  Pass an adversarial-training strategy for Eq. (2) — see
        :class:`AdversarialMILoss` for the convenience wrapper.
    """

    name = "ib-rar-mi"

    def __init__(
        self,
        config: IBRARConfig,
        num_classes: int,
        base_loss: Optional[LossStrategy] = None,
    ) -> None:
        self.config = config
        self.num_classes = num_classes
        self.base_loss = base_loss or CrossEntropyLoss()
        self.last_components: Dict[str, float] = {}

    def hyperparameters(self) -> Dict:
        """Constructor arguments, JSON-ready (nested base loss as a spec dict)."""
        from ..training.specs import LossSpec

        return {
            "config": self.config.to_dict(),
            "num_classes": self.num_classes,
            "base_loss": LossSpec.from_strategy(self.base_loss).as_dict(),
        }

    def _mi_inputs(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Choose which inputs the MI terms see (clean by default, Eq. 2 note)."""
        if not self.config.mi_on_adversarial:
            return images
        generate = getattr(self.base_loss, "generate", None)
        if generate is None:
            return images
        return generate(model, images, labels)

    def loss_and_logits(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> tuple:
        """Return ``(loss, clean logits or None)``.

        When the base loss is plain CE on clean inputs (Eq. 1) the MI terms
        and the classification term share a single ``forward_with_hidden``
        pass — previously the hottest path of IB-RAR training ran the same
        clean forward twice per batch.  Adversarial base strategies (Eq. 2)
        keep their own forward passes and return ``None`` for the logits.
        """
        fused = isinstance(self.base_loss, CrossEntropyLoss) and not self.config.mi_on_adversarial
        if fused:
            inputs = Tensor(images)
            logits, hidden = model.forward_with_hidden(inputs)
            base = F.cross_entropy(logits, labels)
        else:
            logits = None
            base = self.base_loss(model, images, labels)
            inputs = Tensor(self._mi_inputs(model, images, labels))
            _, hidden = model.forward_with_hidden(inputs)
        sum_xt, sum_yt = mi_regularizer_terms(
            inputs,
            labels,
            hidden,
            num_classes=self.num_classes,
            layers=self.config.layers,
            normalized=self.config.normalized_hsic,
            sigma=self.config.sigma,
        )
        total = base + sum_xt * self.config.alpha - sum_yt * self.config.beta
        self.last_components = {
            "base": float(base.item()),
            "hsic_x": float(sum_xt.item()),
            "hsic_y": float(sum_yt.item()),
            "total": float(total.item()),
        }
        return total, logits

    def __call__(self, model: ImageClassifier, images: np.ndarray, labels: np.ndarray) -> Tensor:
        return self.loss_and_logits(model, images, labels)[0]


class AdversarialMILoss(MILoss):
    """Eq. (2): an adversarial-training benchmark combined with the MI terms.

    Equivalent to ``MILoss(config, num_classes, base_loss=strategy)`` but kept
    as a named class because it is the exact object the Tables 1-2 rows
    "PGD/TRADES/MART (IB-RAR)" are produced with.
    """

    name = "ib-rar-adversarial"

    def __init__(
        self,
        config: IBRARConfig,
        num_classes: int,
        adversarial_strategy: LossStrategy,
    ) -> None:
        super().__init__(config, num_classes, base_loss=adversarial_strategy)

    def hyperparameters(self) -> Dict:
        from ..training.specs import LossSpec

        return {
            "config": self.config.to_dict(),
            "num_classes": self.num_classes,
            "adversarial_strategy": LossSpec.from_strategy(self.base_loss).as_dict(),
        }
