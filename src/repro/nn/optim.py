"""Optimizers and learning-rate schedulers.

The paper trains every network with SGD (weight decay 1e-2) and a StepLR
schedule (lr 0.01, step 20, gamma 0.2); both are implemented here along with
Adam and a couple of extra schedulers useful for the extension benches.

Each optimizer exposes two update paths over the *same* state (velocity /
moment buffers), so a training run may interleave them freely:

* :meth:`step` — the eager path, consuming ``param.grad``; it rebinds
  ``param.data`` to a fresh array.
* :meth:`step_with_grads` — the fused path used by compiled training
  (:mod:`repro.compile.training`): the whole update chain runs through
  preallocated per-parameter scratch buffers with ``out=`` kernels and
  updates ``param.data`` **in place**.  In-place mutation is what lets a
  live-parameter execution plan alias parameter storage across steps, and
  the operation order matches :meth:`step` bit for bit.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "MultiStepLR", "CosineAnnealingLR"]


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self._scratch: Optional[List[np.ndarray]] = None

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Reset parameter gradients.

        ``set_to_none=True`` (the default, and the historical behaviour)
        drops the gradient arrays so the next backward allocates fresh ones;
        ``set_to_none=False`` zero-fills existing arrays in place, reusing
        their storage (compiled training keeps its own pooled buffers and
        never touches ``param.grad`` at all).
        """
        for param in self.parameters:
            if set_to_none or param.grad is None:
                param.grad = None
            else:
                param.grad.fill(0)

    def _scratch_buffers(self) -> List[np.ndarray]:
        if self._scratch is None:
            self._scratch = [np.empty_like(p.data) for p in self.parameters]
        return self._scratch

    def step(self) -> None:
        raise NotImplementedError

    def step_with_grads(self, grads: Sequence[Optional[np.ndarray]]) -> None:
        """In-place fused update from externally supplied gradient arrays."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        self._nesterov_scratch: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    grad = grad + self.momentum * velocity
                else:
                    grad = velocity
            param.data = param.data - self.lr * grad

    def step_with_grads(self, grads: Sequence[Optional[np.ndarray]]) -> None:
        """Fused momentum + decoupled-weight-decay update, in place.

        One scratch buffer per parameter carries the whole chain
        (``wd*p + g -> velocity update -> lr * update -> p -= ...``) as
        ``out=`` kernels; values match :meth:`step` bitwise, but
        ``param.data`` keeps its identity, which live-parameter compiled
        plans rely on.
        """
        if len(grads) != len(self.parameters):
            raise ValueError("step_with_grads needs one gradient (or None) per parameter")
        scratch_list = self._scratch_buffers()
        if self.nesterov and self._nesterov_scratch is None:
            self._nesterov_scratch = [np.empty_like(p.data) for p in self.parameters]
        for index, (param, velocity, grad) in enumerate(
            zip(self.parameters, self._velocity, grads)
        ):
            if grad is None:
                continue
            scratch = scratch_list[index]
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=scratch)
                np.add(grad, scratch, out=scratch)
                grad = scratch
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    extra = self._nesterov_scratch[index]
                    np.multiply(velocity, self.momentum, out=extra)
                    np.add(grad, extra, out=extra)
                    grad = extra
                else:
                    grad = velocity
            np.multiply(grad, self.lr, out=scratch)
            np.subtract(param.data, scratch, out=param.data)


class Adam(Optimizer):
    """Adam optimizer (used by some extension experiments and the VIB encoder)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch2: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def step_with_grads(self, grads: Sequence[Optional[np.ndarray]]) -> None:
        """Fused Adam update, in place (bitwise equal to :meth:`step`)."""
        if len(grads) != len(self.parameters):
            raise ValueError("step_with_grads needs one gradient (or None) per parameter")
        scratch_list = self._scratch_buffers()
        if self._scratch2 is None:
            self._scratch2 = [np.empty_like(p.data) for p in self.parameters]
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for index, (param, m, v, grad) in enumerate(
            zip(self.parameters, self._m, self._v, grads)
        ):
            if grad is None:
                continue
            s = scratch_list[index]
            s2 = self._scratch2[index]
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=s)
                np.add(grad, s, out=s)
                grad = s
            np.multiply(grad, 1.0 - self.beta1, out=s2)
            m *= self.beta1
            m += s2
            np.multiply(grad, 1.0 - self.beta2, out=s2)
            np.multiply(s2, grad, out=s2)
            v *= self.beta2
            v += s2
            np.divide(m, bias1, out=s2)
            np.multiply(s2, self.lr, out=s2)  # lr * m_hat
            np.divide(v, bias2, out=s)
            np.sqrt(s, out=s)
            np.add(s, self.eps, out=s)  # sqrt(v_hat) + eps
            np.divide(s2, s, out=s2)
            np.subtract(param.data, s2, out=param.data)


class _Scheduler:
    """Base learning-rate scheduler driving an :class:`Optimizer`."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()


class StepLR(_Scheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs.

    The paper uses ``StepLR(lr=0.01, step_size=20, gamma=0.2)``.
    """

    def __init__(self, optimizer: Optimizer, step_size: int = 20, gamma: float = 0.2) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class MultiStepLR(_Scheduler):
    """Decay the learning rate by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Iterable[int], gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if self.epoch >= m)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(_Scheduler):
    """Cosine annealing from the base learning rate down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        self.t_max = max(t_max, 1)
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + np.cos(np.pi * progress))
