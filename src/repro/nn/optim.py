"""Optimizers and learning-rate schedulers.

The paper trains every network with SGD (weight decay 1e-2) and a StepLR
schedule (lr 0.01, step 20, gamma 0.2); both are implemented here along with
Adam and a couple of extra schedulers useful for the extension benches.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "MultiStepLR", "CosineAnnealingLR"]


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    grad = grad + self.momentum * velocity
                else:
                    grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (used by some extension experiments and the VIB encoder)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class _Scheduler:
    """Base learning-rate scheduler driving an :class:`Optimizer`."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()


class StepLR(_Scheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs.

    The paper uses ``StepLR(lr=0.01, step_size=20, gamma=0.2)``.
    """

    def __init__(self, optimizer: Optimizer, step_size: int = 20, gamma: float = 0.2) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class MultiStepLR(_Scheduler):
    """Decay the learning rate by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Iterable[int], gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if self.epoch >= m)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(_Scheduler):
    """Cosine annealing from the base learning rate down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        self.t_max = max(t_max, 1)
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + np.cos(np.pi * progress))
