"""Weight initialization schemes used by the model zoo.

Kaiming (He) initialization is the PyTorch default for convolutional and
linear layers in the VGG / ResNet reference implementations, so it is what we
use here.  All initializers take an explicit ``numpy.random.Generator`` to
keep runs reproducible.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
    "ones",
    "fan_in_and_fan_out",
]


def fan_in_and_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for linear (out, in) or conv (out, in, k, k) weights."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_channels, in_channels, kh, kw = shape
        receptive = kh * kw
        return in_channels * receptive, out_channels * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He normal initialization (suitable for ReLU networks)."""
    fan_in, _ = fan_in_and_fan_out(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He uniform initialization."""
    fan_in, _ = fan_in_and_fan_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal initialization."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform initialization."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
