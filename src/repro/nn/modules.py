"""Layer / module abstractions on top of the autograd engine.

Provides the subset of ``torch.nn`` the IB-RAR reproduction needs:
``Module`` (parameter registry, train/eval mode, state-dict), ``Linear``,
``Conv2d``, ``BatchNorm2d``, ``ReLU``, ``MaxPool2d``, ``AvgPool2d``,
``GlobalAvgPool2d``, ``Dropout``, ``Flatten``, ``Identity`` and
``Sequential``.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .rng import STATE_SEEDED, STATE_STEP, make_dropout_state
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "advance_dropout_steps",
    "Flatten",
    "Identity",
    "Sequential",
]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses implement :meth:`forward`.  Parameters and sub-modules assigned
    as attributes are registered automatically, which makes
    :meth:`parameters`, :meth:`state_dict` and :meth:`load_state_dict` work
    without extra bookkeeping.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # -- attribute registration ------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array saved in the state dict (e.g. BN stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- forward ---------------------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    def compile(self, sample_input, **options):
        """Capture this module's forward into a static, replayable plan.

        Runs one eval-mode forward on ``sample_input`` under graph tracing,
        optimizes the captured graph (batch-norm folding, operator fusion,
        dead-node elimination) and binds it to pre-allocated buffers.
        Returns a :class:`repro.compile.CompiledModel` whose ``__call__`` and
        ``value_and_grad`` replay the plan without rebuilding the autograd
        graph; inputs with shapes the plan has not seen fall back to eager
        execution (or are compiled on the fly, see ``auto_compile``).
        ``options`` are forwarded to :func:`repro.compile.compile_model`.
        """
        from ..compile import compile_model

        return compile_model(self, sample_input, **options)

    # -- mode ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- parameter access --------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def num_parameters(self) -> int:
        return int(sum(param.size for param in self.parameters()))

    # -- serialization -----------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buf in self._buffers.items():
            state[f"{prefix}{name}"] = np.array(buf, copy=True)
        for mod_name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{mod_name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter '{key}' in state dict")
            if state[key].shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{key}': {state[key].shape} vs {param.data.shape}"
                )
            param.data = np.array(state[key], copy=True)
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key in state:
                buf = self._buffers[name]
                buf[...] = state[key]
        for mod_name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{mod_name}.")


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of NCHW tensors."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Dropout(Module):
    """Inverted dropout with counter-based (replayable) masks.

    The default scheme derives every mask from ``(seed, layer_id, step)``
    (see :mod:`repro.nn.rng`); the triple lives in a registered buffer, so
    it rides through ``state_dict``/checkpoints and a resumed run draws
    bitwise the same masks as an uninterrupted one.  All applications
    within one optimizer step reuse one mask; call
    :func:`advance_dropout_steps` (the trainer does) once per step.

    Passing a stateful ``rng`` generator selects the legacy path instead:
    masks consume generator state, are not checkpointed, and such modules
    cannot be captured into a training plan.
    """

    def __init__(
        self,
        p: float = 0.5,
        seed: Optional[int] = None,
        layer_id: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.p = p
        self.rng = rng
        self._warned_unseeded = False
        if rng is None:
            self.register_buffer("rng_state", make_dropout_state(seed, layer_id))

    def forward(self, x: Tensor) -> Tensor:
        if self.rng is not None:
            return F.dropout(x, self.p, training=self.training, rng=self.rng)
        if (
            self.training
            and self.p > 0.0
            and not self._warned_unseeded
            and int(self.rng_state[STATE_SEEDED]) == 0
        ):
            self._warned_unseeded = True
            warnings.warn(
                "Dropout was constructed without a seed; masks derive from "
                "seed 0 (deterministic, but probably not what the experiment "
                "intended). Pass seed= to silence this.",
                stacklevel=2,
            )
        return F.dropout(x, self.p, training=self.training, state=self.rng_state)

    def advance_step(self, count: int = 1) -> None:
        """Advance the mask step counter in place (no-op for legacy ``rng``)."""
        if self.rng is None:
            self.rng_state[STATE_STEP] += np.uint64(count)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


def advance_dropout_steps(module: Module, count: int = 1) -> None:
    """Advance every counter-based :class:`Dropout` under ``module`` by ``count``.

    Trainers call this once per optimizer step so the next batch draws
    fresh masks; duplicated submodules are advanced once.
    """
    seen = set()
    for sub in module.modules():
        if isinstance(sub, Dropout) and id(sub) not in seen:
            seen.add(id(sub))
            sub.advance_step(count)


class Flatten(Module):
    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=self.start_dim)

    def __repr__(self) -> str:
        return "Flatten()"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._ordered.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def append(self, module: Module) -> "Sequential":
        index = len(self._ordered)
        setattr(self, f"layer{index}", module)
        self._ordered.append(module)
        return self

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self._ordered)
        return f"Sequential({inner})"
