"""Differentiable neural-network operations built on :class:`repro.nn.Tensor`.

Implements the forward and backward passes of every operation used by the
IB-RAR pipeline: 2-D convolution (via im2col), max/average pooling, batch
normalization, dropout, softmax / log-softmax, cross-entropy,
Kullback-Leibler divergence (needed by TRADES and MART) and a handful of
helpers shared by the attack implementations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .rng import new_dropout_mask, state_key as rng_state_key
from .tensor import Tensor, as_tensor, get_default_dtype, is_tracing

__all__ = [
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "batch_norm2d",
    "dropout",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "kl_div_with_logits",
    "mse_loss",
    "one_hot",
    "im2col",
    "col2im",
]


# --------------------------------------------------------------------------- #
# dense / activation ops
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` with ``x`` of shape (N, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    return x.relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a float one-hot matrix of shape ``(len(labels), num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    out = np.zeros((labels.shape[0], num_classes), dtype=get_default_dtype())
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def nll_loss(log_probs: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log likelihood of integer ``labels`` under ``log_probs``."""
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    n, num_classes = log_probs.shape
    mask = one_hot(labels, num_classes)
    picked = (log_probs * Tensor(mask)).sum(axis=1)
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def cross_entropy(logits: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Standard cross-entropy loss between raw ``logits`` and integer labels."""
    return nll_loss(log_softmax(logits, axis=1), labels, reduction=reduction)


def kl_div_with_logits(p_logits: Tensor, q_logits: Tensor, reduction: str = "mean") -> Tensor:
    """KL(p || q) where both arguments are raw logits.

    Used by TRADES (robust KL term) and MART (weighted KL term).  The gradient
    flows through both arguments, as in the reference implementations.
    """
    p_log = log_softmax(p_logits, axis=1)
    q_log = log_softmax(q_logits, axis=1)
    p = p_log.exp()
    per_example = (p * (p_log - q_log)).sum(axis=1)
    if reduction == "mean":
        return per_example.mean()
    if reduction == "sum":
        return per_example.sum()
    return per_example


def mse_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    diff = prediction - as_tensor(target)
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq


def dropout(
    x: Tensor,
    p: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
    state: Optional[np.ndarray] = None,
) -> Tensor:
    """Inverted dropout.  A no-op when ``training`` is false or ``p == 0``.

    Two mask sources, mutually exclusive:

    - ``state`` — a ``[seed, layer_id, step, seeded]`` uint64 buffer (see
      :mod:`repro.nn.rng`): the mask is a pure function of that triple, so
      eager, compiled, and resumed-from-checkpoint runs draw bitwise the
      same mask.  Under capture this emits an ``rng_mask`` graph node.
    - ``rng`` — a caller-owned stateful generator (legacy path; such
      dropout cannot be captured into a training plan).

    Passing neither in training mode raises: a silently unseeded mask is
    exactly the nondeterminism bug this scheme exists to prevent.
    """
    if not training or p <= 0.0:
        return x
    if rng is not None:
        keep = 1.0 - p
        mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)
    if state is None:
        raise ValueError(
            "dropout in training mode needs a mask source: pass `state` "
            "(counter-based, see repro.nn.rng.make_dropout_state) or a "
            "seeded `rng` generator"
        )
    seed, layer_id, step = rng_state_key(state)
    mask = new_dropout_mask(x.shape, x.data.dtype, p, seed, layer_id, step)
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    meta = None
    if is_tracing():
        # Live reference: the plan re-reads seed/layer/step every replay,
        # so in-place step advancement reaches captured plans.
        meta = {"p": float(p), "state": state}
    return Tensor._make(out_data, (x,), backward, op="rng_mask", meta=meta)


# --------------------------------------------------------------------------- #
# im2col-based convolution
# --------------------------------------------------------------------------- #
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> Tuple[np.ndarray, int, int]:
    """Rearrange (N, C, H, W) image patches into a matrix for convolution.

    Returns ``(cols, out_h, out_w)`` with ``cols`` of shape
    ``(N * out_h * out_w, C * kernel * kernel)``.
    """
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel, stride, padding)
    out_w = _conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    strides = x.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    view_strides = (
        strides[0],
        strides[1],
        strides[2] * stride,
        strides[3] * stride,
        strides[2],
        strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=view_strides)
    # (N, out_h, out_w, C, k, k) -> (N*out_h*out_w, C*k*k)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel * kernel)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter column gradients back to image space."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols_reshaped = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
    for ki in range(kernel):
        for kj in range(kernel):
            padded[
                :,
                :,
                ki : ki + stride * out_h : stride,
                kj : kj + stride * out_w : stride,
            ] += cols_reshaped[:, :, :, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over an NCHW tensor.

    ``weight`` has shape ``(out_channels, in_channels, k, k)``.
    """
    n, c, h, w = x.shape
    out_channels, in_channels, kernel, kernel2 = weight.shape
    if kernel != kernel2:
        raise ValueError("only square kernels are supported")
    if in_channels != c:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {in_channels}")

    cols, out_h, out_w = im2col(x.data, kernel, stride, padding)
    w_mat = weight.data.reshape(out_channels, -1)
    out = cols @ w_mat.T  # (N*out_h*out_w, out_channels)
    if bias is not None:
        out = out + bias.data
    out_data = out.reshape(n, out_h, out_w, out_channels).transpose(0, 3, 1, 2)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        if weight.requires_grad:
            grad_w = grad_mat.T @ cols
            weight._accumulate(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=0))
        if x.requires_grad:
            grad_cols = grad_mat @ w_mat
            grad_x = col2im(grad_cols, (n, c, h, w), kernel, stride, padding, out_h, out_w)
            x._accumulate(grad_x)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward, op="conv2d", meta={"stride": stride, "padding": padding})


# --------------------------------------------------------------------------- #
# pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling with square windows over an NCHW tensor."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1

    strides = x.data.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    view_strides = (
        strides[0],
        strides[1],
        strides[2] * stride,
        strides[3] * stride,
        strides[2],
        strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x.data, shape=shape, strides=view_strides)
    flat = patches.reshape(n, c, out_h, out_w, kernel * kernel)
    argmax = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        ki = argmax // kernel
        kj = argmax % kernel
        n_idx, c_idx, i_idx, j_idx = np.meshgrid(
            np.arange(n), np.arange(c), np.arange(out_h), np.arange(out_w), indexing="ij"
        )
        rows = i_idx * stride + ki
        cols_ = j_idx * stride + kj
        np.add.at(grad_x, (n_idx, c_idx, rows, cols_), grad)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward, op="max_pool2d", meta={"kernel": kernel, "stride": stride})


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling with square windows over an NCHW tensor."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1

    strides = x.data.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    view_strides = (
        strides[0],
        strides[1],
        strides[2] * stride,
        strides[3] * stride,
        strides[2],
        strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x.data, shape=shape, strides=view_strides)
    out_data = patches.mean(axis=(-1, -2))

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        scaled = grad / (kernel * kernel)
        for ki in range(kernel):
            for kj in range(kernel):
                grad_x[
                    :,
                    :,
                    ki : ki + stride * out_h : stride,
                    kj : kj + stride * out_w : stride,
                ] += scaled
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward, op="avg_pool2d", meta={"kernel": kernel, "stride": stride})


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning shape (N, C)."""
    return x.mean(axis=(2, 3))


# --------------------------------------------------------------------------- #
# batch normalization
# --------------------------------------------------------------------------- #
def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the channel axis of an NCHW tensor.

    ``running_mean`` / ``running_var`` are updated in place while training,
    matching PyTorch semantics.
    """
    n, c, h, w = x.shape
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var * (n * h * w) / max(n * h * w - 1, 1)
    else:
        mean = running_mean
        var = running_var

    # Running statistics are kept in float64; compute in the input's dtype so
    # a float32 forward stays float32 end to end.
    mean_r = np.asarray(mean, dtype=x.data.dtype).reshape(1, c, 1, 1)
    std = np.sqrt(np.asarray(var, dtype=x.data.dtype) + eps).reshape(1, c, 1, 1)
    x_hat = (x.data - mean_r) / std
    out_data = gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(1, c, 1, 1)

    count = n * h * w

    def backward(grad: np.ndarray) -> None:
        g = gamma.data.reshape(1, c, 1, 1)
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if not x.requires_grad:
            return
        grad_xhat = grad * g
        if training:
            sum_grad = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
            sum_grad_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
            grad_x = (grad_xhat - sum_grad / count - x_hat * sum_grad_xhat / count) / std
        else:
            grad_x = grad_xhat / std
        x._accumulate(grad_x)

    meta = None
    if is_tracing():
        # Record the statistics the pass used.  In eval mode ``mean``/``var``
        # ARE the running buffers: plans that bind immediately (the only
        # supported flow) read them before anything mutates them, and
        # live-parameter plans re-read them on every replay.  Training-mode
        # capture additionally needs the buffers and momentum so the compiled
        # kernel can reproduce the in-place running-stat updates.
        meta = {
            "training": bool(training),
            "mean": mean,
            "var": var,
            "eps": eps,
            "momentum": momentum,
            "running_mean": running_mean,
            "running_var": running_var,
        }
    return Tensor._make(out_data, (x, gamma, beta), backward, op="batch_norm2d", meta=meta)
