"""NumPy neural-network substrate (autograd, layers, optimizers).

This package replaces PyTorch for the IB-RAR reproduction.  The public
surface mirrors a small subset of ``torch`` / ``torch.nn``:

* :class:`repro.nn.Tensor` with reverse-mode autodiff and :func:`no_grad`
* layers in :mod:`repro.nn.modules` (``Linear``, ``Conv2d``, ``BatchNorm2d`` ...)
* differentiable ops in :mod:`repro.nn.functional`
* optimizers and schedulers in :mod:`repro.nn.optim`
"""

from . import functional, init, optim, rng
from .modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    advance_dropout_steps,
)
from .optim import SGD, Adam, CosineAnnealingLR, MultiStepLR, StepLR
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
    stack,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "stack",
    "concatenate",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "functional",
    "init",
    "optim",
    "rng",
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "advance_dropout_steps",
    "Flatten",
    "Identity",
    "Sequential",
    "SGD",
    "Adam",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
]
