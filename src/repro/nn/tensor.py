"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the substrate that replaces PyTorch's autograd for the IB-RAR
reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray`` and records the
operations applied to it in a dynamic computation graph.  Calling
:meth:`Tensor.backward` walks the graph in reverse topological order and
accumulates gradients into every leaf tensor created with
``requires_grad=True``.

Every operator needed by the paper's pipeline is implemented either here (the
arithmetic / shape primitives) or in :mod:`repro.nn.functional` (convolution,
pooling, batch-norm, losses, HSIC helpers).  Gradients are exact, which is
what the adversarial attacks (FGSM, PGD, CW, FAB, NIFGSM) and the HSIC-based
mutual-information regularizers rely on.
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "as_tensor",
    "stack",
    "concatenate",
    "set_default_dtype",
    "get_default_dtype",
]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

class _ThreadState(threading.local):
    """Per-thread autograd/trace flags.

    Grad mode and trace depth are *thread-local* so concurrent threads — the
    :mod:`repro.serve` worker pool replaying plans while another worker takes
    an eager fallback — cannot flip each other's recording state: a
    ``no_grad`` block in one thread never silences a gradient graph being
    built in another, and a capture trace only sees its own thread's ops.
    """

    def __init__(self) -> None:
        self.grad_enabled = True
        self.trace_depth = 0


_STATE = _ThreadState()

#: floating dtype used when wrapping raw values in tensors.  float64 is the
#: default (it is what the paper-reproduction numbers were produced with);
#: :func:`set_default_dtype` switches the whole stack — parameter creation,
#: attack inputs, losses — to float32 for speed/memory-bound workloads.
_DEFAULT_DTYPE = np.dtype(np.float64)

_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype) -> np.dtype:
    """Set the floating dtype new tensors are created with; returns the old one.

    Accepts anything ``np.dtype`` does (``"float32"``, ``np.float64`` ...).
    Only float32 and float64 are supported.  Modules built *after* the switch
    create their parameters in the new dtype; arrays fed to :class:`Tensor`
    (attack batches, loss one-hots) are cast on entry, so a float32 model
    runs an end-to-end float32 forward/backward.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED_DTYPES:
        raise ValueError(f"unsupported default dtype {dtype!r}; use float32 or float64")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved
    return previous


def get_default_dtype() -> np.dtype:
    """The floating dtype new tensors are created with (see :func:`set_default_dtype`)."""
    return _DEFAULT_DTYPE


class no_grad:
    """Disable gradient tracking, as a context manager or a decorator.

    Mirrors ``torch.no_grad()``.  Used by evaluation loops and by the attack
    implementations for forward-only passes (e.g. the batched predictions of
    the attack engine and the ensemble attack's margin computation)::

        with no_grad():
            logits = model.forward(x)

        @no_grad()
        def predict(model, x):
            return np.argmax(model.forward(x).data, axis=1)
    """

    def __enter__(self) -> "no_grad":
        self._previous = _STATE.grad_enabled
        _STATE.grad_enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        _STATE.grad_enabled = self._previous

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        return wrapper


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _STATE.grad_enabled


# --------------------------------------------------------------------------- #
# graph capture (used by repro.compile)
# --------------------------------------------------------------------------- #
#: active :class:`op_counter` instances (usually empty; see its docstring).
_OP_COUNTERS: List["op_counter"] = []


class trace:
    """Context manager that makes every op annotate its output tensor.

    While active, :meth:`Tensor._make` records ``_op`` (operation name),
    ``_op_meta`` (static parameters such as strides or clip bounds) and
    ``_op_parents`` on each result.  :func:`repro.compile.capture_forward`
    runs a module under this context and walks those annotations to lift the
    dynamic autograd graph into a static, replayable plan.  Zero overhead
    when inactive (a single integer check per op).
    """

    def __enter__(self) -> "trace":
        _STATE.trace_depth += 1
        return self

    def __exit__(self, *exc_info) -> None:
        _STATE.trace_depth -= 1


def is_tracing() -> bool:
    return _STATE.trace_depth > 0


class op_counter:
    """Count graph nodes (≈ one fresh array allocation each) built in a block.

    The eager engine allocates a new ndarray per recorded operation; this
    counter makes that cost measurable so the compiled executor's
    zero-steady-state-allocation property can be asserted against it.
    """

    def __init__(self) -> None:
        self.count = 0

    def __enter__(self) -> "op_counter":
        _OP_COUNTERS.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _OP_COUNTERS.remove(self)


def _to_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype if dtype is not None else _DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __array_priority__ = 200  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _to_array(data)
        self.requires_grad = bool(requires_grad) and _STATE.grad_enabled
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if self.requires_grad or any(
            p.requires_grad for p in _parents
        ) else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        out = Tensor(self.data, requires_grad=False)
        if _STATE.trace_depth:
            # Keep the capture walk connected through the detach point; the
            # plan builder treats "detach" as a gradient stop, not a constant.
            out._op = "detach"
            out._op_meta = None
            out._op_parents = (self,)
        return out

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: Optional[str] = None,
        meta: Optional[dict] = None,
    ) -> "Tensor":
        requires = _STATE.grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        if _STATE.trace_depth and op is not None:
            out._op = op
            out._op_meta = meta
            out._op_parents = parents
        if _OP_COUNTERS:
            for counter in _OP_COUNTERS:
                counter.count += 1
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _to_array(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()

        # Iterative topological sort to avoid recursion limits on deep nets.
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward, op="add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward, op="neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(as_tensor(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward, op="mul")

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape)
                )

        return Tensor._make(out_data, (self, other_t), backward, op="div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, op="pow", meta={"exponent": exponent})

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data).reshape(self.shape))
                else:
                    self._accumulate(
                        _unbroadcast(grad @ np.swapaxes(other_t.data, -1, -2), self.shape)
                    )
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad).reshape(other_t.shape))
                else:
                    other_t._accumulate(
                        _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other_t.shape)
                    )

        return Tensor._make(out_data, (self, other_t), backward, op="matmul")

    # comparisons produce plain boolean arrays (no gradient)
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _to_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _to_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _to_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _to_array(other)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, op="exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward, op="log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward, op="sqrt")

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward, op="abs")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward, op="tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, op="sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward, op="relu")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]`` (gradient is 1 inside the range)."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward, op="clip", meta={"low": low, "high": high})

    def maximum(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out_data = np.maximum(self.data, other_t.data)
        self_mask = self.data >= other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * self_mask, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * (~self_mask), other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward, op="maximum")

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.shape).copy())
                return
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward, op="sum", meta={"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is None:
                mask = self.data == out_data
                self._accumulate(mask * g / max(mask.sum(), 1))
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = self.data == expanded
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * g / np.maximum(counts, 1))

        return Tensor._make(out_data, (self,), backward, op="max", meta={"axis": axis, "keepdims": keepdims})

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return (-self).max(axis=axis, keepdims=keepdims).__neg__()

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward, op="reshape", meta={"shape": out_data.shape})

    def flatten(self, start_dim: int = 1) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward, op="transpose", meta={"axes": None if axes is None else tuple(axes)})

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward, op="getitem", meta={"index": index})

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions of an NCHW tensor."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out_data = np.pad(self.data, pad_width)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slices = tuple(
                    slice(None) for _ in range(self.ndim - 2)
                ) + (slice(padding, -padding), slice(padding, -padding))
                self._accumulate(grad[slices])

        return Tensor._make(out_data, (self,), backward, op="pad2d", meta={"padding": padding})


def as_tensor(value: ArrayLike) -> Tensor:
    """Convert ``value`` to a :class:`Tensor` without copying when possible."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, tracking gradients."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward, op="stack", meta={"axis": axis})


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, tracking gradients."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slices = [slice(None)] * grad.ndim
                slices[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slices)])

    return Tensor._make(out_data, tuple(tensors), backward, op="concatenate", meta={"axis": axis})
