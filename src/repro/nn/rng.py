"""Counter-based (Philox) deterministic dropout masks.

A dropout mask here is a *pure function* of ``(seed, layer_id, step)``: each
draw builds a fresh :class:`numpy.random.Generator` over a ``Philox`` bit
generator keyed by the seed, with the layer id and the optimizer step in the
counter block.  Replaying any ``(seed, layer_id, step)`` triple — eagerly,
from a compiled plan, in another process, or after a checkpoint resume —
fills the exact same mask bit for bit, with no generator state to carry,
synchronize, or serialize.

Both the eager :func:`repro.nn.functional.dropout` and the compiled
``rng_mask`` kernel (:class:`repro.compile.kernels.DropoutMask`) go through
:func:`fill_dropout_mask`; keeping a single implementation is what makes
eager and compiled trajectories bitwise comparable.

The per-module state lives in a 4-element ``uint64`` buffer
``[seed, layer_id, step, seeded]`` registered on the owning
:class:`~repro.nn.modules.Dropout` module, so it rides through
``state_dict`` / checkpoints for free and advances *in place* — live plans
alias the buffer and re-read it every replay.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "DROPOUT_STATE_SIZE",
    "STATE_SEED",
    "STATE_LAYER",
    "STATE_STEP",
    "STATE_SEEDED",
    "make_dropout_state",
    "state_key",
    "philox_generator",
    "fill_dropout_mask",
    "new_dropout_mask",
]

#: indices into the per-module dropout state buffer.
STATE_SEED, STATE_LAYER, STATE_STEP, STATE_SEEDED = 0, 1, 2, 3
DROPOUT_STATE_SIZE = 4

_MASK64 = (1 << 64) - 1


def make_dropout_state(seed: Optional[int], layer_id: int) -> np.ndarray:
    """A fresh ``[seed, layer_id, step, seeded]`` uint64 state buffer.

    ``seed=None`` records a deterministic default (seed 0) but leaves the
    ``seeded`` flag clear so the owning module can warn on first
    training-mode use — determinism is preserved either way; the warning
    exists because an implicit seed usually means the experiment seed was
    never threaded through.
    """
    resolved = 0 if seed is None else int(seed)
    return np.array(
        [resolved & _MASK64, int(layer_id) & _MASK64, 0, 0 if seed is None else 1],
        dtype=np.uint64,
    )


def state_key(state: np.ndarray) -> Tuple[int, int, int]:
    """The ``(seed, layer_id, step)`` triple a state buffer currently encodes."""
    return int(state[STATE_SEED]), int(state[STATE_LAYER]), int(state[STATE_STEP])


def philox_generator(seed: int, layer_id: int, step: int) -> np.random.Generator:
    """A fresh Philox generator positioned at the ``(seed, layer_id, step)`` block.

    The 256-bit Philox counter is ``[0, 0, layer_id, step]``; distinct layers
    and steps therefore index disjoint counter blocks of the same keyed
    stream (each block spans 2^128 draws — no overlap is possible).
    """
    counter = np.array(
        [0, 0, int(layer_id) & _MASK64, int(step) & _MASK64], dtype=np.uint64
    )
    return np.random.Generator(np.random.Philox(key=int(seed) & _MASK64, counter=counter))


def fill_dropout_mask(
    mask: np.ndarray,
    u: np.ndarray,
    b: np.ndarray,
    p: float,
    seed: int,
    layer_id: int,
    step: int,
) -> None:
    """Fill ``mask`` with the inverted-dropout mask for ``(seed, layer_id, step)``.

    ``u`` is a float64 uniform scratch (``Generator.random(out=...)`` draws
    float64 only), ``b`` a bool scratch, ``mask`` the output in the
    activation dtype; all three are caller-owned, so compiled plans can pass
    pooled buffers and keep replays allocation-free.  Kept entries hold
    ``1 / keep`` (rounded once from the float64 quotient), dropped entries 0.
    """
    gen = philox_generator(seed, layer_id, step)
    gen.random(out=u)
    keep = 1.0 - float(p)
    np.less(u, keep, out=b)
    np.divide(b, keep, out=mask)


def new_dropout_mask(
    shape: Tuple[int, ...], dtype, p: float, seed: int, layer_id: int, step: int
) -> np.ndarray:
    """Allocate-and-fill convenience wrapper for the eager path."""
    u = np.empty(shape, dtype=np.float64)
    b = np.empty(shape, dtype=bool)
    mask = np.empty(shape, dtype=dtype)
    fill_dropout_mask(mask, u, b, p, seed, layer_id, step)
    return mask
