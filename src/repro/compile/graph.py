"""Static-graph IR and dynamic-graph capture.

The eager engine (:mod:`repro.nn.tensor`) builds a fresh Python closure graph
on every forward pass.  This module lifts one such pass into a static
:class:`Graph`: a topologically ordered list of :class:`Node` records —
``input``, ``const`` (parameters and literals, snapshotted), and primitive
ops annotated with their static parameters (strides, axes, clip bounds).

A captured graph has a *fixed input shape and dtype*; the plan built from it
is replayed for inputs of exactly that signature, with callers falling back
to eager execution for anything else (see :class:`repro.compile.CompiledModel`).
Parameter values are snapshotted at capture time: a compiled plan is a frozen
view of the weights, which is exactly what attack-time evaluation wants —
recompile (one traced forward) after mutating the module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..nn.tensor import Tensor, get_default_dtype
from ..nn import tensor as _tensor_mod

__all__ = ["CompileError", "Node", "Graph", "capture_forward"]


class CompileError(RuntimeError):
    """Raised when a module's forward cannot be captured or planned.

    Callers (the attack engine, :class:`~repro.compile.CompiledModel`) treat
    this as "use the eager path", never as a hard failure.
    """


@dataclass
class Node:
    """One operation (or leaf) of a captured graph."""

    id: int
    op: str  # "input", "const", or a primitive op name ("conv2d", "add", ...)
    inputs: Tuple[int, ...]
    meta: dict = field(default_factory=dict)
    shape: Tuple[int, ...] = ()
    dtype: np.dtype = None
    #: snapshotted value for "const" nodes (parameters, masks, literals).
    value: Optional[np.ndarray] = None

    def is_const(self) -> bool:
        return self.op == "const"


#: leaf ops — nodes with no compute step and no backward rule of their own.
LEAF_OPS = ("input", "const", "detach", "param", "aux")


class Graph:
    """A topologically ordered static graph with one input and one output.

    ``outputs`` optionally names extra observation points (the hidden
    representations a training plan exposes, and the loss scalars an
    extended graph computes in plan); each maps a name to the node id whose
    forward value realizes it.  Named outputs are roots of the topological
    walk alongside the primary output, so in-plan loss subgraphs hanging
    *off* the logits survive :meth:`rebuild`.

    ``aux`` names auxiliary input leaves (op ``"aux"``): per-batch arrays
    that are not the traced input — another plan's logits buffer, a one-hot
    label mask, a precomputed Gram matrix.  The executor binds each to a
    caller-provided alias or to a pooled buffer the caller fills per batch.
    """

    def __init__(
        self,
        nodes: List[Node],
        input_id: int,
        output_id: int,
        outputs: Optional[Dict[str, int]] = None,
        aux: Optional[Dict[str, int]] = None,
    ) -> None:
        self.nodes = nodes
        self.input_id = input_id
        self.output_id = output_id
        self.outputs: Dict[str, int] = dict(outputs or {})
        self.aux: Dict[str, int] = dict(aux or {})
        self._by_id: Dict[int, Node] = {n.id: n for n in nodes}

    def node(self, node_id: int) -> Node:
        return self._by_id[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def input_node(self) -> Node:
        return self._by_id[self.input_id]

    @property
    def output_node(self) -> Node:
        return self._by_id[self.output_id]

    def op_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def consumer_counts(self) -> Dict[int, int]:
        """How many graph edges consume each node's output."""
        counts: Dict[int, int] = {n.id: 0 for n in self.nodes}
        for node in self.nodes:
            for input_id in node.inputs:
                counts[input_id] += 1
        return counts

    def param_nodes(self) -> List[Node]:
        """Live-parameter leaves (``op == "param"``), in topological order."""
        return [n for n in self.nodes if n.op == "param"]

    def grad_path(
        self,
        include_input: bool = True,
        include_params: bool = False,
        extra: Tuple[int, ...] = (),
    ) -> Set[int]:
        """Ids of nodes through which a gradient flows from the output.

        The chosen leaves (the input, the live parameters, and/or the
        ``extra`` leaf ids — differentiated aux inputs) seed the set; an op
        joins it when any of its inputs is in it, except across ``detach``
        (an explicit gradient stop).
        """
        path: Set[int] = set()
        if include_input:
            path.add(self.input_id)
        if include_params:
            path.update(n.id for n in self.nodes if n.op == "param")
        path.update(extra)
        for node in self.nodes:  # topo order: inputs precede consumers
            if node.op in LEAF_OPS:
                continue
            if any(i in path for i in node.inputs):
                path.add(node.id)
        return path

    def rebuild(self) -> "Graph":
        """Re-derive the id index and re-sort topologically (after passes).

        Walks from every root — the primary output plus each named output —
        so loss subgraphs attached downstream of the logits are preserved.
        """
        roots = [self.output_id] + [
            i for i in self.outputs.values() if i != self.output_id
        ]
        order = _topo_sort(self._by_id, roots, self.input_id)
        kept = {n.id for n in order}
        aux = {name: i for name, i in self.aux.items() if i in kept}
        return Graph(order, self.input_id, self.output_id, self.outputs, aux)

    def copy(self) -> "Graph":
        """Independent node records (meta dicts copied, leaf values shared).

        Plans stash bound buffers inside ``node.meta`` and passes rewrite
        ``op``/``inputs`` in place, so two plans must never share ``Node``
        objects; constant *values* and live parameter/buffer references are
        safely shared.
        """
        nodes = [
            Node(n.id, n.op, n.inputs, dict(n.meta), n.shape, n.dtype, n.value)
            for n in self.nodes
        ]
        return Graph(nodes, self.input_id, self.output_id, self.outputs, self.aux)

    # ------------------------------------------------------------------ #
    # programmatic extension (in-plan loss subgraphs)
    # ------------------------------------------------------------------ #
    def _next_id(self) -> int:
        return max(n.id for n in self.nodes) + 1

    def _append(self, node: Node) -> int:
        self.nodes.append(node)
        self._by_id[node.id] = node
        return node.id

    def add_const(self, value, dtype=None) -> int:
        """Append a constant leaf holding ``value``; returns its node id."""
        arr = np.asarray(value, dtype=dtype if dtype is not None else get_default_dtype())
        return self._append(
            Node(self._next_id(), "const", (), {}, arr.shape, arr.dtype, value=arr)
        )

    def add_aux(self, name: str, shape: Tuple[int, ...], dtype) -> int:
        """Append a named auxiliary input leaf; returns its node id."""
        if name in self.aux:
            raise CompileError(f"aux input '{name}' already exists")
        node_id = self._append(
            Node(self._next_id(), "aux", (), {"name": name}, tuple(shape), np.dtype(dtype))
        )
        self.aux[name] = node_id
        return node_id

    def add_op(
        self,
        op: str,
        inputs: Tuple[int, ...],
        shape: Tuple[int, ...],
        dtype,
        meta: Optional[dict] = None,
        name: Optional[str] = None,
    ) -> int:
        """Append an op node; optionally register it as the named output ``name``."""
        node_id = self._append(
            Node(self._next_id(), op, tuple(inputs), dict(meta or {}), tuple(shape), np.dtype(dtype))
        )
        if name is not None:
            self.outputs[name] = node_id
        return node_id


def _topo_sort(by_id: Dict[int, Node], roots: List[int], input_id: int) -> List[Node]:
    order: List[Node] = []
    visited: Set[int] = set()
    for root in roots:
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            node_id, processed = stack.pop()
            if processed:
                order.append(by_id[node_id])
                continue
            if node_id in visited:
                continue
            visited.add(node_id)
            stack.append((node_id, True))
            for input_id_ in by_id[node_id].inputs:
                if input_id_ not in visited:
                    stack.append((input_id_, False))
    if input_id not in visited:
        raise CompileError("the module's output does not depend on its input")
    return order


def capture_forward(
    module,
    sample_input,
    training: bool = False,
    with_hidden: bool = False,
    live_params: bool = False,
) -> Graph:
    """Run one forward under tracing and lift it into a :class:`Graph`.

    ``module`` is any :class:`repro.nn.Module` whose ``forward`` maps one
    tensor to one tensor.

    ``training=False`` (the default) captures the eval-mode forward and
    rejects a module left in training mode: batch-norm statistics and
    dropout masks captured from one batch must not be baked into a plan
    replayed on others.  ``training=True`` captures the **training-mode**
    forward instead — batch-stat batch norms become replayable nodes that
    update the module's running buffers in place (the traced forward's own
    running-stat update is rolled back, so a replay reproduces the eager
    sequence exactly) — and counter-based dropout traces into ``rng_mask``
    nodes whose masks are a pure function of the module's live
    ``(seed, layer_id, step)`` state (legacy generator-driven dropout is
    still rejected: its masks consume hidden state and cannot be replayed).

    ``with_hidden=True`` traces ``module.forward_with_hidden`` and names
    each hidden representation in :attr:`Graph.outputs` (training plans
    expose those nodes to eager-composed loss terms).

    ``live_params=True`` lifts :class:`~repro.nn.modules.Parameter` leaves
    into ``"param"`` nodes that alias the live parameter storage instead of
    snapshotting it — the executor re-reads ``param.data`` on every replay,
    which is what training (and in-training attack) plans need so one plan
    survives every optimizer step.  Other leaves are still snapshotted.
    """
    from ..nn.modules import BatchNorm2d, Dropout, Parameter

    arr = np.asarray(sample_input, dtype=get_default_dtype())
    if training != bool(module.training):
        if training:
            raise CompileError("training capture requires train mode; call module.train() first")
        raise CompileError("compile() requires eval mode; call module.eval() first")
    bn_saved = []
    if training:
        for sub in module.modules():
            if (
                isinstance(sub, Dropout)
                and sub.training
                and sub.p > 0
                and sub.rng is not None
            ):
                # Counter-based dropout traces into a replayable ``rng_mask``
                # node; only the legacy stateful-generator path is uncapturable.
                raise CompileError(
                    "cannot capture a training-mode dropout driven by a "
                    "stateful rng generator (use the counter-based scheme)"
                )
            if isinstance(sub, BatchNorm2d):
                bn_saved.append((sub, sub.running_mean.copy(), sub.running_var.copy()))
    x = Tensor(arr, requires_grad=True)
    hidden = {}
    try:
        with _tensor_mod.trace():
            if with_hidden:
                out, hidden = module.forward_with_hidden(x)
            else:
                out = module.forward(x)
    finally:
        # The traced forward already applied one running-stat update; roll it
        # back so replaying the plan (which applies the update itself) leaves
        # the module exactly where an eager run would.
        for sub, mean, var in bn_saved:
            sub.running_mean[...] = mean
            sub.running_var[...] = var
    if not isinstance(out, Tensor):
        raise CompileError(f"forward returned {type(out).__name__}, expected a Tensor")

    nodes: List[Node] = []
    ids: Dict[int, int] = {}  # id(tensor) -> node id
    next_id = 0

    def visit(tensor: Tensor) -> int:
        nonlocal next_id
        key = id(tensor)
        if key in ids:
            return ids[key]
        parents = getattr(tensor, "_op_parents", None)
        op = getattr(tensor, "_op", None)
        if tensor is x:
            node = Node(next_id, "input", (), {}, tensor.shape, tensor.dtype)
        elif op is None or parents is None:
            if live_params and isinstance(tensor, Parameter):
                # Live leaf: the plan aliases (and re-reads) param.data.
                node = Node(
                    next_id,
                    "param",
                    (),
                    {"parameter": tensor},
                    tensor.shape,
                    tensor.dtype,
                )
            else:
                # Leaf constant: a parameter, a buffer-derived literal, or a
                # value produced outside the traced region.  Snapshot it.
                node = Node(
                    next_id,
                    "const",
                    (),
                    {},
                    tensor.shape,
                    tensor.dtype,
                    value=np.array(tensor.data, copy=True),
                )
        else:
            if (
                op == "batch_norm2d"
                and tensor._op_meta
                and tensor._op_meta["training"]
                and not training
            ):
                raise CompileError("cannot capture a training-mode batch norm")
            input_ids = tuple(visit(parent) for parent in parents)
            node = Node(
                next_id,
                op,
                input_ids,
                dict(tensor._op_meta or {}),
                tensor.shape,
                tensor.dtype,
            )
        ids[key] = next_id
        nodes.append(node)
        next_id += 1
        return node.id

    # The walk recurses one frame per graph edge; deep models (ResNet-34 at
    # full depth) can exceed the default limit, so raise it for the capture.
    import sys

    limit = sys.getrecursionlimit()
    try:
        sys.setrecursionlimit(max(limit, 10000))
        output_id = visit(out)
        outputs = {name: visit(tensor) for name, tensor in hidden.items()}
    finally:
        sys.setrecursionlimit(limit)
    if id(x) not in ids:
        raise CompileError("the module's output does not depend on its input")
    return Graph(nodes, ids[id(x)], output_id, outputs)
