"""`CompiledModel`: shape-dispatching plan cache with eager fallback.

``compile_model(module, sample_input)`` captures the module's eval-mode
forward once, optimizes it and binds it to buffers; the resulting
:class:`CompiledModel` replays the plan for every input matching the
captured ``(shape, dtype)`` signature.  Unseen shapes (the ragged last batch
of an evaluation, shrinking early-exit attack batches) are compiled on the
fly up to ``max_plans`` signatures; beyond that — or when capture/planning
fails, the module is in training mode, or a non-CE loss is requested — the
call **falls back to eager execution**, so opting in is always safe.
:attr:`CompiledModel.stats` counts compiled vs eager passes; the attack
engine surfaces those counters as telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.tensor import Tensor, get_default_dtype, no_grad
from .backends import resolve_provider_name
from .cache import SignatureCache
from .executor import Plan
from .graph import CompileError, capture_forward
from .passes import optimize
from .pool import BufferPool

__all__ = ["CompiledModel", "CompiledStats", "compile_model"]


@dataclass
class CompiledStats:
    """Compiled-vs-eager pass accounting for one :class:`CompiledModel`."""

    plans_built: int = 0
    forward_calls: int = 0
    forward_examples: int = 0
    grad_calls: int = 0
    grad_examples: int = 0
    fallback_calls: int = 0
    fallback_examples: int = 0

    def snapshot(self) -> Tuple[int, int, int]:
        """``(forward_calls, grad_calls, fallback_calls)`` — diff across a block."""
        return self.forward_calls, self.grad_calls, self.fallback_calls

    def as_dict(self) -> Dict[str, int]:
        return {
            "plans_built": self.plans_built,
            "forward_calls": self.forward_calls,
            "forward_examples": self.forward_examples,
            "grad_calls": self.grad_calls,
            "grad_examples": self.grad_examples,
            "fallback_calls": self.fallback_calls,
            "fallback_examples": self.fallback_examples,
        }


class CompiledModel:
    """A module bound to static, buffer-pooled execution plans.

    Parameters
    ----------
    module:
        Any :class:`repro.nn.Module` mapping one tensor to one tensor
        (every :class:`~repro.models.base.ImageClassifier` qualifies).
    sample_input:
        Array whose shape/dtype signature seeds the first plan.  Compilation
        errors on this first plan propagate (so callers learn immediately
        that the module cannot be captured); later auto-compiled signatures
        fail soft into eager fallback.
    fold_bn / fuse:
        Enable batch-norm folding and operator fusion (on by default).
    auto_compile:
        Compile new plans for unseen input signatures on first use.
    max_plans:
        Bound on cached plans; further signatures run eagerly.
    provider:
        Kernel-provider name (:mod:`repro.compile.backends`); ``None``
        resolves through ``use_provider`` scopes / ``REPRO_PROVIDER`` at
        construction time, **once**, so every plan this model builds — and
        its cache keys — use one stable provider.

    A plan snapshots the module's parameters (and channel mask) at compile
    time.  After mutating the module, call :meth:`invalidate` — or compile a
    fresh model — to avoid replaying stale weights.
    """

    def __init__(
        self,
        module,
        sample_input,
        fold_bn: bool = True,
        fuse: bool = True,
        auto_compile: bool = True,
        max_plans: int = 8,
        provider: Optional[str] = None,
    ) -> None:
        self.module = module
        self.fold_bn = fold_bn
        self.fuse = fuse
        self.auto_compile = auto_compile
        self.max_plans = max_plans
        self.provider = resolve_provider_name(provider)
        self.stats = CompiledStats()
        #: the shared compile-on-second-sighting policy (one implementation
        #: serves CompiledModel, CompiledTrainer and LiveEvalModel alike).
        self._cache = SignatureCache(
            self._build_plan, capacity=max_plans, name="model", namespace=self.provider
        )
        #: signatures whose plan forwards but cannot backward (kept for
        #: forward use; value_and_grad skips them without re-trying).
        self._grad_failed: set = set()
        sample = np.asarray(sample_input, dtype=get_default_dtype())
        # The caller-provided sample compiles immediately (errors propagate);
        # later signatures go through the second-sighting policy.
        self._cache.insert(sample, self._build_plan(sample))

    # ------------------------------------------------------------------ #
    # plan management
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(x: np.ndarray) -> Tuple[Tuple[int, ...], str]:
        return SignatureCache.key(x)

    @property
    def _plans(self) -> Dict[Tuple[Tuple[int, ...], str], Optional[Plan]]:
        return self._cache.entries

    def _build_plan(self, sample: np.ndarray) -> Plan:
        graph = capture_forward(self.module, sample)
        graph = optimize(graph, fold_bn=self.fold_bn, fuse=self.fuse)
        plan = Plan(graph, BufferPool(), provider=self.provider)
        self.stats.plans_built += 1
        return plan

    def _plan_for(self, x: np.ndarray) -> Optional[Plan]:
        # Compile an unseen signature on its *second* sighting: a shape
        # that appears once (the ragged clean-prediction batch) is cheaper
        # to run eagerly than to capture and bind, while any shape inside
        # an iterated attack loop comes back immediately.
        if not self.auto_compile:
            return self._cache.get(x)
        return self._cache.lookup(x)

    def warm(self, samples) -> int:
        """Pre-trace a plan for every sample's signature, bypassing the
        second-sighting policy.

        ``samples`` is an iterable of arrays (or array-likes); one plan is
        built per *distinct* ``(shape, dtype)`` signature.  Serve workers
        call this at startup with one zero batch per configured bucket size
        so the first live request already replays a traced plan.  Returns
        the number of signatures with a usable plan afterwards.
        """
        ready = 0
        for sample in samples:
            arr = np.asarray(
                sample.data if isinstance(sample, Tensor) else sample,
                dtype=get_default_dtype(),
            )
            if self._cache.warm(arr):
                ready += 1
        return ready

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/build counters from the underlying :class:`SignatureCache`."""
        return self._cache.stats()

    def profile(self) -> Dict[str, dict]:
        """Per-op-kind executor profile by plan signature (see :mod:`repro.obs`).

        Empty until the obs profiler (``repro.obs.profiler.enable()`` or
        ``REPRO_PROFILE=1``) has been on for at least one replay.  Each
        entry maps ``signature -> {"ops": {kind: {calls, total_ms, bytes}},
        "pool": {allocations, bytes}}``.
        """
        from ..obs.profiler import merge_snapshot

        profiles: Dict[str, dict] = {}
        for plan in self._cache.entries.values():
            if plan is not None:
                merge_snapshot(profiles, plan.profile_snapshot())
        return profiles

    def invalidate(self) -> None:
        """Drop every cached plan (call after mutating the module's weights)."""
        self._cache.clear()
        self._grad_failed.clear()

    @property
    def plans(self) -> int:
        """Number of live plans (excluding remembered failures)."""
        return sum(1 for plan in self._cache.entries.values() if plan is not None)

    @property
    def pool_allocations(self) -> int:
        """Total buffer allocations across every plan's pool."""
        return sum(
            p.pool.allocations for p in self._cache.entries.values() if p is not None
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def __call__(self, x) -> np.ndarray:
        """Logits for a batch, as a plan-owned array (consume before the next call)."""
        arr = np.asarray(x.data if isinstance(x, Tensor) else x, dtype=get_default_dtype())
        plan = None if self.module.training else self._plan_for(arr)
        if plan is None:
            self.stats.fallback_calls += 1
            self.stats.fallback_examples += len(arr)
            with no_grad():
                return self.module.forward(Tensor(arr)).data
        self.stats.forward_calls += 1
        self.stats.forward_examples += len(arr)
        return plan.forward(arr)

    def predict(self, x) -> np.ndarray:
        """Hard class predictions (argmax over :meth:`__call__` logits)."""
        return np.argmax(self(x), axis=1)

    def value_and_grad(self, x, labels, loss: str = "ce") -> Tuple[float, np.ndarray]:
        """Loss value and input gradient for a batch.

        ``loss`` currently supports ``"ce"`` (fused softmax cross-entropy —
        the loss every PGD-family attack drives); other names raise
        ``ValueError``.  A training-mode module or an uncompilable signature
        falls back to the eager cross-entropy graph.  The returned gradient
        is plan-owned: consume it before the next compiled call.
        """
        arr = np.asarray(x.data if isinstance(x, Tensor) else x, dtype=get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        plan = None
        if loss == "ce" and not self.module.training and self._key(arr) not in self._grad_failed:
            plan = self._plan_for(arr)
        if plan is not None:
            try:
                self.stats.grad_calls += 1
                self.stats.grad_examples += len(arr)
                return plan.value_and_grad_ce(arr, labels)
            except CompileError:
                self.stats.grad_calls -= 1
                self.stats.grad_examples -= len(arr)
                # A plan that forwards but cannot backward (e.g. a detach on
                # the only input path) will never succeed here; remember the
                # failure so later calls skip the wasted compiled forward
                # while keeping the plan alive for forward-only use.
                self._grad_failed.add(self._key(arr))
        if loss != "ce":
            raise ValueError(f"unknown compiled loss '{loss}'; supported: 'ce'")
        self.stats.fallback_calls += 1
        self.stats.fallback_examples += len(arr)
        from ..nn import functional as F

        x_t = Tensor(arr, requires_grad=True)
        loss_t = F.cross_entropy(self.module.forward(x_t), labels)
        loss_t.backward()
        return float(loss_t.item()), x_t.grad

    def __repr__(self) -> str:
        return (
            f"CompiledModel({type(self.module).__name__}, plans={self.plans}, "
            f"stats={self.stats.as_dict()})"
        )


def compile_model(module, sample_input, **options) -> CompiledModel:
    """Capture, optimize and bind ``module`` for ``sample_input``'s signature.

    The canonical entry point (``module.compile(sample)`` forwards here).
    Raises :class:`CompileError` when the module's forward cannot be
    captured — callers that want best-effort behaviour catch it and stay on
    the eager path.
    """
    return CompiledModel(module, sample_input, **options)
