"""Buffer-bound plan execution: ``out=`` kernels over a :class:`BufferPool`.

A :class:`Plan` binds an optimized :class:`~repro.compile.graph.Graph` to
pre-allocated buffers: every op output, gradient accumulator and scratch
array (im2col columns, pooling argmax indices, ReLU masks) is allocated once
at bind time, and replays write into those same arrays with ``out=``-style
NumPy kernels.  Steady-state iterations therefore perform zero pool
allocations — the property the attack hot path (tens of gradient steps per
batch) is bought with.

Two gradient modes exist.  ``grad="input"`` (the attack/eval default)
computes the gradient **with respect to the input only** — parameters are
baked in (or aliased, for live-parameter plans), so the weight-gradient
matmuls the eager engine performs on every attack step (and throws away)
are never executed.  ``grad="params"`` (the training mode) instead seeds
the differentiation set from the graph's live ``"param"`` nodes and
accumulates **full parameter gradients** into pre-allocated pooled buffers;
:meth:`Plan.run_backward` additionally accepts gradient seeds at named
intermediate nodes so eager-composed loss terms (IB-RAR's HSIC
regularizers, TRADES/MART KL terms) can inject their contributions.

Live-parameter plans (graphs captured with ``live_params=True``) alias
``param.data`` directly and re-read it on every replay — one plan survives
every in-place optimizer step.  Training-mode batch norms recompute batch
statistics per replay and update the module's running buffers in place,
reproducing the eager update sequence bit for bit.

Losses are fused: :meth:`Plan.value_and_grad_ce` evaluates softmax
cross-entropy and seeds the backward pass with the closed-form
``softmax(z) - onehot(y)`` gradient in scratch buffers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .graph import CompileError, Graph, Node
from .passes import bn_scale_shift
from .pool import BufferPool

__all__ = ["Plan"]


def _patch_view(x: np.ndarray, kernel: int, stride: int, out_h: int, out_w: int) -> np.ndarray:
    """(N, C, out_h, out_w, k, k) sliding-window view over an NCHW array."""
    n, c = x.shape[:2]
    s0, s1, s2, s3 = x.strides
    return as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
    )


def _reduction_spec(from_shape: Tuple[int, ...], to_shape: Tuple[int, ...]):
    """Axes summing a ``from_shape`` gradient down to ``to_shape`` (broadcast inverse)."""
    extra = len(from_shape) - len(to_shape)
    axes = list(range(extra))
    for index, size in enumerate(to_shape):
        if size == 1 and from_shape[extra + index] != 1:
            axes.append(extra + index)
    kept = tuple(
        1 if i in axes else from_shape[i] for i in range(len(from_shape))
    )
    return tuple(axes), kept


class Plan:
    """An executable, buffer-bound instance of an optimized graph.

    One plan serves exactly one ``(input shape, dtype)`` signature; the
    shape-dispatching caches live in :class:`~repro.compile.CompiledModel`
    (eval) and :class:`~repro.compile.training.CompiledTrainer` (training).

    Parameters
    ----------
    grad:
        ``"input"`` differentiates with respect to the input batch (the
        attack hot path); ``"params"`` with respect to every live ``param``
        node (the training step — parameter gradients land in pooled
        buffers exposed via :meth:`param_grads`).
    seed_ids:
        Node ids that may receive external gradient seeds through
        :meth:`run_backward` (a training plan passes its hidden-output
        nodes).  Registering them as extra contributors keeps the
        dead-write elimination from overwriting injected seeds.
    """

    def __init__(
        self,
        graph: Graph,
        pool: Optional[BufferPool] = None,
        grad: str = "input",
        seed_ids: Sequence[int] = (),
    ) -> None:
        if grad not in ("input", "params"):
            raise ValueError(f"unknown grad mode '{grad}'; use 'input' or 'params'")
        self.graph = graph
        self.grad_mode = grad
        self.pool = pool or BufferPool()
        #: node id -> forward value (const arrays, bound buffers, or views).
        self.values: Dict[int, np.ndarray] = {}
        #: node id -> gradient accumulator, for nodes on the grad path.
        self.grads: Dict[int, np.ndarray] = {}
        #: (Parameter, node id) pairs for live-parameter graphs.
        self.params: List[Tuple[object, int]] = [
            (n.meta["parameter"], n.id) for n in graph.param_nodes()
        ]
        self._forward_steps: List[Callable[[], None]] = []
        self._backward_steps: List[Callable[[], None]] = []
        self._grad_buffers: List[np.ndarray] = []
        self._diff: Set[int] = graph.grad_path(
            include_input=(grad == "input"), include_params=(grad == "params")
        )
        self._seed_ids: Set[int] = set(seed_ids) & self._diff
        self._ce: Optional[dict] = None
        self._bind()

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return self.graph.input_node.shape

    @property
    def input_dtype(self) -> np.dtype:
        return np.dtype(self.graph.input_node.dtype)

    # ------------------------------------------------------------------ #
    # binding
    # ------------------------------------------------------------------ #
    def _bind(self) -> None:
        graph = self.graph
        self._input = self.pool.empty(graph.input_node.shape, graph.input_node.dtype)
        self.values[graph.input_id] = self._input
        for node in graph.nodes:
            if node.op == "input":
                continue
            if node.op == "const":
                self.values[node.id] = np.ascontiguousarray(node.value)
                continue
            if node.op == "param":
                # Live leaf: alias the parameter's storage.  Replays re-read
                # it, so in-place optimizer updates flow into the plan; the
                # identity guard in :meth:`forward` catches reallocation.
                self.values[node.id] = node.meta["parameter"].data
                continue
            binder = _FORWARD.get(node.op)
            if binder is None:
                raise CompileError(f"op '{node.op}' has no compiled kernel")
            step, out = binder(self, node)
            self.values[node.id] = out
            if step is not None:
                self._forward_steps.append(step)

        if graph.output_id not in self._diff:
            # Forward-only plan: no gradient path from output to the leaves.
            self._backward_steps = []
            self._grads_bound = False
            return
        # Dead-write elimination: a gradient buffer that receives exactly one
        # contribution is written directly by its contributing kernel (via
        # `_sink`), skipping both the zero-fill and the accumulate add.  The
        # output seed counts as the output node's single contribution, and so
        # does each registered external-seed injection point.
        self._contributions: Dict[int, int] = {graph.output_id: 1}
        for node in graph.nodes:
            if node.id not in self._diff or node.op in ("input", "const", "detach", "param"):
                continue
            for input_id in node.inputs:
                if input_id in self._diff:
                    self._contributions[input_id] = self._contributions.get(input_id, 0) + 1
        for seed_id in self._seed_ids:
            self._contributions[seed_id] = self._contributions.get(seed_id, 0) + 1
        self._fill_ids: Set[int] = set()
        for node in graph.nodes:
            if node.id in self._diff:
                buffer = self.pool.empty(node.shape, node.dtype)
                self.grads[node.id] = buffer
                self._fill_ids.add(node.id)
        self._fill_ids.discard(graph.output_id)  # seeded by copyto
        for node in reversed(graph.nodes):
            if node.id not in self._diff or node.op in ("input", "const", "detach", "param"):
                continue
            binder = _BACKWARD.get(node.op)
            if binder is None:
                raise CompileError(f"op '{node.op}' has no compiled backward kernel")
            step = binder(self, node)
            if step is not None:
                self._backward_steps.append(step)
        self._grad_buffers = [self.grads[node_id] for node_id in self._fill_ids]
        self._grads_bound = True

    def _sink(self, target_id: int, supports_write: bool = True) -> Tuple[bool, np.ndarray]:
        """``(write, buffer)`` for a kernel contributing a gradient to ``target_id``.

        ``write=True`` means the caller is the buffer's only contributor and
        may overwrite it (the buffer is then excluded from per-run zeroing);
        kernels whose scatter pattern needs a zeroed base pass
        ``supports_write=False``.
        """
        write = supports_write and self._contributions.get(target_id) == 1
        if write:
            self._fill_ids.discard(target_id)
        return write, self.grads[target_id]

    def _grad_target(self, node_id: int) -> Optional[np.ndarray]:
        """The gradient accumulator of ``node_id`` (``None`` when off-path)."""
        return self.grads.get(node_id)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Replay the forward pass; returns the (plan-owned) output array."""
        for param, node_id in self.params:
            if self.values[node_id] is not param.data:
                raise CompileError(
                    "parameter storage was reallocated (non-in-place update); recompile the plan"
                )
        np.copyto(self._input, x)
        for step in self._forward_steps:
            step()
        return self.values[self.graph.output_id]

    def backward(self, output_grad: np.ndarray) -> np.ndarray:
        """Input gradient for the most recent :meth:`forward` call."""
        if self.grad_mode != "input":
            raise CompileError("backward() needs an input-gradient plan; use run_backward()")
        if not self._grads_bound:
            raise CompileError("this plan has no gradient path from output to input")
        for buffer in self._grad_buffers:
            buffer.fill(0)
        np.copyto(self.grads[self.graph.output_id], output_grad)
        for step in self._backward_steps:
            step()
        return self.grads[self.graph.input_id]

    def run_backward(self, seeds: Mapping[int, np.ndarray]) -> None:
        """Replay the backward pass from per-node gradient seeds.

        ``seeds`` maps node ids to gradient arrays: the output node's seed is
        copied in (zero when absent), every other seed is **added** to that
        node's freshly zeroed accumulator before the kernels run — the form
        composite losses need, where the fused-CE output seed and the
        eager-composed side terms' hidden-activation seeds join one pass.
        Non-output seed ids must have been registered via ``seed_ids`` at
        bind time (otherwise a single-contribution writer overwrites them).
        """
        if not self._grads_bound:
            raise CompileError("this plan has no gradient path to its leaves")
        for buffer in self._grad_buffers:
            buffer.fill(0)
        output_id = self.graph.output_id
        output_seed = seeds.get(output_id)
        if output_seed is not None:
            np.copyto(self.grads[output_id], output_seed)
        else:
            self.grads[output_id].fill(0)
        for node_id, seed in seeds.items():
            if node_id == output_id:
                continue
            if node_id not in self._seed_ids:
                raise CompileError(f"node {node_id} was not registered as a seed point")
            target = self.grads[node_id]
            np.add(target, seed, out=target)
        for step in self._backward_steps:
            step()

    def param_grads(self) -> Dict[int, np.ndarray]:
        """``id(parameter) -> pooled gradient buffer`` after a backward replay."""
        return {id(param): self.grads[node_id] for param, node_id in self.params
                if node_id in self.grads}

    def ce_loss_and_seed(self, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Fused softmax-CE loss of the latest forward and its logit gradient.

        Evaluates mean CE over ``labels`` in scratch buffers and returns the
        closed-form ``(softmax(z) - onehot(y)) / N`` seed (a plan-owned
        scratch array) ready for :meth:`backward` / :meth:`run_backward` —
        no loss graph is ever built.
        """
        logits = self.values[self.graph.output_id]
        if logits.ndim != 2:
            raise CompileError("ce_loss_and_seed expects (N, classes) logits")
        if self._ce is None:
            n, k = logits.shape
            self._ce = {
                "max": self.pool.empty((n, 1), logits.dtype),
                "p": self.pool.empty((n, k), logits.dtype),
                "z": self.pool.empty((n, 1), logits.dtype),
                "logz": self.pool.empty((n, 1), logits.dtype),
                "picked": self.pool.empty((n,), logits.dtype),
                "arange": np.arange(n),
            }
        ce = self._ce
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        max_b, p, z, logz, picked, arange = (
            ce["max"], ce["p"], ce["z"], ce["logz"], ce["picked"], ce["arange"],
        )
        np.max(logits, axis=1, keepdims=True, out=max_b)
        np.subtract(logits, max_b, out=p)
        picked[...] = p[arange, labels]
        np.exp(p, out=p)
        np.sum(p, axis=1, keepdims=True, out=z)
        np.log(z, out=logz)
        loss = float(np.mean(logz) - np.mean(picked))
        np.divide(p, z, out=p)
        p[arange, labels] -= 1.0
        p *= 1.0 / len(labels)
        return loss, p

    def value_and_grad_ce(self, x: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Fused softmax cross-entropy loss and its input gradient."""
        self.forward(x)
        loss, seed = self.ce_loss_and_seed(labels)
        return loss, self.backward(seed)


# --------------------------------------------------------------------------- #
# forward binders: node -> (step callable | None, output array)
# --------------------------------------------------------------------------- #
def _is_live(plan: Plan, node_id: int) -> bool:
    """Whether ``node_id`` is a live-parameter leaf (re-read every replay)."""
    return plan.graph.node(node_id).op == "param"


def _bind_conv2d(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    weight = plan.values[node.inputs[1]]
    bias = plan.values[node.inputs[2]] if len(node.inputs) > 2 else None
    stride, padding = node.meta["stride"], node.meta["padding"]
    fuse_relu = node.meta.get("fuse_relu", False)
    n, c, h, w = x.shape
    oc = weight.shape[0]
    kernel = weight.shape[2]
    _, _, out_h, out_w = node.shape
    dtype = node.dtype

    if _is_live(plan, node.inputs[1]):
        # Live weights change under the optimizer every step: matmul against
        # a transposed *view* so each replay reads the current values (BLAS
        # handles the transposed operand natively, same math as the eager
        # ``cols @ w_mat.T``).
        w_t = weight.reshape(oc, -1).T
    else:
        w_t = np.ascontiguousarray(weight.reshape(oc, -1).T)

    if padding:
        padded = plan.pool.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype)
        interior = padded[:, :, padding:-padding, padding:-padding]
        source = padded
    else:
        interior = None
        source = x
    patches = _patch_view(source, kernel, stride, out_h, out_w).transpose(0, 2, 3, 1, 4, 5)
    cols = plan.pool.empty((n * out_h * out_w, c * kernel * kernel), dtype)
    node.meta["_cols"] = cols  # the weight-gradient matmul reads these
    cols6 = cols.reshape(n, out_h, out_w, c, kernel, kernel)
    out2d = plan.pool.empty((n * out_h * out_w, oc), dtype)
    # The NCHW output is a transpose view of the matmul result (same trick as
    # the eager kernel) — consumers read it through its strides, so the
    # materialization copy is never paid.
    out = out2d.reshape(n, out_h, out_w, oc).transpose(0, 3, 1, 2)
    if fuse_relu:
        # Mask recorded on the contiguous 2-D layout; the backward kernel
        # applies it to grad_mat (same layout) with fully contiguous ops.
        mask2d = plan.pool.empty(out2d.shape, bool)
        node.meta["_relu_mask2d"] = mask2d
    else:
        mask2d = None

    def step() -> None:
        if interior is not None:
            interior[...] = x
        cols6[...] = patches
        np.matmul(cols, w_t, out=out2d)
        if bias is not None:
            np.add(out2d, bias, out=out2d)
        if fuse_relu:
            np.maximum(out2d, 0.0, out=out2d)
            np.greater(out2d, 0.0, out=mask2d)

    return step, out


def _bind_affine(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    weight_t = np.ascontiguousarray(plan.values[node.inputs[1]])  # (in, out)
    bias = plan.values[node.inputs[2]]
    fuse_relu = node.meta.get("fuse_relu", False)
    out = plan.pool.empty(node.shape, node.dtype)

    def step() -> None:
        np.matmul(x, weight_t, out=out)
        np.add(out, bias, out=out)
        if fuse_relu:
            np.maximum(out, 0.0, out=out)

    return step, out


def _bind_matmul(plan: Plan, node: Node):
    a = plan.values[node.inputs[0]]
    b = plan.values[node.inputs[1]]
    if a.ndim != 2 or b.ndim != 2:
        raise CompileError("compiled matmul supports 2-D operands only")
    fuse_relu = node.meta.get("fuse_relu", False)
    out = plan.pool.empty(node.shape, node.dtype)

    def step() -> None:
        np.matmul(a, b, out=out)
        if fuse_relu:
            np.maximum(out, 0.0, out=out)

    return step, out


def _bind_binary(ufunc):
    def bind(plan: Plan, node: Node):
        a = plan.values[node.inputs[0]]
        b = plan.values[node.inputs[1]]
        fuse_relu = node.meta.get("fuse_relu", False)
        out = plan.pool.empty(node.shape, node.dtype)

        def step() -> None:
            ufunc(a, b, out=out)
            if fuse_relu:
                np.maximum(out, 0.0, out=out)

        return step, out

    return bind


def _bind_unary(compute: Callable[[np.ndarray, np.ndarray], None]):
    def bind(plan: Plan, node: Node):
        x = plan.values[node.inputs[0]]
        out = plan.pool.empty(node.shape, node.dtype)
        return (lambda: compute(x, out)), out

    return bind


def _bind_clip(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    low, high = node.meta["low"], node.meta["high"]
    out = plan.pool.empty(node.shape, node.dtype)
    return (lambda: np.clip(x, low, high, out=out)), out


def _bind_pow(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    exponent = node.meta["exponent"]
    out = plan.pool.empty(node.shape, node.dtype)
    return (lambda: np.power(x, exponent, out=out)), out


def _bind_batch_norm(plan: Plan, node: Node):
    if node.meta.get("training"):
        return _bind_batch_norm_train(plan, node)
    x = plan.values[node.inputs[0]]
    gamma = plan.values[node.inputs[1]]
    beta = plan.values[node.inputs[2]]
    c = node.shape[1]
    dtype = node.dtype
    fuse_relu = node.meta.get("fuse_relu", False)
    out = plan.pool.empty(node.shape, dtype)
    live = _is_live(plan, node.inputs[1]) or _is_live(plan, node.inputs[2])

    if not live:
        scale, shift = bn_scale_shift(
            gamma, beta, node.meta["mean"], node.meta["var"], node.meta["eps"], dtype
        )
        scale_r = scale.reshape(1, c, 1, 1)
        shift_r = shift.reshape(1, c, 1, 1)
        node.meta["_scale"] = scale_r

        def step() -> None:
            np.multiply(x, scale_r, out=out)
            np.add(out, shift_r, out=out)
            if fuse_relu:
                np.maximum(out, 0.0, out=out)

        return step, out

    # Live gamma/beta (and live running stats, updated by interleaved
    # training forwards): re-derive the per-channel affine every replay, in
    # float64 like :func:`bn_scale_shift`, into persistent buffers.
    mean_ref, var_ref = node.meta["mean"], node.meta["var"]
    eps = node.meta["eps"]
    scale64 = plan.pool.empty((c,), np.float64)
    shift64 = plan.pool.empty((c,), np.float64)
    scale_r = plan.pool.empty((1, c, 1, 1), dtype)
    shift_r = plan.pool.empty((1, c, 1, 1), dtype)
    scale_cast = scale_r.reshape(c)
    shift_cast = shift_r.reshape(c)
    node.meta["_scale"] = scale_r

    def step() -> None:
        np.add(var_ref, eps, out=shift64)
        np.sqrt(shift64, out=shift64)
        np.divide(gamma, shift64, out=scale64)
        np.multiply(mean_ref, scale64, out=shift64)
        np.subtract(beta, shift64, out=shift64)
        scale_cast[...] = scale64
        shift_cast[...] = shift64
        np.multiply(x, scale_r, out=out)
        np.add(out, shift_r, out=out)
        if fuse_relu:
            np.maximum(out, 0.0, out=out)

    return step, out


def _bind_batch_norm_train(plan: Plan, node: Node):
    """Batch-stat batch norm with in-place running-statistic updates.

    Reproduces :func:`repro.nn.functional.batch_norm2d`'s training branch
    operation for operation: batch mean/var in the input dtype, running
    buffers (kept in their own dtype) updated with the eager expression's
    evaluation order, normalization through ``x_hat`` (stored for the
    backward kernel) and the unbiased-variance correction on the running
    update.
    """
    x = plan.values[node.inputs[0]]
    gamma = plan.values[node.inputs[1]]
    beta = plan.values[node.inputs[2]]
    n, c, h, w = node.shape
    dtype = node.dtype
    fuse_relu = node.meta.get("fuse_relu", False)
    momentum = node.meta["momentum"]
    eps = node.meta["eps"]
    running_mean = node.meta["running_mean"]
    running_var = node.meta["running_var"]
    count = n * h * w
    var_factor = count / max(count - 1, 1)

    mean_c = plan.pool.empty((c,), dtype)
    var_c = plan.pool.empty((c,), dtype)
    std_c = plan.pool.empty((c,), dtype)
    scratch_c = plan.pool.empty((c,), dtype)
    x_hat = plan.pool.empty(node.shape, dtype)
    out = plan.pool.empty(node.shape, dtype)
    mean_r = mean_c.reshape(1, c, 1, 1)
    std_r = std_c.reshape(1, c, 1, 1)
    gamma_r = gamma.reshape(1, c, 1, 1)
    beta_r = beta.reshape(1, c, 1, 1)
    node.meta["_x_hat"] = x_hat
    node.meta["_std"] = std_r
    node.meta["_gamma_r"] = gamma_r

    def step() -> None:
        np.mean(x, axis=(0, 2, 3), out=mean_c)
        np.var(x, axis=(0, 2, 3), out=var_c)
        np.multiply(running_mean, 1.0 - momentum, out=running_mean)
        np.multiply(mean_c, momentum, out=scratch_c)
        np.add(running_mean, scratch_c, out=running_mean)
        np.multiply(running_var, 1.0 - momentum, out=running_var)
        np.multiply(var_c, momentum, out=scratch_c)
        np.multiply(scratch_c, var_factor, out=scratch_c)
        np.add(running_var, scratch_c, out=running_var)
        np.add(var_c, eps, out=std_c)
        np.sqrt(std_c, out=std_c)
        np.subtract(x, mean_r, out=x_hat)
        np.divide(x_hat, std_r, out=x_hat)
        np.multiply(x_hat, gamma_r, out=out)
        np.add(out, beta_r, out=out)
        if fuse_relu:
            np.maximum(out, 0.0, out=out)

    return step, out


def _bind_max_pool(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    kernel, stride = node.meta["kernel"], node.meta["stride"]
    n, c, out_h, out_w = node.shape

    if kernel == 2 and stride == 2:
        # Specialized 2x2/stride-2 pool: a maximum tree over four strided
        # window views — no patch materialization, no argmax pass.  The
        # backward kernel re-derives the winner masks from the stored output
        # with argmax (first-index) tie-breaking.
        windows = [
            x[:, :, ki : ki + 2 * out_h : 2, kj : kj + 2 * out_w : 2]
            for ki in (0, 1)
            for kj in (0, 1)
        ]
        node.meta["_windows"] = windows
        scratch = plan.pool.empty(node.shape, node.dtype)
        out = plan.pool.empty(node.shape, node.dtype)

        def step() -> None:
            np.maximum(windows[0], windows[1], out=out)
            np.maximum(windows[2], windows[3], out=scratch)
            np.maximum(out, scratch, out=out)

        return step, out

    patches = _patch_view(x, kernel, stride, out_h, out_w)
    flat = plan.pool.empty((n, c, out_h, out_w, kernel * kernel), node.dtype)
    flat6 = flat.reshape(n, c, out_h, out_w, kernel, kernel)
    flat2 = flat.reshape(-1, kernel * kernel)
    argmax = np.empty((n, c, out_h, out_w), dtype=np.intp)
    plan.pool._register(argmax)
    argmax_flat = argmax.reshape(-1)
    rows = np.arange(n * c * out_h * out_w)
    plan.pool._register(rows)
    node.meta["_argmax"] = argmax
    node.meta["_rows"] = rows
    out = plan.pool.empty(node.shape, node.dtype)
    out_flat = out.reshape(-1)

    def step() -> None:
        flat6[...] = patches
        np.argmax(flat, axis=-1, out=argmax)
        # Gather the winners through the argmax (cheaper than a second
        # full reduction, and tie-breaking matches the eager kernel).
        out_flat[...] = flat2[rows, argmax_flat]

    return step, out


def _bind_avg_pool(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    kernel, stride = node.meta["kernel"], node.meta["stride"]
    n, c, out_h, out_w = node.shape
    patches = _patch_view(x, kernel, stride, out_h, out_w)
    out = plan.pool.empty(node.shape, node.dtype)
    return (lambda: np.mean(patches, axis=(-1, -2), out=out)), out


def _bind_sum(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    axis, keepdims = node.meta["axis"], node.meta["keepdims"]
    out = plan.pool.empty(node.shape, node.dtype)
    return (lambda: np.sum(x, axis=axis, keepdims=keepdims, out=out)), out


def _bind_reshape(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    view = x.reshape(node.meta["shape"])
    if np.shares_memory(view, x):
        return None, view
    # Non-contiguous source: materialize through a bound buffer instead.
    out = plan.pool.empty(node.shape, node.dtype)
    out_as_in = out.reshape(x.shape)
    return (lambda: np.copyto(out_as_in, x)), out


def _bind_transpose(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    return None, np.transpose(x, node.meta["axes"])


def _bind_pad2d(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    padding = node.meta["padding"]
    out = plan.pool.zeros(node.shape, node.dtype)
    interior = out[..., padding:-padding, padding:-padding]
    return (lambda: np.copyto(interior, x)), out


def _bind_detach(plan: Plan, node: Node):
    return None, plan.values[node.inputs[0]]


def _bind_ew(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    out = plan.pool.empty(node.shape, node.dtype)
    ops: List[Callable[[], None]] = []
    for step in node.meta["steps"]:
        kind = step["op"]
        if kind in _EW_BINARY_UFUNC:
            const = plan.values[step["const"]]
            ops.append(_make_ew_binary(_EW_BINARY_UFUNC[kind], out, const))
        elif kind == "neg":
            ops.append(lambda out=out: np.negative(out, out=out))
        elif kind == "relu":
            mask = plan.pool.empty(node.shape, bool)
            step["_mask"] = mask
            ops.append(_make_ew_relu(out, mask))
        elif kind == "clip":
            mask = plan.pool.empty(node.shape, bool)
            scratch_mask = plan.pool.empty(node.shape, bool)
            step["_mask"] = mask
            ops.append(_make_ew_clip(out, mask, scratch_mask, step["low"], step["high"]))
        else:  # pragma: no cover - the pass only emits the kinds above
            raise CompileError(f"unknown elementwise step '{kind}'")

    def run() -> None:
        np.copyto(out, x)
        for op in ops:
            op()

    return run, out


_EW_BINARY_UFUNC = {"add": np.add, "mul": np.multiply, "div": np.divide}


def _make_ew_binary(ufunc, out, const):
    return lambda: ufunc(out, const, out=out)


def _make_ew_relu(out, mask):
    def run() -> None:
        np.maximum(out, 0.0, out=out)
        np.greater(out, 0.0, out=mask)

    return run


def _make_ew_clip(out, mask, scratch_mask, low, high):
    def run() -> None:
        np.greater_equal(out, low, out=mask)
        np.less_equal(out, high, out=scratch_mask)
        np.logical_and(mask, scratch_mask, out=mask)
        np.clip(out, low, high, out=out)

    return run


_FORWARD = {
    "conv2d": _bind_conv2d,
    "affine": _bind_affine,
    "matmul": _bind_matmul,
    "add": _bind_binary(np.add),
    "mul": _bind_binary(np.multiply),
    "div": _bind_binary(np.divide),
    "maximum": _bind_binary(np.maximum),
    "neg": _bind_unary(lambda x, out: np.negative(x, out=out)),
    "relu": _bind_unary(lambda x, out: np.maximum(x, 0.0, out=out)),
    "exp": _bind_unary(lambda x, out: np.exp(x, out=out)),
    "log": _bind_unary(lambda x, out: np.log(x, out=out)),
    "sqrt": _bind_unary(lambda x, out: np.sqrt(x, out=out)),
    "abs": _bind_unary(lambda x, out: np.abs(x, out=out)),
    "tanh": _bind_unary(lambda x, out: np.tanh(x, out=out)),
    "sigmoid": _bind_unary(
        lambda x, out: (
            np.negative(x, out=out),
            np.exp(out, out=out),
            np.add(out, 1.0, out=out),
            np.divide(1.0, out, out=out),
        )
    ),
    "clip": _bind_clip,
    "pow": _bind_pow,
    "batch_norm2d": _bind_batch_norm,
    "max_pool2d": _bind_max_pool,
    "avg_pool2d": _bind_avg_pool,
    "sum": _bind_sum,
    "reshape": _bind_reshape,
    "transpose": _bind_transpose,
    "pad2d": _bind_pad2d,
    "detach": _bind_detach,
    "ew": _bind_ew,
}


# --------------------------------------------------------------------------- #
# backward binders (input-gradient only; parameters are plan constants)
# --------------------------------------------------------------------------- #
def _relu_mask_step(plan: Plan, node: Node) -> Optional[Callable[[], None]]:
    """In-place ``g *= (out > 0)`` for producers with a fused ReLU."""
    if not node.meta.get("fuse_relu"):
        return None
    out = plan.values[node.id]
    g = plan.grads[node.id]
    mask = plan.pool.empty(node.shape, bool)

    def run() -> None:
        np.greater(out, 0.0, out=mask)
        np.multiply(g, mask, out=g)

    return run


def _accumulate_into(plan: Plan, target_id: int, source: np.ndarray):
    """A step sinking ``source`` (shaped like the node output) into a target grad.

    Handles broadcast inverses: when the target is smaller than the node
    output (a broadcast operand), the source is summed down into a bound
    scratch buffer first.  Single-contribution targets are overwritten
    instead of accumulated (see :meth:`Plan._sink`).
    """
    write, target = plan._sink(target_id)
    if target.shape == source.shape:
        if write:
            return lambda: np.copyto(target, source)
        return lambda: np.add(target, source, out=target)
    axes, kept = _reduction_spec(source.shape, target.shape)
    reduced = plan.pool.empty(kept, target.dtype)
    reduced_view = reduced.reshape(target.shape)

    def run() -> None:
        np.sum(source, axis=tuple(axes), keepdims=True, out=reduced)
        if write:
            np.copyto(target, reduced_view)
        else:
            np.add(target, reduced_view, out=target)

    return run


def _back_conv2d(plan: Plan, node: Node):
    x_id = node.inputs[0]
    w_id = node.inputs[1]
    b_id = node.inputs[2] if len(node.inputs) > 2 else None
    need_x = x_id in plan._diff
    need_w = w_id in plan._diff
    need_b = b_id is not None and b_id in plan._diff
    if not (need_x or need_w or need_b):
        # Unreachable for well-formed graphs (a conv is always on some
        # gradient path), kept as a safe default.
        return _relu_mask_step(plan, node)
    stride, padding = node.meta["stride"], node.meta["padding"]
    _, oc, out_h, out_w = node.shape
    weight = plan.values[w_id]
    kernel = weight.shape[2]
    dtype = node.dtype
    g = plan.grads[node.id]
    mask2d = node.meta.get("_relu_mask2d")
    cols = node.meta["_cols"]

    n = node.shape[0]
    grad_mat = plan.pool.empty((n * out_h * out_w, oc), dtype)
    gm_nhwc = grad_mat.reshape(n, out_h, out_w, oc)
    g_nhwc = g.transpose(0, 2, 3, 1)

    steps: List[Callable[[], None]] = []
    if need_w:
        # grad_w = grad_mat.T @ cols — the exact matmul the eager kernel
        # runs, reading the im2col buffer the forward replay just filled.
        write_w, gw = plan._sink(w_id)
        gw2d = gw.reshape(oc, -1)
        grad_mat_t = grad_mat.T
        if write_w:
            steps.append(lambda: np.matmul(grad_mat_t, cols, out=gw2d))
        else:
            scratch_w = plan.pool.empty(gw2d.shape, dtype)
            steps.append(
                lambda: (np.matmul(grad_mat_t, cols, out=scratch_w), np.add(gw2d, scratch_w, out=gw2d))
            )
    if need_b:
        write_b, gb = plan._sink(b_id)
        if write_b:
            steps.append(lambda: np.sum(grad_mat, axis=0, out=gb))
        else:
            scratch_b = plan.pool.empty(gb.shape, dtype)
            steps.append(
                lambda: (np.sum(grad_mat, axis=0, out=scratch_b), np.add(gb, scratch_b, out=gb))
            )
    if need_x:
        x_node = plan.graph.node(x_id)
        n, c, h, w = x_node.shape
        write, gx = plan._sink(x_id)
        grad_cols = plan.pool.empty((n * out_h * out_w, kernel * kernel * c), dtype)
        live_w = _is_live(plan, w_id)

        # The col2im scatter is k*k strided slice-adds; pick the layout whose
        # innermost contiguous run is longest.  Wide feature maps with few
        # channels (stem convolutions) scatter fastest over NCHW rows; deep
        # layers (channels >= spatial width) over NHWC channel vectors.
        nhwc = c >= out_w
        if nhwc:
            if live_w:
                # Refresh a persistent buffer from the live weights each
                # replay (a strided copy — no allocation).
                w_mat = plan.pool.empty((oc, kernel * kernel * c), dtype)
                w_mat_src = weight.transpose(0, 2, 3, 1)
                w_mat_view = w_mat.reshape(oc, kernel, kernel, c)
                refresh = lambda: np.copyto(w_mat_view, w_mat_src)
            else:
                w_mat = np.ascontiguousarray(weight.transpose(0, 2, 3, 1).reshape(oc, -1))
                refresh = None
            gc = grad_cols.reshape(n, out_h, out_w, kernel, kernel, c)
            gpad = plan.pool.empty((n, h + 2 * padding, w + 2 * padding, c), dtype)
            interior = gpad[:, padding : padding + h, padding : padding + w, :].transpose(0, 3, 1, 2)

            def slice_of(target, ki: int, kj: int):
                return target[:, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride, :]

            def col_of(ki: int, kj: int):
                return gc[:, :, :, ki, kj, :]

        else:
            # weight.reshape on the contiguous parameter array is a view, so
            # live weights need no refresh here.
            w_mat = weight.reshape(oc, -1)
            refresh = None
            gc = grad_cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
            gpad = plan.pool.empty((n, c, h + 2 * padding, w + 2 * padding), dtype)
            interior = gpad[:, :, padding : padding + h, padding : padding + w]

            def slice_of(target, ki: int, kj: int):
                return target[:, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride]

            def col_of(ki: int, kj: int):
                return gc[:, :, :, :, ki, kj]

        def input_step() -> None:
            if refresh is not None:
                refresh()
            np.matmul(grad_mat, w_mat, out=grad_cols)
            gpad.fill(0)
            for ki in range(kernel):
                for kj in range(kernel):
                    slice_target = slice_of(gpad, ki, kj)
                    np.add(slice_target, col_of(ki, kj), out=slice_target)
            if write:
                np.copyto(gx, interior)
            else:
                np.add(gx, interior, out=gx)

        steps.append(input_step)

    def run() -> None:
        gm_nhwc[...] = g_nhwc
        if mask2d is not None:
            np.multiply(grad_mat, mask2d, out=grad_mat)
        for step in steps:
            step()

    return run


def _back_affine(plan: Plan, node: Node):
    x_id = node.inputs[0]
    if x_id not in plan._diff:
        return _relu_mask_step(plan, node)
    weight = np.ascontiguousarray(plan.values[node.inputs[1]].T)  # (out, in)
    g = plan.grads[node.id]
    relu_step = _relu_mask_step(plan, node)
    write, gx = plan._sink(x_id)
    target = gx if write else plan.pool.empty(gx.shape, gx.dtype)

    def run() -> None:
        if relu_step is not None:
            relu_step()
        np.matmul(g, weight, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _back_matmul(plan: Plan, node: Node):
    a_id, b_id = node.inputs
    a, b = plan.values[a_id], plan.values[b_id]
    g = plan.grads[node.id]
    relu_step = _relu_mask_step(plan, node)
    steps: List[Callable[[], None]] = []
    if a_id in plan._diff:
        write_a, ga = plan._sink(a_id)
        b_t = b.T  # static view
        target_a = ga if write_a else plan.pool.empty(ga.shape, ga.dtype)
        if write_a:
            steps.append(lambda: np.matmul(g, b_t, out=target_a))
        else:
            steps.append(lambda: (np.matmul(g, b_t, out=target_a), np.add(ga, target_a, out=ga)))
    if b_id in plan._diff:
        write_b, gb = plan._sink(b_id)
        a_t = a.T
        target_b = gb if write_b else plan.pool.empty(gb.shape, gb.dtype)
        if write_b:
            steps.append(lambda: np.matmul(a_t, g, out=target_b))
        else:
            steps.append(lambda: (np.matmul(a_t, g, out=target_b), np.add(gb, target_b, out=gb)))

    def run() -> None:
        if relu_step is not None:
            relu_step()
        for step in steps:
            step()

    return run


def _back_add(plan: Plan, node: Node):
    g = plan.grads[node.id]
    relu_step = _relu_mask_step(plan, node)
    steps = [
        _accumulate_into(plan, input_id, g)
        for input_id in node.inputs
        if input_id in plan._diff
    ]

    def run() -> None:
        if relu_step is not None:
            relu_step()
        for step in steps:
            step()

    return run


def _back_mul(plan: Plan, node: Node):
    a_id, b_id = node.inputs
    g = plan.grads[node.id]
    scratch = plan.pool.empty(node.shape, node.dtype)
    steps: List[Callable[[], None]] = []
    for this_id, other_id in ((a_id, b_id), (b_id, a_id)):
        if this_id not in plan._diff:
            continue
        other = plan.values[other_id]
        accumulate = _accumulate_into(plan, this_id, scratch)
        steps.append(
            lambda other=other, accumulate=accumulate: (
                np.multiply(g, other, out=scratch),
                accumulate(),
            )
        )
    return lambda: [step() for step in steps]


def _back_div(plan: Plan, node: Node):
    a_id, b_id = node.inputs
    g = plan.grads[node.id]
    out = plan.values[node.id]
    b = plan.values[b_id]
    scratch = plan.pool.empty(node.shape, node.dtype)
    steps: List[Callable[[], None]] = []
    if a_id in plan._diff:
        accumulate = _accumulate_into(plan, a_id, scratch)
        steps.append(lambda: (np.divide(g, b, out=scratch), accumulate()))
    if b_id in plan._diff:
        accumulate = _accumulate_into(plan, b_id, scratch)

        def db() -> None:
            # d(a/b)/db = -a / b^2 = -(a/b) / b = -out / b
            np.multiply(g, out, out=scratch)
            np.divide(scratch, b, out=scratch)
            np.negative(scratch, out=scratch)
            accumulate()

        steps.append(db)
    return lambda: [step() for step in steps]


def _back_maximum(plan: Plan, node: Node):
    a_id, b_id = node.inputs
    a, b = plan.values[a_id], plan.values[b_id]
    g = plan.grads[node.id]
    mask = plan.pool.empty(node.shape, bool)
    scratch = plan.pool.empty(node.shape, node.dtype)
    steps: List[Callable[[], None]] = []
    if a_id in plan._diff:
        accumulate = _accumulate_into(plan, a_id, scratch)
        steps.append(lambda: (np.greater_equal(a, b, out=mask), np.multiply(g, mask, out=scratch), accumulate()))
    if b_id in plan._diff:
        accumulate = _accumulate_into(plan, b_id, scratch)
        steps.append(lambda: (np.less(a, b, out=mask), np.multiply(g, mask, out=scratch), accumulate()))
    return lambda: [step() for step in steps]


def _back_neg(plan: Plan, node: Node):
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    if write:
        return lambda: np.negative(g, out=gx)
    return lambda: np.subtract(gx, g, out=gx)


def _back_relu(plan: Plan, node: Node):
    out = plan.values[node.id]
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    mask = plan.pool.empty(node.shape, bool)
    target = gx if write else plan.pool.empty(node.shape, node.dtype)

    def run() -> None:
        np.greater(out, 0.0, out=mask)
        np.multiply(g, mask, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _back_clip(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    low, high = node.meta["low"], node.meta["high"]
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    mask = plan.pool.empty(node.shape, bool)
    scratch_mask = plan.pool.empty(node.shape, bool)
    target = gx if write else plan.pool.empty(node.shape, node.dtype)

    def run() -> None:
        np.greater_equal(x, low, out=mask)
        np.less_equal(x, high, out=scratch_mask)
        np.logical_and(mask, scratch_mask, out=mask)
        np.multiply(g, mask, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _back_pow(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    exponent = node.meta["exponent"]
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    target = gx if write else plan.pool.empty(node.shape, node.dtype)

    def run() -> None:
        np.power(x, exponent - 1, out=target)
        np.multiply(target, exponent, out=target)
        np.multiply(target, g, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _back_unary_from_out(factor: Callable[[np.ndarray, np.ndarray, np.ndarray], None]):
    """Backward for unary ops whose derivative is a function of x and out."""

    def bind(plan: Plan, node: Node):
        x = plan.values[node.inputs[0]]
        out = plan.values[node.id]
        g = plan.grads[node.id]
        write, gx = plan._sink(node.inputs[0])
        target = gx if write else plan.pool.empty(node.shape, node.dtype)

        def run() -> None:
            factor(x, out, target)
            np.multiply(target, g, out=target)
            if not write:
                np.add(gx, target, out=gx)

        return run

    return bind


def _back_batch_norm(plan: Plan, node: Node):
    if node.meta.get("training"):
        return _back_batch_norm_train(plan, node)
    x_id = node.inputs[0]
    if x_id not in plan._diff:
        return _relu_mask_step(plan, node)
    g = plan.grads[node.id]
    scale = node.meta["_scale"]
    relu_step = _relu_mask_step(plan, node)
    write, gx = plan._sink(x_id)
    target = gx if write else plan.pool.empty(node.shape, node.dtype)

    def run() -> None:
        if relu_step is not None:
            relu_step()
        np.multiply(g, scale, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _back_batch_norm_train(plan: Plan, node: Node):
    """Full training-mode BN backward (through the batch statistics).

    Mirrors the eager kernel: gamma gets ``sum(grad * x_hat)``, beta gets
    ``sum(grad)``, and the input gradient is
    ``(grad_xhat - sum(grad_xhat)/m - x_hat * sum(grad_xhat * x_hat)/m) / std``.
    """
    x_id, gamma_id, beta_id = node.inputs[0], node.inputs[1], node.inputs[2]
    need_x = x_id in plan._diff
    need_gamma = gamma_id in plan._diff
    need_beta = beta_id in plan._diff
    if not (need_x or need_gamma or need_beta):
        return _relu_mask_step(plan, node)
    n, c, h, w = node.shape
    dtype = node.dtype
    count = n * h * w
    g = plan.grads[node.id]
    x_hat = node.meta["_x_hat"]
    std_r = node.meta["_std"]
    gamma_r = node.meta["_gamma_r"]
    relu_step = _relu_mask_step(plan, node)

    s1 = plan.pool.empty(node.shape, dtype)
    s2 = plan.pool.empty(node.shape, dtype)
    sg = plan.pool.empty((1, c, 1, 1), dtype)
    sgx = plan.pool.empty((1, c, 1, 1), dtype)
    steps: List[Callable[[], None]] = []
    if need_gamma:
        write_g, gg = plan._sink(gamma_id)
        if write_g:
            steps.append(lambda: (np.multiply(g, x_hat, out=s1), np.sum(s1, axis=(0, 2, 3), out=gg)))
        else:
            scratch_g = plan.pool.empty(gg.shape, dtype)
            steps.append(
                lambda: (
                    np.multiply(g, x_hat, out=s1),
                    np.sum(s1, axis=(0, 2, 3), out=scratch_g),
                    np.add(gg, scratch_g, out=gg),
                )
            )
    if need_beta:
        write_b, gb = plan._sink(beta_id)
        if write_b:
            steps.append(lambda: np.sum(g, axis=(0, 2, 3), out=gb))
        else:
            scratch_b = plan.pool.empty(gb.shape, dtype)
            steps.append(
                lambda: (np.sum(g, axis=(0, 2, 3), out=scratch_b), np.add(gb, scratch_b, out=gb))
            )
    if need_x:
        write, gx = plan._sink(x_id)

        def input_step() -> None:
            np.multiply(g, gamma_r, out=s1)  # grad_xhat
            np.sum(s1, axis=(0, 2, 3), keepdims=True, out=sg)
            np.multiply(s1, x_hat, out=s2)
            np.sum(s2, axis=(0, 2, 3), keepdims=True, out=sgx)
            np.divide(sg, count, out=sg)
            np.multiply(x_hat, sgx, out=s2)
            np.divide(s2, count, out=s2)
            np.subtract(s1, sg, out=s1)
            np.subtract(s1, s2, out=s1)
            np.divide(s1, std_r, out=s1)
            if write:
                np.copyto(gx, s1)
            else:
                np.add(gx, s1, out=gx)

        steps.append(input_step)

    def run() -> None:
        if relu_step is not None:
            relu_step()
        for step in steps:
            step()

    return run


def _back_max_pool(plan: Plan, node: Node):
    kernel, stride = node.meta["kernel"], node.meta["stride"]
    n, c, out_h, out_w = node.shape
    g = plan.grads[node.id]
    _, gx = plan._sink(node.inputs[0], supports_write=False)

    if kernel == 2 and stride == 2:
        out = plan.values[node.id]
        windows = node.meta["_windows"]
        grad_windows = [
            gx[:, :, ki : ki + 2 * out_h : 2, kj : kj + 2 * out_w : 2]
            for ki in (0, 1)
            for kj in (0, 1)
        ]
        mask = plan.pool.empty(node.shape, bool)
        taken = plan.pool.empty(node.shape, bool)
        free = plan.pool.empty(node.shape, bool)
        scratch = plan.pool.empty(node.shape, node.dtype)

        def run() -> None:
            # First window equal to the max wins, matching argmax order.
            taken.fill(False)
            for window, grad_window in zip(windows, grad_windows):
                np.equal(window, out, out=mask)
                np.logical_not(taken, out=free)
                np.logical_and(mask, free, out=mask)
                np.multiply(g, mask, out=scratch)
                np.add(grad_window, scratch, out=grad_window)
                np.logical_or(taken, mask, out=taken)

        return run

    argmax = node.meta["_argmax"]

    if stride >= kernel:
        # Non-overlapping windows: scatter the grad to its argmax slot in a
        # (n, c, oh, ow, k*k) buffer and add it through a disjoint patch view
        # of gx — fully vectorized, no np.add.at.
        flat_grad = plan.pool.empty((n, c, out_h, out_w, kernel * kernel), node.dtype)
        fg2 = flat_grad.reshape(-1, kernel * kernel)
        fg6 = flat_grad.reshape(n, c, out_h, out_w, kernel, kernel)
        rows = node.meta["_rows"]
        argmax_flat = argmax.reshape(-1)
        g_flat = g.reshape(-1)
        patch_target = _patch_view(gx, kernel, stride, out_h, out_w)

        def run() -> None:
            flat_grad.fill(0)
            fg2[rows, argmax_flat] = g_flat
            np.add(patch_target, fg6, out=patch_target)

        return run

    # Overlapping windows: fall back to an indexed scatter-add.
    n_idx, c_idx, i_idx, j_idx = np.meshgrid(
        np.arange(n), np.arange(c), np.arange(out_h), np.arange(out_w), indexing="ij"
    )
    rows_base = i_idx * stride
    cols_base = j_idx * stride
    ki = np.empty(argmax.shape, dtype=np.intp)
    kj = np.empty(argmax.shape, dtype=np.intp)
    for buffer in (n_idx, c_idx, rows_base, cols_base, ki, kj):
        plan.pool._register(buffer)

    def run() -> None:
        np.floor_divide(argmax, kernel, out=ki)
        np.remainder(argmax, kernel, out=kj)
        np.add(ki, rows_base, out=ki)
        np.add(kj, cols_base, out=kj)
        np.add.at(gx, (n_idx, c_idx, ki, kj), g)

    return run


def _back_avg_pool(plan: Plan, node: Node):
    kernel, stride = node.meta["kernel"], node.meta["stride"]
    _, _, out_h, out_w = node.shape
    g = plan.grads[node.id]
    _, gx = plan._sink(node.inputs[0], supports_write=False)
    scratch = plan.pool.empty(node.shape, node.dtype)
    inverse_area = 1.0 / (kernel * kernel)

    def run() -> None:
        np.multiply(g, inverse_area, out=scratch)
        for ki in range(kernel):
            for kj in range(kernel):
                gx[
                    :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ] += scratch

    return run


def _back_sum(plan: Plan, node: Node):
    axis, keepdims = node.meta["axis"], node.meta["keepdims"]
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    if axis is None or keepdims:
        g_view = g
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % gx.ndim for a in axes)
        expanded = tuple(1 if i in axes else s for i, s in enumerate(gx.shape))
        g_view = g.reshape(expanded)
    if write:
        return lambda: np.copyto(gx, g_view)  # broadcasts the reduced grad
    return lambda: np.add(gx, g_view, out=gx)


def _back_reshape(plan: Plan, node: Node):
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    g_view = g.reshape(gx.shape)
    if write:
        return lambda: np.copyto(gx, g_view)
    return lambda: np.add(gx, g_view, out=gx)


def _back_transpose(plan: Plan, node: Node):
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    axes = node.meta["axes"]
    inverse = None if axes is None else np.argsort(axes)
    g_view = np.transpose(g, inverse)
    if write:
        return lambda: np.copyto(gx, g_view)
    return lambda: np.add(gx, g_view, out=gx)


def _back_pad2d(plan: Plan, node: Node):
    padding = node.meta["padding"]
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    interior = g[..., padding:-padding, padding:-padding]
    if write:
        return lambda: np.copyto(gx, interior)
    return lambda: np.add(gx, interior, out=gx)


def _back_ew(plan: Plan, node: Node):
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    scratch = gx if write else plan.pool.empty(node.shape, node.dtype)
    reversed_steps = []
    for step in reversed(node.meta["steps"]):
        kind = step["op"]
        if kind == "add":
            continue
        if kind == "mul":
            const = plan.values[step["const"]]
            reversed_steps.append(lambda const=const: np.multiply(scratch, const, out=scratch))
        elif kind == "div":
            const = plan.values[step["const"]]
            reversed_steps.append(lambda const=const: np.divide(scratch, const, out=scratch))
        elif kind == "neg":
            reversed_steps.append(lambda: np.negative(scratch, out=scratch))
        elif kind in ("relu", "clip"):
            mask = step["_mask"]
            reversed_steps.append(lambda mask=mask: np.multiply(scratch, mask, out=scratch))
        else:  # mirror the forward binder: unknown kinds must fail at bind time
            raise CompileError(f"elementwise step '{kind}' has no backward rule")

    def run() -> None:
        np.copyto(scratch, g)
        for step in reversed_steps:
            step()
        if not write:
            np.add(gx, scratch, out=gx)

    return run


_BACKWARD = {
    "conv2d": _back_conv2d,
    "affine": _back_affine,
    "matmul": _back_matmul,
    "add": _back_add,
    "mul": _back_mul,
    "div": _back_div,
    "maximum": _back_maximum,
    "neg": _back_neg,
    "relu": _back_relu,
    "clip": _back_clip,
    "pow": _back_pow,
    "exp": _back_unary_from_out(lambda x, out, s: np.copyto(s, out)),
    "log": _back_unary_from_out(lambda x, out, s: np.divide(1.0, x, out=s)),
    "sqrt": _back_unary_from_out(
        lambda x, out, s: (np.maximum(out, 1e-12, out=s), np.divide(0.5, s, out=s))
    ),
    "abs": _back_unary_from_out(lambda x, out, s: np.sign(x, out=s)),
    "tanh": _back_unary_from_out(
        lambda x, out, s: (np.multiply(out, out, out=s), np.subtract(1.0, s, out=s))
    ),
    "sigmoid": _back_unary_from_out(
        lambda x, out, s: (np.subtract(1.0, out, out=s), np.multiply(s, out, out=s))
    ),
    "batch_norm2d": _back_batch_norm,
    "max_pool2d": _back_max_pool,
    "avg_pool2d": _back_avg_pool,
    "sum": _back_sum,
    "reshape": _back_reshape,
    "transpose": _back_transpose,
    "pad2d": _back_pad2d,
    "ew": _back_ew,
}
