"""Buffer-bound plan execution: ``out=`` kernels over a :class:`BufferPool`.

A :class:`Plan` binds an optimized :class:`~repro.compile.graph.Graph` to
pre-allocated buffers: every op output, gradient accumulator and scratch
array (im2col columns, pooling argmax indices, ReLU masks) is allocated once
at bind time, and replays write into those same arrays with ``out=``-style
NumPy kernels.  Steady-state iterations therefore perform zero pool
allocations — the property the attack hot path (tens of gradient steps per
batch) is bought with.

Three gradient modes exist.  ``grad="input"`` (the attack/eval default)
computes the gradient **with respect to the input only** — parameters are
baked in (or aliased, for live-parameter plans), so the weight-gradient
matmuls the eager engine performs on every attack step (and throws away)
are never executed.  ``grad="params"`` (the training mode) instead seeds
the differentiation set from the graph's live ``"param"`` nodes and
accumulates **full parameter gradients** into pre-allocated pooled buffers;
:meth:`Plan.run_backward` additionally accepts gradient seeds at named
intermediate nodes (registered via ``seed_ids``).  ``grad="both"`` binds
**two backward programs over shared gradient buffers**: a fused
input+param program (one im2col read and one col2im scatter per
convolution emit the input gradient *and* the weight/bias gradients in a
single pass) driven by :meth:`run_backward`, and an input-only program
driven by :meth:`backward` — the attack hot path, which skips every
weight-gradient matmul.  A mode-invariant graph (no batch norm) can then
serve PGD-AT's inner attack loop and its outer optimizer step from one
plan.

Graphs may carry named ``aux`` input leaves (per-batch arrays that are not
the traced input: another plan's logits buffer, a one-hot label mask, a
precomputed Gram matrix).  Each binds to a caller-supplied alias or to a
pooled buffer filled through :meth:`Plan.set_aux`; names listed in
``grad_aux`` additionally receive gradient accumulators, which is how an
in-plan loss term hands its gradient to the plan that produced the aliased
buffer (TRADES' KL gradient with respect to the clean logits).

Live-parameter plans (graphs captured with ``live_params=True``) alias
``param.data`` directly and re-read it on every replay — one plan survives
every in-place optimizer step.  Training-mode batch norms recompute batch
statistics per replay and update the module's running buffers in place,
reproducing the eager update sequence bit for bit.

Losses are fused: :meth:`Plan.value_and_grad_ce` evaluates softmax
cross-entropy and seeds the backward pass with the closed-form
``softmax(z) - onehot(y)`` gradient in scratch buffers.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from types import SimpleNamespace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..obs.profiler import PROFILER as _PROFILER
from .backends import get_provider, resolve_provider_name
from .graph import CompileError, Graph, LEAF_OPS as _LEAF_OPS, Node
from .passes import bn_scale_shift
from .pool import BufferPool

__all__ = ["Plan"]


def _patch_view(x: np.ndarray, kernel: int, stride: int, out_h: int, out_w: int) -> np.ndarray:
    """(N, C, out_h, out_w, k, k) sliding-window view over an NCHW array."""
    n, c = x.shape[:2]
    s0, s1, s2, s3 = x.strides
    return as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
    )


def _reduction_spec(from_shape: Tuple[int, ...], to_shape: Tuple[int, ...]):
    """Axes summing a ``from_shape`` gradient down to ``to_shape`` (broadcast inverse)."""
    extra = len(from_shape) - len(to_shape)
    axes = list(range(extra))
    for index, size in enumerate(to_shape):
        if size == 1 and from_shape[extra + index] != 1:
            axes.append(extra + index)
    kept = tuple(
        1 if i in axes else from_shape[i] for i in range(len(from_shape))
    )
    return tuple(axes), kept


class Plan:
    """An executable, buffer-bound instance of an optimized graph.

    One plan serves exactly one ``(input shape, dtype)`` signature; the
    shape-dispatching caches live in :class:`~repro.compile.CompiledModel`
    (eval) and :class:`~repro.compile.training.CompiledTrainer` (training).

    Parameters
    ----------
    grad:
        ``"input"`` differentiates with respect to the input batch (the
        attack hot path); ``"params"`` with respect to every live ``param``
        node (the training step — parameter gradients land in pooled
        buffers exposed via :meth:`param_grads`); ``"both"`` binds a fused
        input+param backward program plus a fast input-only program.
    seed_ids:
        Node ids that may receive external gradient seeds through
        :meth:`run_backward` (hidden-output nodes, in-plan loss scalars).
        Registering them as extra contributors keeps the dead-write
        elimination from overwriting injected seeds.
    aux:
        ``name -> array`` aliases for the graph's aux input leaves; unbound
        names get pooled buffers, filled per batch via :meth:`set_aux`.
    grad_aux:
        Aux names to include in the differentiation set; their accumulated
        gradients are read back through :meth:`aux_grad`.
    provider:
        Kernel-provider name (see :mod:`repro.compile.backends`).  ``None``
        resolves through ``use_provider`` scopes and the ``REPRO_PROVIDER``
        environment variable, defaulting to the serial ``numpy`` reference.
        The binders keep all wiring; the provider only supplies ``step()``
        bodies, falling back per op to the reference kernels.
    """

    def __init__(
        self,
        graph: Graph,
        pool: Optional[BufferPool] = None,
        grad: str = "input",
        seed_ids: Sequence[int] = (),
        aux: Optional[Mapping[str, np.ndarray]] = None,
        grad_aux: Sequence[str] = (),
        provider: Optional[str] = None,
    ) -> None:
        if grad not in ("input", "params", "both"):
            raise ValueError(f"unknown grad mode '{grad}'; use 'input', 'params' or 'both'")
        self.graph = graph
        self.grad_mode = grad
        self.pool = pool or BufferPool()
        #: resolved kernel-provider name; joins cache keys and profiles.
        self.provider_name = resolve_provider_name(provider)
        self.provider = get_provider(self.provider_name)
        #: node id -> forward value (const arrays, bound buffers, or views).
        self.values: Dict[int, np.ndarray] = {}
        #: node id -> gradient accumulator (shared across backward programs).
        self.grads: Dict[int, np.ndarray] = {}
        #: aux name -> bound array (aliases and pooled buffers alike).
        self.aux_values: Dict[str, np.ndarray] = {}
        #: (Parameter, node id) pairs for live-parameter graphs.
        self.params: List[Tuple[object, int]] = [
            (n.meta["parameter"], n.id) for n in graph.param_nodes()
        ]
        self._forward_steps: List[Callable[[], None]] = []
        #: per-step (op kind, output bytes), parallel to _forward_steps —
        #: recorded at bind time so profiled replays need no graph walks.
        self._forward_meta: List[Tuple[str, int]] = []
        #: lazily created when the obs profiler is enabled at replay time.
        self._profile = None
        self._aux_bindings: Dict[str, np.ndarray] = dict(aux or {})
        for name in grad_aux:
            if name not in graph.aux:
                raise CompileError(f"unknown aux input '{name}'")
        self._grad_aux = tuple(grad_aux)
        self._seed_requested = tuple(seed_ids)
        #: backward programs by name ("full" and/or "input"); each holds the
        #: bound step list, the buffers to zero per run, its diff set and
        #: the seed ids it honours.
        self._programs: Dict[str, dict] = {}
        self._ce: Optional[dict] = None
        self._bind()

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return self.graph.input_node.shape

    @property
    def input_dtype(self) -> np.dtype:
        return np.dtype(self.graph.input_node.dtype)

    @property
    def signature(self) -> str:
        """Human-readable input signature, e.g. ``"32x1x28x28:float32"``."""
        shape = "x".join(str(dim) for dim in self.graph.input_node.shape)
        return f"{shape}:{self.input_dtype.name}"

    # ------------------------------------------------------------------ #
    # profiling (repro.obs)
    # ------------------------------------------------------------------ #
    def _replay_profiled(self, steps, meta) -> None:
        """Run a bound step list, timing each kernel into the plan profile.

        Only reached when the obs profiler is enabled — the replay entry
        points branch on one flag read, so the disabled path pays nothing.
        """
        profile = self._profile
        if profile is None:
            profile = self._profile = _PROFILER.profile_for(self)
        record = profile.record
        for (kind, nbytes), step in zip(meta, steps):
            started = _perf_counter()
            step()
            record(kind, _perf_counter() - started, nbytes)

    def profile_snapshot(self) -> Optional[dict]:
        """Per-op-kind profile plus pool high-water marks; ``None`` if never
        profiled (the profiler was off for every replay of this plan)."""
        if self._profile is None:
            return None
        allocations, nbytes = self.pool.snapshot()
        return {
            "signature": self.signature,
            "provider": self.provider_name,
            "ops": self._profile.as_dict(),
            "pool": {"allocations": allocations, "bytes": nbytes},
        }

    # ------------------------------------------------------------------ #
    # kernel-provider dispatch
    # ------------------------------------------------------------------ #
    def _kernel(self, node: Node, kind: str, ctx, suffix: str = "") -> Callable[[], None]:
        """A provider-served step for ``kind`` over a bound kernel context.

        Records which provider actually served the op in ``node.meta``
        (``"_provider"`` forward, ``"_provider.bwd"`` backward) so profile
        rows can be labelled ``kind@provider`` and parity tests can assert
        per-op fallback.  Only non-default servings are recorded — plain
        labels mean the serial reference ran.
        """
        step, served = self.provider.kernel(kind, ctx)
        key = "_provider" + suffix
        if served != "numpy":
            node.meta[key] = served
        else:
            node.meta.pop(key, None)
        return step

    # ------------------------------------------------------------------ #
    # binding
    # ------------------------------------------------------------------ #
    def _bind(self) -> None:
        graph = self.graph
        self._input = self.pool.empty(graph.input_node.shape, graph.input_node.dtype)
        self.values[graph.input_id] = self._input
        for node in graph.nodes:
            if node.op == "input":
                continue
            if node.op == "const":
                # ascontiguousarray promotes 0-d scalars to (1,); keep them 0-d.
                self.values[node.id] = (
                    node.value if node.value.ndim == 0 else np.ascontiguousarray(node.value)
                )
                continue
            if node.op == "param":
                # Live leaf: alias the parameter's storage.  Replays re-read
                # it, so in-place optimizer updates flow into the plan; the
                # identity guard in :meth:`forward` catches reallocation.
                self.values[node.id] = node.meta["parameter"].data
                continue
            if node.op == "aux":
                name = node.meta["name"]
                bound = self._aux_bindings.get(name)
                if bound is None:
                    bound = self.pool.empty(node.shape, node.dtype)
                elif tuple(bound.shape) != tuple(node.shape):
                    raise CompileError(
                        f"aux '{name}' binding shape {bound.shape} != {node.shape}"
                    )
                self.values[node.id] = bound
                self.aux_values[name] = bound
                continue
            binder = _FORWARD.get(node.op)
            if binder is None:
                raise CompileError(f"op '{node.op}' has no compiled kernel")
            step, out = binder(self, node)
            self.values[node.id] = out
            if step is not None:
                served = node.meta.get("_provider")
                label = f"{node.op}@{served}" if served else node.op
                self._forward_steps.append(step)
                self._forward_meta.append((label, out.nbytes))

        aux_grad_ids = tuple(graph.aux[name] for name in self._grad_aux)
        if self.grad_mode == "input":
            specs = [("input", True, False, aux_grad_ids)]
        elif self.grad_mode == "params":
            specs = [("full", False, True, aux_grad_ids)]
        else:  # both: the fused full program plus the attack-loop fast path
            specs = [("full", True, True, aux_grad_ids), ("input", True, False, ())]
        for name, include_input, include_params, extra in specs:
            program = self._bind_program(include_input, include_params, extra)
            if program is not None:
                self._programs[name] = program
        # The binders communicate through _diff/_seed_ids/_contributions/
        # _fill_ids, which are rebound per program during binding; afterwards
        # re-point the public-ish pair at the *primary* program (the fullest
        # differentiation set) and drop the binding-only scratch, so nothing
        # can read a stale secondary-program view after __init__.
        primary = self._programs.get("full") or self._programs.get("input")
        self._diff = set(primary["diff"]) if primary is not None else set()
        self._seed_ids = set(primary["seeds"]) if primary is not None else set()
        for scratch in ("_contributions", "_fill_ids"):
            if hasattr(self, scratch):  # absent on forward-only plans
                delattr(self, scratch)

    def _bind_program(
        self, include_input: bool, include_params: bool, extra: Tuple[int, ...]
    ) -> Optional[dict]:
        """Bind one backward program; ``None`` when no gradient path exists.

        Programs share the per-node gradient buffers in :attr:`grads` but
        own their step list, zero-fill set and dead-write (sink) decisions —
        the same buffer may be overwritten by its sole contributor in one
        program and accumulated into in another.
        """
        graph = self.graph
        self._diff = graph.grad_path(
            include_input=include_input, include_params=include_params, extra=extra
        )
        if graph.output_id not in self._diff:
            return None
        # Dead-write elimination: a gradient buffer that receives exactly one
        # contribution is written directly by its contributing kernel (via
        # `_sink`), skipping both the zero-fill and the accumulate add.  The
        # output seed counts as the output node's single contribution, and so
        # does each registered external-seed injection point.
        self._seed_ids = set(self._seed_requested) & self._diff
        self._contributions = {graph.output_id: 1}
        for node in graph.nodes:
            if node.id not in self._diff or node.op in _LEAF_OPS:
                continue
            for input_id in node.inputs:
                if input_id in self._diff:
                    self._contributions[input_id] = self._contributions.get(input_id, 0) + 1
        for seed_id in self._seed_ids:
            self._contributions[seed_id] = self._contributions.get(seed_id, 0) + 1
        self._fill_ids: Set[int] = set()
        for node in graph.nodes:
            if node.id in self._diff:
                if node.id not in self.grads:
                    self.grads[node.id] = self.pool.empty(node.shape, node.dtype)
                self._fill_ids.add(node.id)
        self._fill_ids.discard(graph.output_id)  # seeded by copyto
        steps: List[Callable[[], None]] = []
        meta: List[Tuple[str, int]] = []
        for node in reversed(graph.nodes):
            if node.id not in self._diff or node.op in _LEAF_OPS:
                continue
            binder = _BACKWARD.get(node.op)
            if binder is None:
                raise CompileError(f"op '{node.op}' has no compiled backward kernel")
            step = binder(self, node)
            if step is not None:
                served = node.meta.get("_provider.bwd")
                label = node.op + ".bwd" + (f"@{served}" if served else "")
                steps.append(step)
                meta.append((label, self.values[node.id].nbytes))
        return {
            "steps": steps,
            "meta": meta,
            "fill": [self.grads[node_id] for node_id in self._fill_ids],
            "diff": frozenset(self._diff),
            "seeds": set(self._seed_ids),
        }

    def _sink(self, target_id: int, supports_write: bool = True) -> Tuple[bool, np.ndarray]:
        """``(write, buffer)`` for a kernel contributing a gradient to ``target_id``.

        ``write=True`` means the caller is the buffer's only contributor and
        may overwrite it (the buffer is then excluded from per-run zeroing);
        kernels whose scatter pattern needs a zeroed base pass
        ``supports_write=False``.
        """
        write = supports_write and self._contributions.get(target_id) == 1
        if write:
            self._fill_ids.discard(target_id)
        return write, self.grads[target_id]

    def _grad_target(self, node_id: int) -> Optional[np.ndarray]:
        """The gradient accumulator of ``node_id`` (``None`` when off-path)."""
        return self.grads.get(node_id)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Replay the forward pass; returns the (plan-owned) output array."""
        for param, node_id in self.params:
            if self.values[node_id] is not param.data:
                raise CompileError(
                    "parameter storage was reallocated (non-in-place update); recompile the plan"
                )
        np.copyto(self._input, x)
        if _PROFILER.enabled:
            self._replay_profiled(self._forward_steps, self._forward_meta)
        else:
            for step in self._forward_steps:
                step()
        return self.values[self.graph.output_id]

    def backward(self, output_grad: np.ndarray) -> np.ndarray:
        """Input gradient for the most recent :meth:`forward` call.

        Runs the input-only backward program: on a ``grad="both"`` plan this
        is the attack fast path, skipping every parameter-gradient kernel.
        """
        program = self._programs.get("input")
        if program is None:
            if self.grad_mode == "params":
                raise CompileError("backward() needs an input-gradient plan; use run_backward()")
            raise CompileError("this plan has no gradient path from output to input")
        self._run_program(program, {self.graph.output_id: output_grad})
        return self.grads[self.graph.input_id]

    def run_backward(self, seeds: Mapping[int, np.ndarray]) -> None:
        """Replay the backward pass from per-node gradient seeds.

        ``seeds`` maps node ids to gradient arrays: the output node's seed is
        copied in (zero when absent), every other seed is **added** to that
        node's freshly zeroed accumulator before the kernels run — the form
        composite losses need, where the fused-CE output seed and the
        in-plan loss scalars' seeds join one pass.  Non-output seed ids must
        have been registered via ``seed_ids`` at bind time (otherwise a
        single-contribution writer overwrites them).  On a ``grad="both"``
        plan this drives the fused input+param program.
        """
        program = self._programs.get("full") or self._programs.get("input")
        if program is None:
            raise CompileError("this plan has no gradient path to its leaves")
        self._run_program(program, seeds)

    def _run_program(self, program: dict, seeds: Mapping[int, np.ndarray]) -> None:
        for buffer in program["fill"]:
            buffer.fill(0)
        output_id = self.graph.output_id
        output_seed = seeds.get(output_id)
        if output_seed is not None:
            np.copyto(self.grads[output_id], output_seed)
        else:
            self.grads[output_id].fill(0)
        for node_id, seed in seeds.items():
            if node_id == output_id:
                continue
            if node_id not in program["seeds"]:
                raise CompileError(f"node {node_id} was not registered as a seed point")
            target = self.grads[node_id]
            np.add(target, seed, out=target)
        if _PROFILER.enabled:
            self._replay_profiled(program["steps"], program["meta"])
        else:
            for step in program["steps"]:
                step()

    def input_grad(self) -> np.ndarray:
        """The input-gradient buffer of the most recent backward replay."""
        grad = self.grads.get(self.graph.input_id)
        if grad is None:
            raise CompileError("this plan does not differentiate its input")
        return grad

    def set_aux(self, name: str, value: np.ndarray) -> None:
        """Copy ``value`` into the named aux buffer (fill-per-batch form)."""
        np.copyto(self.aux_values[name], value)

    def aux_grad(self, name: str) -> np.ndarray:
        """Accumulated gradient of a ``grad_aux`` input after a backward replay."""
        return self.grads[self.graph.aux[name]]

    def output_value(self, name: str) -> np.ndarray:
        """Forward value of the named graph output (hidden or loss node)."""
        return self.values[self.graph.outputs[name]]

    def param_grads(self) -> Dict[int, np.ndarray]:
        """``id(parameter) -> pooled gradient buffer`` after a backward replay."""
        return {id(param): self.grads[node_id] for param, node_id in self.params
                if node_id in self.grads}

    def ce_loss_and_seed(self, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Fused softmax-CE loss of the latest forward and its logit gradient.

        Evaluates mean CE over ``labels`` in scratch buffers and returns the
        closed-form ``(softmax(z) - onehot(y)) / N`` seed (a plan-owned
        scratch array) ready for :meth:`backward` / :meth:`run_backward` —
        no loss graph is ever built.
        """
        logits = self.values[self.graph.output_id]
        if logits.ndim != 2:
            raise CompileError("ce_loss_and_seed expects (N, classes) logits")
        if self._ce is None:
            n, k = logits.shape
            self._ce = {
                "max": self.pool.empty((n, 1), logits.dtype),
                "p": self.pool.empty((n, k), logits.dtype),
                "z": self.pool.empty((n, 1), logits.dtype),
                "logz": self.pool.empty((n, 1), logits.dtype),
                "picked": self.pool.empty((n,), logits.dtype),
                "arange": np.arange(n),
            }
        ce = self._ce
        started = _perf_counter() if _PROFILER.enabled else 0.0
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        max_b, p, z, logz, picked, arange = (
            ce["max"], ce["p"], ce["z"], ce["logz"], ce["picked"], ce["arange"],
        )
        np.max(logits, axis=1, keepdims=True, out=max_b)
        np.subtract(logits, max_b, out=p)
        picked[...] = p[arange, labels]
        np.exp(p, out=p)
        np.sum(p, axis=1, keepdims=True, out=z)
        np.log(z, out=logz)
        loss = float(np.mean(logz) - np.mean(picked))
        np.divide(p, z, out=p)
        p[arange, labels] -= 1.0
        p *= 1.0 / len(labels)
        if _PROFILER.enabled:
            profile = self._profile
            if profile is None:
                profile = self._profile = _PROFILER.profile_for(self)
            profile.record("softmax_ce.fused", _perf_counter() - started, p.nbytes)
        return loss, p

    def value_and_grad_ce(self, x: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Fused softmax cross-entropy loss and its input gradient."""
        self.forward(x)
        loss, seed = self.ce_loss_and_seed(labels)
        return loss, self.backward(seed)


# --------------------------------------------------------------------------- #
# forward binders: node -> (step callable | None, output array)
# --------------------------------------------------------------------------- #
def _is_live(plan: Plan, node_id: int) -> bool:
    """Whether ``node_id`` is a live-parameter leaf (re-read every replay)."""
    return plan.graph.node(node_id).op == "param"


def _bind_conv2d(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    weight = plan.values[node.inputs[1]]
    bias = plan.values[node.inputs[2]] if len(node.inputs) > 2 else None
    stride, padding = node.meta["stride"], node.meta["padding"]
    fuse_relu = node.meta.get("fuse_relu", False)
    n, c, h, w = x.shape
    oc = weight.shape[0]
    kernel = weight.shape[2]
    _, _, out_h, out_w = node.shape
    dtype = node.dtype

    if _is_live(plan, node.inputs[1]):
        # Live weights change under the optimizer every step: matmul against
        # a transposed *view* so each replay reads the current values (BLAS
        # handles the transposed operand natively, same math as the eager
        # ``cols @ w_mat.T``).
        w_t = weight.reshape(oc, -1).T
    else:
        w_t = np.ascontiguousarray(weight.reshape(oc, -1).T)

    if padding:
        padded = plan.pool.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype)
        interior = padded[:, :, padding:-padding, padding:-padding]
        source = padded
    else:
        interior = None
        source = x
    patches = _patch_view(source, kernel, stride, out_h, out_w).transpose(0, 2, 3, 1, 4, 5)
    cols = plan.pool.empty((n * out_h * out_w, c * kernel * kernel), dtype)
    node.meta["_cols"] = cols  # the weight-gradient matmul reads these
    cols6 = cols.reshape(n, out_h, out_w, c, kernel, kernel)
    out2d = plan.pool.empty((n * out_h * out_w, oc), dtype)
    # The NCHW output is a transpose view of the matmul result (same trick as
    # the eager kernel) — consumers read it through its strides, so the
    # materialization copy is never paid.
    out = out2d.reshape(n, out_h, out_w, oc).transpose(0, 3, 1, 2)
    if fuse_relu:
        # Mask recorded on the contiguous 2-D layout; the backward kernel
        # applies it to grad_mat (same layout) with fully contiguous ops.
        mask2d = plan.pool.empty(out2d.shape, bool)
        node.meta["_relu_mask2d"] = mask2d
    else:
        mask2d = None

    ctx = SimpleNamespace(
        x=x,
        patches=patches,
        interior=interior,
        cols=cols,
        cols6=cols6,
        w_t=w_t,
        out2d=out2d,
        bias=bias,
        fuse_relu=fuse_relu,
        mask2d=mask2d,
        n=n,
    )
    return plan._kernel(node, "conv2d", ctx), out


def _bind_affine(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    weight_t = np.ascontiguousarray(plan.values[node.inputs[1]])  # (in, out)
    bias = plan.values[node.inputs[2]]
    fuse_relu = node.meta.get("fuse_relu", False)
    out = plan.pool.empty(node.shape, node.dtype)
    ctx = SimpleNamespace(x=x, weight_t=weight_t, bias=bias, fuse_relu=fuse_relu, out=out)
    return plan._kernel(node, "affine", ctx), out


def _bind_matmul(plan: Plan, node: Node):
    a = plan.values[node.inputs[0]]
    b = plan.values[node.inputs[1]]
    if a.ndim != 2 or b.ndim != 2:
        raise CompileError("compiled matmul supports 2-D operands only")
    fuse_relu = node.meta.get("fuse_relu", False)
    out = plan.pool.empty(node.shape, node.dtype)
    ctx = SimpleNamespace(a=a, b=b, fuse_relu=fuse_relu, out=out)
    return plan._kernel(node, "matmul", ctx), out


def _bind_binary(ufunc):
    def bind(plan: Plan, node: Node):
        a = plan.values[node.inputs[0]]
        b = plan.values[node.inputs[1]]
        fuse_relu = node.meta.get("fuse_relu", False)
        out = plan.pool.empty(node.shape, node.dtype)

        def step() -> None:
            ufunc(a, b, out=out)
            if fuse_relu:
                np.maximum(out, 0.0, out=out)

        return step, out

    return bind


def _bind_unary(compute: Callable[[np.ndarray, np.ndarray], None]):
    def bind(plan: Plan, node: Node):
        x = plan.values[node.inputs[0]]
        out = plan.pool.empty(node.shape, node.dtype)
        return (lambda: compute(x, out)), out

    return bind


def _bind_clip(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    low, high = node.meta["low"], node.meta["high"]
    out = plan.pool.empty(node.shape, node.dtype)
    return (lambda: np.clip(x, low, high, out=out)), out


def _bind_pow(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    exponent = node.meta["exponent"]
    out = plan.pool.empty(node.shape, node.dtype)
    return (lambda: np.power(x, exponent, out=out)), out


def _bind_batch_norm(plan: Plan, node: Node):
    if node.meta.get("training"):
        return _bind_batch_norm_train(plan, node)
    x = plan.values[node.inputs[0]]
    gamma = plan.values[node.inputs[1]]
    beta = plan.values[node.inputs[2]]
    c = node.shape[1]
    dtype = node.dtype
    fuse_relu = node.meta.get("fuse_relu", False)
    out = plan.pool.empty(node.shape, dtype)
    live = _is_live(plan, node.inputs[1]) or _is_live(plan, node.inputs[2])

    if not live:
        scale, shift = bn_scale_shift(
            gamma, beta, node.meta["mean"], node.meta["var"], node.meta["eps"], dtype
        )
        scale_r = scale.reshape(1, c, 1, 1)
        shift_r = shift.reshape(1, c, 1, 1)
        node.meta["_scale"] = scale_r

        def step() -> None:
            np.multiply(x, scale_r, out=out)
            np.add(out, shift_r, out=out)
            if fuse_relu:
                np.maximum(out, 0.0, out=out)

        return step, out

    # Live gamma/beta (and live running stats, updated by interleaved
    # training forwards): re-derive the per-channel affine every replay, in
    # float64 like :func:`bn_scale_shift`, into persistent buffers.
    mean_ref, var_ref = node.meta["mean"], node.meta["var"]
    eps = node.meta["eps"]
    scale64 = plan.pool.empty((c,), np.float64)
    shift64 = plan.pool.empty((c,), np.float64)
    scale_r = plan.pool.empty((1, c, 1, 1), dtype)
    shift_r = plan.pool.empty((1, c, 1, 1), dtype)
    scale_cast = scale_r.reshape(c)
    shift_cast = shift_r.reshape(c)
    node.meta["_scale"] = scale_r

    def step() -> None:
        np.add(var_ref, eps, out=shift64)
        np.sqrt(shift64, out=shift64)
        np.divide(gamma, shift64, out=scale64)
        np.multiply(mean_ref, scale64, out=shift64)
        np.subtract(beta, shift64, out=shift64)
        scale_cast[...] = scale64
        shift_cast[...] = shift64
        np.multiply(x, scale_r, out=out)
        np.add(out, shift_r, out=out)
        if fuse_relu:
            np.maximum(out, 0.0, out=out)

    return step, out


def _bind_batch_norm_train(plan: Plan, node: Node):
    """Batch-stat batch norm with in-place running-statistic updates.

    Reproduces :func:`repro.nn.functional.batch_norm2d`'s training branch
    operation for operation: batch mean/var in the input dtype, running
    buffers (kept in their own dtype) updated with the eager expression's
    evaluation order, normalization through ``x_hat`` (stored for the
    backward kernel) and the unbiased-variance correction on the running
    update.
    """
    x = plan.values[node.inputs[0]]
    gamma = plan.values[node.inputs[1]]
    beta = plan.values[node.inputs[2]]
    n, c, h, w = node.shape
    dtype = node.dtype
    fuse_relu = node.meta.get("fuse_relu", False)
    momentum = node.meta["momentum"]
    eps = node.meta["eps"]
    running_mean = node.meta["running_mean"]
    running_var = node.meta["running_var"]
    count = n * h * w
    var_factor = count / max(count - 1, 1)

    mean_c = plan.pool.empty((c,), dtype)
    var_c = plan.pool.empty((c,), dtype)
    std_c = plan.pool.empty((c,), dtype)
    scratch_c = plan.pool.empty((c,), dtype)
    x_hat = plan.pool.empty(node.shape, dtype)
    out = plan.pool.empty(node.shape, dtype)
    mean_r = mean_c.reshape(1, c, 1, 1)
    std_r = std_c.reshape(1, c, 1, 1)
    gamma_r = gamma.reshape(1, c, 1, 1)
    beta_r = beta.reshape(1, c, 1, 1)
    node.meta["_x_hat"] = x_hat
    node.meta["_std"] = std_r
    node.meta["_gamma_r"] = gamma_r

    def step() -> None:
        np.mean(x, axis=(0, 2, 3), out=mean_c)
        np.var(x, axis=(0, 2, 3), out=var_c)
        np.multiply(running_mean, 1.0 - momentum, out=running_mean)
        np.multiply(mean_c, momentum, out=scratch_c)
        np.add(running_mean, scratch_c, out=running_mean)
        np.multiply(running_var, 1.0 - momentum, out=running_var)
        np.multiply(var_c, momentum, out=scratch_c)
        np.multiply(scratch_c, var_factor, out=scratch_c)
        np.add(running_var, scratch_c, out=running_var)
        np.add(var_c, eps, out=std_c)
        np.sqrt(std_c, out=std_c)
        np.subtract(x, mean_r, out=x_hat)
        np.divide(x_hat, std_r, out=x_hat)
        np.multiply(x_hat, gamma_r, out=out)
        np.add(out, beta_r, out=out)
        if fuse_relu:
            np.maximum(out, 0.0, out=out)

    return step, out


def _bind_max_pool(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    kernel, stride = node.meta["kernel"], node.meta["stride"]
    n, c, out_h, out_w = node.shape

    if kernel == 2 and stride == 2:
        # Specialized 2x2/stride-2 pool: a maximum tree over four strided
        # window views — no patch materialization, no argmax pass.  The
        # backward kernel re-derives the winner masks from the stored output
        # with argmax (first-index) tie-breaking.
        windows = [
            x[:, :, ki : ki + 2 * out_h : 2, kj : kj + 2 * out_w : 2]
            for ki in (0, 1)
            for kj in (0, 1)
        ]
        node.meta["_windows"] = windows
        scratch = plan.pool.empty(node.shape, node.dtype)
        out = plan.pool.empty(node.shape, node.dtype)

        def step() -> None:
            np.maximum(windows[0], windows[1], out=out)
            np.maximum(windows[2], windows[3], out=scratch)
            np.maximum(out, scratch, out=out)

        return step, out

    patches = _patch_view(x, kernel, stride, out_h, out_w)
    flat = plan.pool.empty((n, c, out_h, out_w, kernel * kernel), node.dtype)
    flat6 = flat.reshape(n, c, out_h, out_w, kernel, kernel)
    flat2 = flat.reshape(-1, kernel * kernel)
    argmax = np.empty((n, c, out_h, out_w), dtype=np.intp)
    plan.pool._register(argmax)
    argmax_flat = argmax.reshape(-1)
    rows = np.arange(n * c * out_h * out_w)
    plan.pool._register(rows)
    node.meta["_argmax"] = argmax
    node.meta["_rows"] = rows
    out = plan.pool.empty(node.shape, node.dtype)
    out_flat = out.reshape(-1)

    def step() -> None:
        flat6[...] = patches
        np.argmax(flat, axis=-1, out=argmax)
        # Gather the winners through the argmax (cheaper than a second
        # full reduction, and tie-breaking matches the eager kernel).
        out_flat[...] = flat2[rows, argmax_flat]

    return step, out


def _bind_avg_pool(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    kernel, stride = node.meta["kernel"], node.meta["stride"]
    n, c, out_h, out_w = node.shape
    patches = _patch_view(x, kernel, stride, out_h, out_w)
    out = plan.pool.empty(node.shape, node.dtype)
    return (lambda: np.mean(patches, axis=(-1, -2), out=out)), out


def _bind_sum(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    axis, keepdims = node.meta["axis"], node.meta["keepdims"]
    out = plan.pool.empty(node.shape, node.dtype)
    return (lambda: np.sum(x, axis=axis, keepdims=keepdims, out=out)), out


def _bind_reshape(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    view = x.reshape(node.meta["shape"])
    if np.shares_memory(view, x):
        return None, view
    # Non-contiguous source: materialize through a bound buffer instead.
    out = plan.pool.empty(node.shape, node.dtype)
    out_as_in = out.reshape(x.shape)
    return (lambda: np.copyto(out_as_in, x)), out


def _bind_transpose(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    return None, np.transpose(x, node.meta["axes"])


def _bind_pad2d(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    padding = node.meta["padding"]
    out = plan.pool.zeros(node.shape, node.dtype)
    interior = out[..., padding:-padding, padding:-padding]
    return (lambda: np.copyto(interior, x)), out


def _bind_detach(plan: Plan, node: Node):
    return None, plan.values[node.inputs[0]]


def _bind_ew(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    out = plan.pool.empty(node.shape, node.dtype)
    # Resolve the chain to concrete arrays/masks here (wiring), then hand the
    # provider a spec list; masks stay in the optimizer-pass step dicts too,
    # because ``_back_ew`` reads them from there.
    specs: List[dict] = []
    for step in node.meta["steps"]:
        kind = step["op"]
        spec = {"op": kind}
        if kind in _EW_BINARY_UFUNC:
            spec["const_value"] = plan.values[step["const"]]
        elif kind == "neg":
            pass
        elif kind == "relu":
            mask = plan.pool.empty(node.shape, bool)
            step["_mask"] = mask
            spec["_mask"] = mask
        elif kind == "clip":
            mask = plan.pool.empty(node.shape, bool)
            scratch_mask = plan.pool.empty(node.shape, bool)
            step["_mask"] = mask
            spec["_mask"] = mask
            spec["_scratch_mask"] = scratch_mask
            spec["low"] = step["low"]
            spec["high"] = step["high"]
        else:  # pragma: no cover - the pass only emits the kinds above
            raise CompileError(f"unknown elementwise step '{kind}'")
        specs.append(spec)

    ctx = SimpleNamespace(x=x, out=out, steps=specs)
    return plan._kernel(node, "ew", ctx), out


_EW_BINARY_UFUNC = {"add": np.add, "mul": np.multiply, "div": np.divide}


# --------------------------------------------------------------------------- #
# in-plan loss nodes (softmax-KL, MART terms, RBF Gram, centered HSIC trace)
#
# Each fused node replays the exact primitive sequence the eager loss
# composition executes — same ufuncs, same stabilizations, same evaluation
# order — through pooled ``out=`` buffers, so compiled loss values track the
# eager ones to the last accumulation-order bit and the whole loss runs with
# zero steady-state allocations and zero eager graph nodes.
# --------------------------------------------------------------------------- #
class _SoftmaxLogCore:
    """Pooled replay of ``F.log_softmax`` (optionally with ``exp`` probs).

    Mirrors the eager op chain: row max (detached), shifted logits, exp,
    row sum, log, shifted-minus-logsum; :meth:`grad_logits` applies the
    exact eager backward of that chain.
    """

    def __init__(self, pool: BufferPool, n: int, k: int, dtype, with_prob: bool) -> None:
        self.max = pool.empty((n, 1), dtype)
        self.shift = pool.empty((n, k), dtype)
        self.e = pool.empty((n, k), dtype)
        self.s = pool.empty((n, 1), dtype)
        self.logs = pool.empty((n, 1), dtype)
        self.log = pool.empty((n, k), dtype)
        self.prob = pool.empty((n, k), dtype) if with_prob else None

    def forward(self, x: np.ndarray) -> None:
        np.max(x, axis=1, keepdims=True, out=self.max)
        np.subtract(x, self.max, out=self.shift)
        np.exp(self.shift, out=self.e)
        np.sum(self.e, axis=1, keepdims=True, out=self.s)
        np.log(self.s, out=self.logs)
        np.subtract(self.shift, self.logs, out=self.log)
        if self.prob is not None:
            np.exp(self.log, out=self.prob)

    def grad_logits(
        self,
        grad_log: np.ndarray,
        scratch_nk: np.ndarray,
        scratch_n1: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """``out = grad_log + e * (-(sum(grad_log, axis=1)) / s)`` (max detached)."""
        np.sum(grad_log, axis=1, keepdims=True, out=scratch_n1)
        np.negative(scratch_n1, out=scratch_n1)
        np.divide(scratch_n1, self.s, out=scratch_n1)
        np.multiply(self.e, scratch_n1, out=scratch_nk)
        np.add(grad_log, scratch_nk, out=out)

    def grad_probs_div(
        self,
        grad_probs: np.ndarray,
        scratch_nk: np.ndarray,
        scratch2_nk: np.ndarray,
        scratch_n1: np.ndarray,
        scratch2_n1: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Logits grad through the ``probs = e / s`` form (``F.softmax``).

        Replays the eager div/sum/exp backward: ``grad_e = grad/s``,
        ``grad_s = sum(-grad * e / s^2)``, ``grad_e += grad_s`` broadcast,
        ``out = grad_e * e``.
        """
        np.divide(grad_probs, self.s, out=scratch_nk)
        np.multiply(grad_probs, self.e, out=scratch2_nk)
        np.negative(scratch2_nk, out=scratch2_nk)
        np.multiply(self.s, self.s, out=scratch_n1)
        np.divide(scratch2_nk, scratch_n1, out=scratch2_nk)
        np.sum(scratch2_nk, axis=1, keepdims=True, out=scratch2_n1)
        np.add(scratch_nk, scratch2_n1, out=scratch_nk)
        np.multiply(scratch_nk, self.e, out=out)


def _bind_softmax_kl(plan: Plan, node: Node):
    """Mean ``KL(softmax(p) || softmax(q))`` of two logits inputs.

    The two orientations are the two input slots: gradients are emitted for
    whichever of ``p`` and ``q`` lies on the differentiation path.
    """
    p_val = plan.values[node.inputs[0]]
    q_val = plan.values[node.inputs[1]]
    n, k = p_val.shape
    dtype = node.dtype
    p_core = _SoftmaxLogCore(plan.pool, n, k, dtype, with_prob=True)
    q_core = _SoftmaxLogCore(plan.pool, n, k, dtype, with_prob=False)
    diff = plan.pool.empty((n, k), dtype)
    prod = plan.pool.empty((n, k), dtype)
    per = plan.pool.empty((n,), dtype)
    out = plan.pool.empty((), dtype)
    node.meta["_kl"] = (p_core, q_core, diff, per)

    def step() -> None:
        p_core.forward(p_val)
        q_core.forward(q_val)
        np.subtract(p_core.log, q_core.log, out=diff)
        np.multiply(p_core.prob, diff, out=prod)
        np.sum(prod, axis=1, out=per)
        np.sum(per, out=out)
        np.multiply(out, 1.0 / n, out=out)

    return step, out


def _back_softmax_kl(plan: Plan, node: Node):
    p_id, q_id = node.inputs
    p_core, q_core, diff, per = node.meta["_kl"]
    n, k = diff.shape
    dtype = diff.dtype
    g = plan.grads[node.id]
    need_p = p_id in plan._diff
    need_q = q_id in plan._diff
    gscal = plan.pool.empty((), dtype)
    s1 = plan.pool.empty((n, k), dtype)
    s2 = plan.pool.empty((n, k), dtype)
    s3 = plan.pool.empty((n, k), dtype)
    v = plan.pool.empty((n, 1), dtype)
    steps: List[Callable[[], None]] = []
    if need_q:
        write_q, gq = plan._sink(q_id)
        target_q = gq if write_q else plan.pool.empty((n, k), dtype)

        def q_step() -> None:
            np.multiply(p_core.prob, gscal, out=s2)  # grad wrt (p_log - q_log)
            np.negative(s2, out=s2)  # grad wrt q_log
            q_core.grad_logits(s2, s3, v, target_q)
            if not write_q:
                np.add(gq, target_q, out=gq)

        steps.append(q_step)
    if need_p:
        write_p, gp = plan._sink(p_id)
        target_p = gp if write_p else plan.pool.empty((n, k), dtype)

        def p_step() -> None:
            np.multiply(p_core.prob, gscal, out=s2)  # grad wrt the log diff
            np.multiply(diff, gscal, out=s1)  # grad wrt p_prob
            np.multiply(s1, p_core.prob, out=s1)  # through exp(p_log)
            np.add(s2, s1, out=s1)  # total grad wrt p_log
            p_core.grad_logits(s1, s3, v, target_p)
            if not write_p:
                np.add(gp, target_p, out=gp)

        steps.append(p_step)

    def run() -> None:
        np.multiply(g, 1.0 / n, out=gscal)  # mean reduction seed, per example
        for step in steps:
            step()

    return run


def _bind_mart_boosted_ce(plan: Plan, node: Node):
    """MART's boosted CE: ``mean(-log(p_y + eps) - log(1 - max_wrong + eps))``.

    Inputs: adversarial logits and the one-hot ``true_mask`` aux.  The
    margin weighting (the ``max_wrong`` term) reproduces the eager
    ``(probs + mask * -1e9).max(axis=1)`` composition, tie counts included.
    """
    adv = plan.values[node.inputs[0]]
    mask = plan.values[node.inputs[1]]
    n, k = adv.shape
    dtype = node.dtype
    pool = plan.pool
    buffers = {
        "maxb": pool.empty((n, 1), dtype),
        "shift": pool.empty((n, k), dtype),
        "e": pool.empty((n, k), dtype),
        "s": pool.empty((n, 1), dtype),
        "probs": pool.empty((n, k), dtype),
        "pm": pool.empty((n, k), dtype),
        "adv_true": pool.empty((n,), dtype),
        "wrong": pool.empty((n, k), dtype),
        "wm": pool.empty((n,), dtype),
        "t1": pool.empty((n,), dtype),
        "l1": pool.empty((n,), dtype),
        "t2": pool.empty((n,), dtype),
        "l2": pool.empty((n,), dtype),
        "vec": pool.empty((n,), dtype),
    }
    out = pool.empty((), dtype)
    node.meta["_mart_bce"] = buffers
    b = buffers

    def step() -> None:
        np.max(adv, axis=1, keepdims=True, out=b["maxb"])
        np.subtract(adv, b["maxb"], out=b["shift"])
        np.exp(b["shift"], out=b["e"])
        np.sum(b["e"], axis=1, keepdims=True, out=b["s"])
        np.divide(b["e"], b["s"], out=b["probs"])
        np.multiply(b["probs"], mask, out=b["pm"])
        np.sum(b["pm"], axis=1, out=b["adv_true"])
        np.multiply(mask, -1e9, out=b["wrong"])
        np.add(b["probs"], b["wrong"], out=b["wrong"])
        np.max(b["wrong"], axis=1, out=b["wm"])
        np.add(b["adv_true"], 1e-12, out=b["t1"])
        np.log(b["t1"], out=b["l1"])
        np.negative(b["wm"], out=b["t2"])
        np.add(b["t2"], 1.0, out=b["t2"])
        np.add(b["t2"], 1e-12, out=b["t2"])
        np.log(b["t2"], out=b["l2"])
        np.negative(b["l1"], out=b["vec"])
        np.subtract(b["vec"], b["l2"], out=b["vec"])
        np.sum(b["vec"], out=out)
        np.multiply(out, 1.0 / n, out=out)

    return step, out


def _back_mart_boosted_ce(plan: Plan, node: Node):
    adv_id = node.inputs[0]
    if adv_id not in plan._diff:
        return None
    mask = plan.values[node.inputs[1]]
    b = node.meta["_mart_bce"]
    n, k = b["shift"].shape
    dtype = b["shift"].dtype
    g = plan.grads[node.id]
    pool = plan.pool
    gscal = pool.empty((), dtype)
    gneg = pool.empty((), dtype)
    ga = pool.empty((n, 1), dtype)
    gwm = pool.empty((n, 1), dtype)
    wmk = pool.empty((n, 1), dtype)
    eqmask = pool.empty((n, k), bool)
    counts = pool.empty((n, 1), dtype)
    gw = pool.empty((n, k), dtype)
    sc = pool.empty((n, k), dtype)
    sc2 = pool.empty((n, k), dtype)
    v1 = pool.empty((n, 1), dtype)
    v2 = pool.empty((n, 1), dtype)
    t1_col = b["t1"].reshape(n, 1)
    t2_col = b["t2"].reshape(n, 1)
    write, gx = plan._sink(adv_id)
    target = gx if write else pool.empty((n, k), dtype)

    def run() -> None:
        np.multiply(g, 1.0 / n, out=gscal)
        np.negative(gscal, out=gneg)  # grad of both -log terms
        np.divide(gneg, t1_col, out=ga)  # grad wrt adv_true
        np.divide(gneg, t2_col, out=gwm)
        np.negative(gwm, out=gwm)  # grad wrt max_wrong
        # eager max backward: first-equal mask, tie counts clipped at 1
        np.max(b["wrong"], axis=1, keepdims=True, out=wmk)
        np.equal(b["wrong"], wmk, out=eqmask)
        np.sum(eqmask, axis=1, keepdims=True, out=counts)
        np.maximum(counts, 1.0, out=counts)
        np.multiply(eqmask, gwm, out=gw)
        np.divide(gw, counts, out=gw)
        # grad wrt probs: the margin branch plus the true-class branch
        np.multiply(mask, ga, out=sc)
        np.add(gw, sc, out=gw)
        # softmax (e / s) backward into the logits
        np.divide(gw, b["s"], out=sc)
        np.multiply(gw, b["e"], out=sc2)
        np.negative(sc2, out=sc2)
        np.multiply(b["s"], b["s"], out=v1)
        np.divide(sc2, v1, out=sc2)
        np.sum(sc2, axis=1, keepdims=True, out=v2)
        np.add(sc, v2, out=sc)
        np.multiply(sc, b["e"], out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _bind_mart_weighted_kl(plan: Plan, node: Node):
    """MART's misclassification-weighted KL:
    ``mean(KL_i(clean || adv) * (1 - p_clean[y]))``.

    The clean softmax probabilities reuse the KL core's exp/sum buffers
    through the eager ``e / s`` division, exactly like ``F.softmax``.
    """
    clean = plan.values[node.inputs[0]]
    adv = plan.values[node.inputs[1]]
    mask = plan.values[node.inputs[2]]
    n, k = clean.shape
    dtype = node.dtype
    pool = plan.pool
    p_core = _SoftmaxLogCore(pool, n, k, dtype, with_prob=True)
    q_core = _SoftmaxLogCore(pool, n, k, dtype, with_prob=False)
    buffers = {
        "diff": pool.empty((n, k), dtype),
        "prod": pool.empty((n, k), dtype),
        "per": pool.empty((n,), dtype),
        "cprobs": pool.empty((n, k), dtype),
        "pm": pool.empty((n, k), dtype),
        "ct": pool.empty((n,), dtype),
        "w": pool.empty((n,), dtype),
        "weighted": pool.empty((n,), dtype),
    }
    out = pool.empty((), dtype)
    node.meta["_mart_wkl"] = (p_core, q_core, buffers)
    b = buffers

    def step() -> None:
        p_core.forward(clean)
        q_core.forward(adv)
        np.subtract(p_core.log, q_core.log, out=b["diff"])
        np.multiply(p_core.prob, b["diff"], out=b["prod"])
        np.sum(b["prod"], axis=1, out=b["per"])
        np.divide(p_core.e, p_core.s, out=b["cprobs"])
        np.multiply(b["cprobs"], mask, out=b["pm"])
        np.sum(b["pm"], axis=1, out=b["ct"])
        np.negative(b["ct"], out=b["w"])
        np.add(b["w"], 1.0, out=b["w"])
        np.multiply(b["per"], b["w"], out=b["weighted"])
        np.sum(b["weighted"], out=out)
        np.multiply(out, 1.0 / n, out=out)

    return step, out


def _back_mart_weighted_kl(plan: Plan, node: Node):
    clean_id, adv_id = node.inputs[0], node.inputs[1]
    mask = plan.values[node.inputs[2]]
    p_core, q_core, b = node.meta["_mart_wkl"]
    n, k = b["diff"].shape
    dtype = b["diff"].dtype
    g = plan.grads[node.id]
    need_clean = clean_id in plan._diff
    need_adv = adv_id in plan._diff
    pool = plan.pool
    gscal = pool.empty((), dtype)
    gkl = pool.empty((n, 1), dtype)
    gw = pool.empty((n, 1), dtype)
    s1 = pool.empty((n, k), dtype)
    s2 = pool.empty((n, k), dtype)
    s3 = pool.empty((n, k), dtype)
    s4 = pool.empty((n, k), dtype)
    v1 = pool.empty((n, 1), dtype)
    v2 = pool.empty((n, 1), dtype)
    w_col = b["w"].reshape(n, 1)
    per_col = b["per"].reshape(n, 1)
    steps: List[Callable[[], None]] = []
    if need_adv:
        write_a, ga = plan._sink(adv_id)
        target_a = ga if write_a else pool.empty((n, k), dtype)

        def adv_step() -> None:
            np.multiply(p_core.prob, gkl, out=s2)  # grad wrt the log diff
            np.negative(s2, out=s2)  # grad wrt q_log
            q_core.grad_logits(s2, s3, v1, target_a)
            if not write_a:
                np.add(ga, target_a, out=ga)

        steps.append(adv_step)
    if need_clean:
        write_c, gc = plan._sink(clean_id)
        target_c = gc if write_c else pool.empty((n, k), dtype)

        def clean_step() -> None:
            # weight branch: grad wrt clean_true -> softmax probs -> logits
            np.multiply(per_col, gscal, out=gw)  # grad wrt w
            np.negative(gw, out=gw)  # grad wrt clean_true
            np.multiply(mask, gw, out=s1)  # grad wrt clean probs
            p_core.grad_probs_div(s1, s2, s3, v1, v2, target_c)
            # KL branch: p-side grad through p_log
            np.multiply(p_core.prob, gkl, out=s2)  # grad wrt the log diff
            np.multiply(b["diff"], gkl, out=s1)  # grad wrt p_prob
            np.multiply(s1, p_core.prob, out=s1)  # through exp(p_log)
            np.add(s2, s1, out=s1)  # total grad wrt p_log
            p_core.grad_logits(s1, s3, v1, s4)
            np.add(target_c, s4, out=target_c)
            if not write_c:
                np.add(gc, target_c, out=gc)

        steps.append(clean_step)

    def run() -> None:
        np.multiply(g, 1.0 / n, out=gscal)
        np.multiply(w_col, gscal, out=gkl)  # per-example KL grad
        for step in steps:
            step()

    return run


def _bind_rbf_gram(plan: Plan, node: Node):
    """Gaussian (RBF) Gram matrix of a flattened activation batch.

    The arithmetic lives once, in :class:`repro.compile.kernels.RBFGram`
    (the bit-exact replay of ``repro.ib.hsic.gaussian_kernel``); the binder
    keeps the pre-clamp mask and the bandwidth scale for the backward.
    ``meta["sigma"]`` of ``None`` re-derives the eager median bandwidth per
    replay through the pooled ``MedianBandwidth`` selection kernel
    (data-dependent but allocation-free and bitwise-equal to the eager
    heuristic).
    """
    from .kernels import RBFGram

    x = plan.values[node.inputs[0]]
    n, d = x.shape
    dtype = node.dtype
    rbf = RBFGram(plan.pool, n, d, dtype, node.meta.get("sigma"), keep_mask=True)
    out = plan.pool.empty((n, n), dtype)
    node.meta["_rbf"] = rbf
    ctx = SimpleNamespace(rbf=rbf, x=x, out=out, n=n)
    return plan._kernel(node, "rbf_gram", ctx), out


def _back_rbf_gram(plan: Plan, node: Node):
    x_id = node.inputs[0]
    if x_id not in plan._diff:
        return None
    x = plan.values[x_id]
    n, d = x.shape
    dtype = x.dtype
    rbf = node.meta["_rbf"]
    mask = rbf.mask
    K = plan.values[node.id]
    g = plan.grads[node.id]
    pool = plan.pool
    sA = pool.empty((n, n), dtype)
    sB = pool.empty((n, n), dtype)
    v1 = pool.empty((n, 1), dtype)
    v2 = pool.empty((1, n), dtype)
    gxt = pool.empty((n, d), dtype)
    write, gx = plan._sink(x_id)
    target = gx if write else pool.empty((n, d), dtype)

    def run() -> None:
        np.multiply(g, K, out=sA)  # through exp
        np.multiply(sA, rbf.c, out=sA)  # through the bandwidth scale
        np.multiply(sA, mask, out=sA)  # through the >= 0 clamp
        # Gram branch: grad_gram = -(2 * grad_dist); both matmul operands
        # read the same x, so x collects grad_gram @ x and grad_gram.T @ x.
        np.multiply(sA, 2.0, out=sB)
        np.negative(sB, out=sB)
        np.matmul(sB, x, out=target)
        np.matmul(sB.T, x, out=gxt)
        np.add(target, gxt, out=target)
        # squared-norm branch: row + column sums, then 2 * grad_sq * x
        # (the eager x*x mul accumulates the same product twice).
        np.sum(sA, axis=1, keepdims=True, out=v1)
        np.sum(sA, axis=0, keepdims=True, out=v2)
        np.add(v1, v2.T, out=v1)
        np.multiply(x, v1, out=gxt)
        np.add(target, gxt, out=target)
        np.add(target, gxt, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _bind_rng_mask(plan: Plan, node: Node):
    """Counter-based dropout: multiply by a pooled, replayable mask.

    The mask is a pure function of the owning module's live
    ``[seed, layer_id, step]`` state buffer (``meta["state"]`` aliases it,
    so in-place step advancement reaches the plan) and is refilled only
    when that triple moves — repeated forwards within one optimizer step
    (the TRADES anchor, the MI side forward) reuse one mask, exactly like
    the eager path.  The mask arithmetic lives once, in
    :class:`repro.compile.kernels.DropoutMask`, shared with eager
    ``F.dropout``, so eager and compiled masks are bitwise identical.
    """
    from .kernels import DropoutMask

    x = plan.values[node.inputs[0]]
    dm = DropoutMask(plan.pool, node.shape, node.dtype, node.meta["p"], node.meta["state"])
    out = plan.pool.empty(node.shape, node.dtype)
    node.meta["_rng"] = dm
    ctx = SimpleNamespace(rng=dm, x=x, out=out)
    return plan._kernel(node, "rng_mask", ctx), out


def _back_rng_mask(plan: Plan, node: Node):
    x_id = node.inputs[0]
    if x_id not in plan._diff:
        return None
    dm = node.meta["_rng"]
    mask = dm.mask
    g = plan.grads[node.id]
    write, gx = plan._sink(x_id)
    target = gx if write else plan.pool.empty(node.shape, node.dtype)

    def run() -> None:
        np.multiply(g, mask, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _bind_hsic_trace(plan: Plan, node: Node):
    """Biased HSIC estimate via the one-sided-centered trace identity.

    ``sum(center(K_x) * K_y) / (m - 1)^2`` — only the first kernel is ever
    centered, exactly like :func:`repro.ib.hsic.hsic`; the arithmetic lives
    once, in :class:`repro.compile.kernels.CenteredTrace`.  Used for the
    cross terms (against the per-batch input/label Gram aux) and, with both
    inputs the same node, for the self-HSIC normalizer.
    """
    from .kernels import CenteredTrace

    kx = plan.values[node.inputs[0]]
    ky = plan.values[node.inputs[1]]
    m = kx.shape[0]
    dtype = node.dtype
    trace = CenteredTrace(plan.pool, m, dtype)
    out = plan.pool.empty((), dtype)
    node.meta["_hsic"] = trace
    ctx = SimpleNamespace(trace=trace, kx=kx, ky=ky, out=out, m=m)
    return plan._kernel(node, "hsic_trace", ctx), out


def _back_hsic_trace(plan: Plan, node: Node):
    kx_id, ky_id = node.inputs
    kx = plan.values[kx_id]
    ky = plan.values[ky_id]
    trace = node.meta["_hsic"]
    cent, scale = trace.cent, trace.scale
    m = kx.shape[0]
    dtype = cent.dtype
    g = plan.grads[node.id]
    pool = plan.pool
    gs = pool.empty((), dtype)
    sc = pool.empty((m, m), dtype)
    # The grad centering reuses the shared kernel (out aliases its input);
    # its scratch buffers are separate from the forward's.
    from .kernels import CenteredTrace

    grad_trace = CenteredTrace(pool, m, dtype, with_trace=False)

    def center_in_place(buffer: np.ndarray) -> None:
        grad_trace.center(buffer, buffer)

    if kx_id == ky_id:
        if kx_id not in plan._diff:
            return None
        write, gk = plan._sink(kx_id)
        target = gk if write else pool.empty((m, m), dtype)

        def run_same() -> None:
            np.multiply(g, scale, out=gs)
            np.multiply(cent, gs, out=target)  # direct (K_y) factor
            np.multiply(kx, gs, out=sc)  # centering branch
            center_in_place(sc)
            np.add(target, sc, out=target)
            if not write:
                np.add(gk, target, out=gk)

        return run_same

    steps: List[Callable[[], None]] = []
    if ky_id in plan._diff:
        write_y, gy = plan._sink(ky_id)

        def y_step() -> None:
            if write_y:
                np.multiply(cent, gs, out=gy)
            else:
                np.multiply(cent, gs, out=sc)
                np.add(gy, sc, out=gy)

        steps.append(y_step)
    if kx_id in plan._diff:
        write_x, gxk = plan._sink(kx_id)

        def x_step() -> None:
            np.multiply(ky, gs, out=sc)
            center_in_place(sc)
            if write_x:
                np.copyto(gxk, sc)
            else:
                np.add(gxk, sc, out=gxk)

        steps.append(x_step)
    if not steps:
        return None

    def run() -> None:
        np.multiply(g, scale, out=gs)
        for step in steps:
            step()

    return run


_FORWARD = {
    "conv2d": _bind_conv2d,
    "affine": _bind_affine,
    "matmul": _bind_matmul,
    "add": _bind_binary(np.add),
    "mul": _bind_binary(np.multiply),
    "div": _bind_binary(np.divide),
    "maximum": _bind_binary(np.maximum),
    "neg": _bind_unary(lambda x, out: np.negative(x, out=out)),
    "relu": _bind_unary(lambda x, out: np.maximum(x, 0.0, out=out)),
    "exp": _bind_unary(lambda x, out: np.exp(x, out=out)),
    "log": _bind_unary(lambda x, out: np.log(x, out=out)),
    "sqrt": _bind_unary(lambda x, out: np.sqrt(x, out=out)),
    "abs": _bind_unary(lambda x, out: np.abs(x, out=out)),
    "tanh": _bind_unary(lambda x, out: np.tanh(x, out=out)),
    "sigmoid": _bind_unary(
        lambda x, out: (
            np.negative(x, out=out),
            np.exp(out, out=out),
            np.add(out, 1.0, out=out),
            np.divide(1.0, out, out=out),
        )
    ),
    "clip": _bind_clip,
    "pow": _bind_pow,
    "batch_norm2d": _bind_batch_norm,
    "max_pool2d": _bind_max_pool,
    "avg_pool2d": _bind_avg_pool,
    "sum": _bind_sum,
    "reshape": _bind_reshape,
    "transpose": _bind_transpose,
    "pad2d": _bind_pad2d,
    "detach": _bind_detach,
    "ew": _bind_ew,
    "softmax_kl": _bind_softmax_kl,
    "mart_boosted_ce": _bind_mart_boosted_ce,
    "mart_weighted_kl": _bind_mart_weighted_kl,
    "rbf_gram": _bind_rbf_gram,
    "hsic_trace": _bind_hsic_trace,
    "rng_mask": _bind_rng_mask,
}


# --------------------------------------------------------------------------- #
# backward binders (input-gradient only; parameters are plan constants)
# --------------------------------------------------------------------------- #
def _relu_mask_step(plan: Plan, node: Node) -> Optional[Callable[[], None]]:
    """In-place ``g *= (out > 0)`` for producers with a fused ReLU."""
    if not node.meta.get("fuse_relu"):
        return None
    out = plan.values[node.id]
    g = plan.grads[node.id]
    mask = plan.pool.empty(node.shape, bool)

    def run() -> None:
        np.greater(out, 0.0, out=mask)
        np.multiply(g, mask, out=g)

    return run


def _accumulate_into(plan: Plan, target_id: int, source: np.ndarray):
    """A step sinking ``source`` (shaped like the node output) into a target grad.

    Handles broadcast inverses: when the target is smaller than the node
    output (a broadcast operand), the source is summed down into a bound
    scratch buffer first.  Single-contribution targets are overwritten
    instead of accumulated (see :meth:`Plan._sink`).
    """
    write, target = plan._sink(target_id)
    if target.shape == source.shape:
        if write:
            return lambda: np.copyto(target, source)
        return lambda: np.add(target, source, out=target)
    axes, kept = _reduction_spec(source.shape, target.shape)
    reduced = plan.pool.empty(kept, target.dtype)
    reduced_view = reduced.reshape(target.shape)

    def run() -> None:
        np.sum(source, axis=tuple(axes), keepdims=True, out=reduced)
        if write:
            np.copyto(target, reduced_view)
        else:
            np.add(target, reduced_view, out=target)

    return run


def _back_conv2d(plan: Plan, node: Node):
    x_id = node.inputs[0]
    w_id = node.inputs[1]
    b_id = node.inputs[2] if len(node.inputs) > 2 else None
    need_x = x_id in plan._diff
    need_w = w_id in plan._diff
    need_b = b_id is not None and b_id in plan._diff
    if not (need_x or need_w or need_b):
        # Unreachable for well-formed graphs (a conv is always on some
        # gradient path), kept as a safe default.
        return _relu_mask_step(plan, node)
    stride, padding = node.meta["stride"], node.meta["padding"]
    _, oc, out_h, out_w = node.shape
    weight = plan.values[w_id]
    kernel = weight.shape[2]
    dtype = node.dtype
    g = plan.grads[node.id]
    mask2d = node.meta.get("_relu_mask2d")
    cols = node.meta["_cols"]

    n = node.shape[0]
    grad_mat = plan.pool.empty((n * out_h * out_w, oc), dtype)
    gm_nhwc = grad_mat.reshape(n, out_h, out_w, oc)
    g_nhwc = g.transpose(0, 2, 3, 1)

    steps: List[Callable[[], None]] = []
    if need_w:
        # grad_w = grad_mat.T @ cols — the exact matmul the eager kernel
        # runs, reading the im2col buffer the forward replay just filled.
        write_w, gw = plan._sink(w_id)
        gw2d = gw.reshape(oc, -1)
        grad_mat_t = grad_mat.T
        if write_w:
            steps.append(lambda: np.matmul(grad_mat_t, cols, out=gw2d))
        else:
            scratch_w = plan.pool.empty(gw2d.shape, dtype)
            steps.append(
                lambda: (np.matmul(grad_mat_t, cols, out=scratch_w), np.add(gw2d, scratch_w, out=gw2d))
            )
    if need_b:
        write_b, gb = plan._sink(b_id)
        if write_b:
            steps.append(lambda: np.sum(grad_mat, axis=0, out=gb))
        else:
            scratch_b = plan.pool.empty(gb.shape, dtype)
            steps.append(
                lambda: (np.sum(grad_mat, axis=0, out=scratch_b), np.add(gb, scratch_b, out=gb))
            )
    if need_x:
        x_node = plan.graph.node(x_id)
        n, c, h, w = x_node.shape
        write, gx = plan._sink(x_id)
        grad_cols = plan.pool.empty((n * out_h * out_w, kernel * kernel * c), dtype)
        live_w = _is_live(plan, w_id)

        # The col2im scatter is k*k strided slice-adds; pick the layout whose
        # innermost contiguous run is longest.  Wide feature maps with few
        # channels (stem convolutions) scatter fastest over NCHW rows; deep
        # layers (channels >= spatial width) over NHWC channel vectors.
        nhwc = c >= out_w
        if nhwc:
            if live_w:
                # Refresh a persistent buffer from the live weights each
                # replay (a strided copy — no allocation).
                w_mat = plan.pool.empty((oc, kernel * kernel * c), dtype)
                w_mat_src = weight.transpose(0, 2, 3, 1)
                w_mat_view = w_mat.reshape(oc, kernel, kernel, c)
                refresh = lambda: np.copyto(w_mat_view, w_mat_src)
            else:
                w_mat = np.ascontiguousarray(weight.transpose(0, 2, 3, 1).reshape(oc, -1))
                refresh = None
            gc = grad_cols.reshape(n, out_h, out_w, kernel, kernel, c)
            gpad = plan.pool.empty((n, h + 2 * padding, w + 2 * padding, c), dtype)
            interior = gpad[:, padding : padding + h, padding : padding + w, :].transpose(0, 3, 1, 2)

            def slice_of(target, ki: int, kj: int):
                return target[:, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride, :]

            def col_of(ki: int, kj: int):
                return gc[:, :, :, ki, kj, :]

        else:
            # weight.reshape on the contiguous parameter array is a view, so
            # live weights need no refresh here.
            w_mat = weight.reshape(oc, -1)
            refresh = None
            gc = grad_cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
            gpad = plan.pool.empty((n, c, h + 2 * padding, w + 2 * padding), dtype)
            interior = gpad[:, :, padding : padding + h, padding : padding + w]

            def slice_of(target, ki: int, kj: int):
                return target[:, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride]

            def col_of(ki: int, kj: int):
                return gc[:, :, :, :, ki, kj]

        # Precompute the col2im (scatter target view, column view) pairs in
        # the serial loop order; every view has batch as its leading axis in
        # both layouts, so providers may shard them per example.
        pairs = [
            (slice_of(gpad, ki, kj), col_of(ki, kj))
            for ki in range(kernel)
            for kj in range(kernel)
        ]
        ctx = SimpleNamespace(
            refresh=refresh,
            grad_mat=grad_mat,
            w_mat=w_mat,
            grad_cols=grad_cols,
            gpad=gpad,
            pairs=pairs,
            interior=interior,
            gx=gx,
            write=write,
            n=n,
        )
        steps.append(plan._kernel(node, "conv2d.bwd.input", ctx, suffix=".bwd"))

    def run() -> None:
        gm_nhwc[...] = g_nhwc
        if mask2d is not None:
            np.multiply(grad_mat, mask2d, out=grad_mat)
        for step in steps:
            step()

    return run


def _back_affine(plan: Plan, node: Node):
    x_id = node.inputs[0]
    if x_id not in plan._diff:
        return _relu_mask_step(plan, node)
    weight = np.ascontiguousarray(plan.values[node.inputs[1]].T)  # (out, in)
    g = plan.grads[node.id]
    relu_step = _relu_mask_step(plan, node)
    write, gx = plan._sink(x_id)
    target = gx if write else plan.pool.empty(gx.shape, gx.dtype)

    def run() -> None:
        if relu_step is not None:
            relu_step()
        np.matmul(g, weight, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _back_matmul(plan: Plan, node: Node):
    a_id, b_id = node.inputs
    a, b = plan.values[a_id], plan.values[b_id]
    g = plan.grads[node.id]
    relu_step = _relu_mask_step(plan, node)
    steps: List[Callable[[], None]] = []
    if a_id in plan._diff:
        write_a, ga = plan._sink(a_id)
        b_t = b.T  # static view
        target_a = ga if write_a else plan.pool.empty(ga.shape, ga.dtype)
        if write_a:
            steps.append(lambda: np.matmul(g, b_t, out=target_a))
        else:
            steps.append(lambda: (np.matmul(g, b_t, out=target_a), np.add(ga, target_a, out=ga)))
    if b_id in plan._diff:
        write_b, gb = plan._sink(b_id)
        a_t = a.T
        target_b = gb if write_b else plan.pool.empty(gb.shape, gb.dtype)
        if write_b:
            steps.append(lambda: np.matmul(a_t, g, out=target_b))
        else:
            steps.append(lambda: (np.matmul(a_t, g, out=target_b), np.add(gb, target_b, out=gb)))

    def run() -> None:
        if relu_step is not None:
            relu_step()
        for step in steps:
            step()

    return run


def _back_add(plan: Plan, node: Node):
    g = plan.grads[node.id]
    relu_step = _relu_mask_step(plan, node)
    steps = [
        _accumulate_into(plan, input_id, g)
        for input_id in node.inputs
        if input_id in plan._diff
    ]

    def run() -> None:
        if relu_step is not None:
            relu_step()
        for step in steps:
            step()

    return run


def _back_mul(plan: Plan, node: Node):
    a_id, b_id = node.inputs
    g = plan.grads[node.id]
    scratch = plan.pool.empty(node.shape, node.dtype)
    steps: List[Callable[[], None]] = []
    for this_id, other_id in ((a_id, b_id), (b_id, a_id)):
        if this_id not in plan._diff:
            continue
        other = plan.values[other_id]
        accumulate = _accumulate_into(plan, this_id, scratch)
        steps.append(
            lambda other=other, accumulate=accumulate: (
                np.multiply(g, other, out=scratch),
                accumulate(),
            )
        )
    return lambda: [step() for step in steps]


def _back_div(plan: Plan, node: Node):
    a_id, b_id = node.inputs
    g = plan.grads[node.id]
    out = plan.values[node.id]
    b = plan.values[b_id]
    scratch = plan.pool.empty(node.shape, node.dtype)
    steps: List[Callable[[], None]] = []
    if a_id in plan._diff:
        accumulate_a = _accumulate_into(plan, a_id, scratch)
        steps.append(
            lambda accumulate=accumulate_a: (np.divide(g, b, out=scratch), accumulate())
        )
    if b_id in plan._diff:
        accumulate_b = _accumulate_into(plan, b_id, scratch)

        def db() -> None:
            # d(a/b)/db = -a / b^2 = -(a/b) / b = -out / b
            np.multiply(g, out, out=scratch)
            np.divide(scratch, b, out=scratch)
            np.negative(scratch, out=scratch)
            accumulate_b()

        steps.append(db)
    return lambda: [step() for step in steps]


def _back_maximum(plan: Plan, node: Node):
    a_id, b_id = node.inputs
    a, b = plan.values[a_id], plan.values[b_id]
    g = plan.grads[node.id]
    mask = plan.pool.empty(node.shape, bool)
    scratch = plan.pool.empty(node.shape, node.dtype)
    steps: List[Callable[[], None]] = []
    if a_id in plan._diff:
        accumulate_a = _accumulate_into(plan, a_id, scratch)
        steps.append(
            lambda accumulate=accumulate_a: (
                np.greater_equal(a, b, out=mask),
                np.multiply(g, mask, out=scratch),
                accumulate(),
            )
        )
    if b_id in plan._diff:
        accumulate_b = _accumulate_into(plan, b_id, scratch)
        steps.append(
            lambda accumulate=accumulate_b: (
                np.less(a, b, out=mask),
                np.multiply(g, mask, out=scratch),
                accumulate(),
            )
        )
    return lambda: [step() for step in steps]


def _back_neg(plan: Plan, node: Node):
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    if write:
        return lambda: np.negative(g, out=gx)
    return lambda: np.subtract(gx, g, out=gx)


def _back_relu(plan: Plan, node: Node):
    out = plan.values[node.id]
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    mask = plan.pool.empty(node.shape, bool)
    target = gx if write else plan.pool.empty(node.shape, node.dtype)

    def run() -> None:
        np.greater(out, 0.0, out=mask)
        np.multiply(g, mask, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _back_clip(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    low, high = node.meta["low"], node.meta["high"]
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    mask = plan.pool.empty(node.shape, bool)
    scratch_mask = plan.pool.empty(node.shape, bool)
    target = gx if write else plan.pool.empty(node.shape, node.dtype)

    def run() -> None:
        np.greater_equal(x, low, out=mask)
        np.less_equal(x, high, out=scratch_mask)
        np.logical_and(mask, scratch_mask, out=mask)
        np.multiply(g, mask, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _back_pow(plan: Plan, node: Node):
    x = plan.values[node.inputs[0]]
    exponent = node.meta["exponent"]
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    target = gx if write else plan.pool.empty(node.shape, node.dtype)

    def run() -> None:
        np.power(x, exponent - 1, out=target)
        np.multiply(target, exponent, out=target)
        np.multiply(target, g, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _back_unary_from_out(factor: Callable[[np.ndarray, np.ndarray, np.ndarray], None]):
    """Backward for unary ops whose derivative is a function of x and out."""

    def bind(plan: Plan, node: Node):
        x = plan.values[node.inputs[0]]
        out = plan.values[node.id]
        g = plan.grads[node.id]
        write, gx = plan._sink(node.inputs[0])
        target = gx if write else plan.pool.empty(node.shape, node.dtype)

        def run() -> None:
            factor(x, out, target)
            np.multiply(target, g, out=target)
            if not write:
                np.add(gx, target, out=gx)

        return run

    return bind


def _back_batch_norm(plan: Plan, node: Node):
    if node.meta.get("training"):
        return _back_batch_norm_train(plan, node)
    x_id = node.inputs[0]
    if x_id not in plan._diff:
        return _relu_mask_step(plan, node)
    g = plan.grads[node.id]
    scale = node.meta["_scale"]
    relu_step = _relu_mask_step(plan, node)
    write, gx = plan._sink(x_id)
    target = gx if write else plan.pool.empty(node.shape, node.dtype)

    def run() -> None:
        if relu_step is not None:
            relu_step()
        np.multiply(g, scale, out=target)
        if not write:
            np.add(gx, target, out=gx)

    return run


def _back_batch_norm_train(plan: Plan, node: Node):
    """Full training-mode BN backward (through the batch statistics).

    Mirrors the eager kernel: gamma gets ``sum(grad * x_hat)``, beta gets
    ``sum(grad)``, and the input gradient is
    ``(grad_xhat - sum(grad_xhat)/m - x_hat * sum(grad_xhat * x_hat)/m) / std``.
    """
    x_id, gamma_id, beta_id = node.inputs[0], node.inputs[1], node.inputs[2]
    need_x = x_id in plan._diff
    need_gamma = gamma_id in plan._diff
    need_beta = beta_id in plan._diff
    if not (need_x or need_gamma or need_beta):
        return _relu_mask_step(plan, node)
    n, c, h, w = node.shape
    dtype = node.dtype
    count = n * h * w
    g = plan.grads[node.id]
    x_hat = node.meta["_x_hat"]
    std_r = node.meta["_std"]
    gamma_r = node.meta["_gamma_r"]
    relu_step = _relu_mask_step(plan, node)

    s1 = plan.pool.empty(node.shape, dtype)
    s2 = plan.pool.empty(node.shape, dtype)
    sg = plan.pool.empty((1, c, 1, 1), dtype)
    sgx = plan.pool.empty((1, c, 1, 1), dtype)
    steps: List[Callable[[], None]] = []
    if need_gamma:
        write_g, gg = plan._sink(gamma_id)
        if write_g:
            steps.append(lambda: (np.multiply(g, x_hat, out=s1), np.sum(s1, axis=(0, 2, 3), out=gg)))
        else:
            scratch_g = plan.pool.empty(gg.shape, dtype)
            steps.append(
                lambda: (
                    np.multiply(g, x_hat, out=s1),
                    np.sum(s1, axis=(0, 2, 3), out=scratch_g),
                    np.add(gg, scratch_g, out=gg),
                )
            )
    if need_beta:
        write_b, gb = plan._sink(beta_id)
        if write_b:
            steps.append(lambda: np.sum(g, axis=(0, 2, 3), out=gb))
        else:
            scratch_b = plan.pool.empty(gb.shape, dtype)
            steps.append(
                lambda: (np.sum(g, axis=(0, 2, 3), out=scratch_b), np.add(gb, scratch_b, out=gb))
            )
    if need_x:
        write, gx = plan._sink(x_id)

        def input_step() -> None:
            np.multiply(g, gamma_r, out=s1)  # grad_xhat
            np.sum(s1, axis=(0, 2, 3), keepdims=True, out=sg)
            np.multiply(s1, x_hat, out=s2)
            np.sum(s2, axis=(0, 2, 3), keepdims=True, out=sgx)
            np.divide(sg, count, out=sg)
            np.multiply(x_hat, sgx, out=s2)
            np.divide(s2, count, out=s2)
            np.subtract(s1, sg, out=s1)
            np.subtract(s1, s2, out=s1)
            np.divide(s1, std_r, out=s1)
            if write:
                np.copyto(gx, s1)
            else:
                np.add(gx, s1, out=gx)

        steps.append(input_step)

    def run() -> None:
        if relu_step is not None:
            relu_step()
        for step in steps:
            step()

    return run


def _back_max_pool(plan: Plan, node: Node):
    kernel, stride = node.meta["kernel"], node.meta["stride"]
    n, c, out_h, out_w = node.shape
    g = plan.grads[node.id]
    _, gx = plan._sink(node.inputs[0], supports_write=False)

    if kernel == 2 and stride == 2:
        out = plan.values[node.id]
        windows = node.meta["_windows"]
        grad_windows = [
            gx[:, :, ki : ki + 2 * out_h : 2, kj : kj + 2 * out_w : 2]
            for ki in (0, 1)
            for kj in (0, 1)
        ]
        mask = plan.pool.empty(node.shape, bool)
        taken = plan.pool.empty(node.shape, bool)
        free = plan.pool.empty(node.shape, bool)
        scratch = plan.pool.empty(node.shape, node.dtype)

        def run() -> None:
            # First window equal to the max wins, matching argmax order.
            taken.fill(False)
            for window, grad_window in zip(windows, grad_windows):
                np.equal(window, out, out=mask)
                np.logical_not(taken, out=free)
                np.logical_and(mask, free, out=mask)
                np.multiply(g, mask, out=scratch)
                np.add(grad_window, scratch, out=grad_window)
                np.logical_or(taken, mask, out=taken)

        return run

    argmax = node.meta["_argmax"]

    if stride >= kernel:
        # Non-overlapping windows: scatter the grad to its argmax slot in a
        # (n, c, oh, ow, k*k) buffer and add it through a disjoint patch view
        # of gx — fully vectorized, no np.add.at.
        flat_grad = plan.pool.empty((n, c, out_h, out_w, kernel * kernel), node.dtype)
        fg2 = flat_grad.reshape(-1, kernel * kernel)
        fg6 = flat_grad.reshape(n, c, out_h, out_w, kernel, kernel)
        rows = node.meta["_rows"]
        argmax_flat = argmax.reshape(-1)
        g_flat = g.reshape(-1)
        patch_target = _patch_view(gx, kernel, stride, out_h, out_w)

        def run() -> None:
            flat_grad.fill(0)
            fg2[rows, argmax_flat] = g_flat
            np.add(patch_target, fg6, out=patch_target)

        return run

    # Overlapping windows: fall back to an indexed scatter-add.
    n_idx, c_idx, i_idx, j_idx = np.meshgrid(
        np.arange(n), np.arange(c), np.arange(out_h), np.arange(out_w), indexing="ij"
    )
    rows_base = i_idx * stride
    cols_base = j_idx * stride
    ki = np.empty(argmax.shape, dtype=np.intp)
    kj = np.empty(argmax.shape, dtype=np.intp)
    for buffer in (n_idx, c_idx, rows_base, cols_base, ki, kj):
        plan.pool._register(buffer)

    def run() -> None:
        np.floor_divide(argmax, kernel, out=ki)
        np.remainder(argmax, kernel, out=kj)
        np.add(ki, rows_base, out=ki)
        np.add(kj, cols_base, out=kj)
        np.add.at(gx, (n_idx, c_idx, ki, kj), g)

    return run


def _back_avg_pool(plan: Plan, node: Node):
    kernel, stride = node.meta["kernel"], node.meta["stride"]
    _, _, out_h, out_w = node.shape
    g = plan.grads[node.id]
    _, gx = plan._sink(node.inputs[0], supports_write=False)
    scratch = plan.pool.empty(node.shape, node.dtype)
    inverse_area = 1.0 / (kernel * kernel)

    def run() -> None:
        np.multiply(g, inverse_area, out=scratch)
        for ki in range(kernel):
            for kj in range(kernel):
                gx[
                    :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ] += scratch

    return run


def _back_sum(plan: Plan, node: Node):
    axis, keepdims = node.meta["axis"], node.meta["keepdims"]
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    if axis is None or keepdims:
        g_view = g
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % gx.ndim for a in axes)
        expanded = tuple(1 if i in axes else s for i, s in enumerate(gx.shape))
        g_view = g.reshape(expanded)
    if write:
        return lambda: np.copyto(gx, g_view)  # broadcasts the reduced grad
    return lambda: np.add(gx, g_view, out=gx)


def _back_reshape(plan: Plan, node: Node):
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    g_view = g.reshape(gx.shape)
    if write:
        return lambda: np.copyto(gx, g_view)
    return lambda: np.add(gx, g_view, out=gx)


def _back_transpose(plan: Plan, node: Node):
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    axes = node.meta["axes"]
    inverse = None if axes is None else np.argsort(axes)
    g_view = np.transpose(g, inverse)
    if write:
        return lambda: np.copyto(gx, g_view)
    return lambda: np.add(gx, g_view, out=gx)


def _back_pad2d(plan: Plan, node: Node):
    padding = node.meta["padding"]
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    interior = g[..., padding:-padding, padding:-padding]
    if write:
        return lambda: np.copyto(gx, interior)
    return lambda: np.add(gx, interior, out=gx)


def _back_ew(plan: Plan, node: Node):
    g = plan.grads[node.id]
    write, gx = plan._sink(node.inputs[0])
    scratch = gx if write else plan.pool.empty(node.shape, node.dtype)
    reversed_steps = []
    for step in reversed(node.meta["steps"]):
        kind = step["op"]
        if kind == "add":
            continue
        if kind == "mul":
            const = plan.values[step["const"]]
            reversed_steps.append(lambda const=const: np.multiply(scratch, const, out=scratch))
        elif kind == "div":
            const = plan.values[step["const"]]
            reversed_steps.append(lambda const=const: np.divide(scratch, const, out=scratch))
        elif kind == "neg":
            reversed_steps.append(lambda: np.negative(scratch, out=scratch))
        elif kind in ("relu", "clip"):
            mask = step["_mask"]
            reversed_steps.append(lambda mask=mask: np.multiply(scratch, mask, out=scratch))
        else:  # mirror the forward binder: unknown kinds must fail at bind time
            raise CompileError(f"elementwise step '{kind}' has no backward rule")

    def run() -> None:
        np.copyto(scratch, g)
        for step in reversed_steps:
            step()
        if not write:
            np.add(gx, scratch, out=gx)

    return run


_BACKWARD = {
    "conv2d": _back_conv2d,
    "affine": _back_affine,
    "matmul": _back_matmul,
    "add": _back_add,
    "mul": _back_mul,
    "div": _back_div,
    "maximum": _back_maximum,
    "neg": _back_neg,
    "relu": _back_relu,
    "clip": _back_clip,
    "pow": _back_pow,
    "exp": _back_unary_from_out(lambda x, out, s: np.copyto(s, out)),
    "log": _back_unary_from_out(lambda x, out, s: np.divide(1.0, x, out=s)),
    "sqrt": _back_unary_from_out(
        lambda x, out, s: (np.maximum(out, 1e-12, out=s), np.divide(0.5, s, out=s))
    ),
    "abs": _back_unary_from_out(lambda x, out, s: np.sign(x, out=s)),
    "tanh": _back_unary_from_out(
        lambda x, out, s: (np.multiply(out, out, out=s), np.subtract(1.0, s, out=s))
    ),
    "sigmoid": _back_unary_from_out(
        lambda x, out, s: (np.subtract(1.0, out, out=s), np.multiply(s, out, out=s))
    ),
    "batch_norm2d": _back_batch_norm,
    "max_pool2d": _back_max_pool,
    "avg_pool2d": _back_avg_pool,
    "sum": _back_sum,
    "reshape": _back_reshape,
    "transpose": _back_transpose,
    "pad2d": _back_pad2d,
    "ew": _back_ew,
    "softmax_kl": _back_softmax_kl,
    "mart_boosted_ce": _back_mart_boosted_ce,
    "mart_weighted_kl": _back_mart_weighted_kl,
    "rbf_gram": _back_rbf_gram,
    "hsic_trace": _back_hsic_trace,
    "rng_mask": _back_rng_mask,
}
