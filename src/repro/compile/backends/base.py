"""Kernel-provider registry: one plan IR, many executors.

A :class:`KernelProvider` supplies ``step()`` bodies for plan ops.  The
:class:`~repro.compile.executor.Plan` binders keep doing all the *wiring*
(shape inference, buffer-pool allocation, view construction, backward
program assembly) and hand the provider a fully-bound kernel context — a
plain namespace of the preallocated arrays and static flags the kernel
needs.  The provider either returns a step closure over those buffers or
``None`` to decline, in which case the op falls back to the serial
``numpy`` reference implementation (:mod:`.reference`) **per op**: a plan
built against any provider always binds completely.

Selection is by name, resolved at plan construction:

* an explicit ``provider=`` argument wins;
* else a :func:`use_provider` context (thread-local) set by the owning
  ``CompiledModel`` / ``CompiledTrainer`` / experiment runner;
* else the ``REPRO_PROVIDER`` environment variable;
* else ``"numpy"``.

Providers register under a name via :func:`register_provider`; the
``threaded`` worker-pool provider and (when importable) the ``numba`` JIT
provider are registered at package import.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Optional, Tuple

from . import reference

__all__ = [
    "KernelProvider",
    "available_providers",
    "get_provider",
    "register_provider",
    "resolve_provider_name",
    "use_provider",
    "DEFAULT_PROVIDER",
    "PROVIDER_ENV",
]

PROVIDER_ENV = "REPRO_PROVIDER"
DEFAULT_PROVIDER = "numpy"

Step = Callable[[], None]


class KernelProvider:
    """Base class: a named source of kernel implementations.

    Subclasses override :meth:`lookup` and return a bound step closure for
    the ``(kind, ctx)`` pairs they serve, ``None`` for everything else.
    ``ctx`` is a read-only namespace of preallocated buffers/views and
    static metadata — implementations must write only into those buffers
    (never allocate per replay) and must preserve the reference kernel's
    floating-point results for the tolerance their provider advertises.
    """

    #: registry name; also the profiler label suffix (``conv2d@threaded``).
    name = "numpy"

    def lookup(self, kind: str, ctx) -> Optional[Step]:
        """A step implementing op ``kind`` over ``ctx``, or ``None``."""
        return None

    def kernel(self, kind: str, ctx) -> Tuple[Step, str]:
        """``(step, provider_name)`` with per-op fallback to the reference.

        The second element names who actually serves the op — the binder
        records it so profiles and parity tests can see which ops fell
        back.
        """
        step = self.lookup(kind, ctx)
        if step is not None:
            return step, self.name
        return reference.build(kind, ctx), DEFAULT_PROVIDER

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyProvider(KernelProvider):
    """The serial reference provider: every op from :mod:`.reference`."""

    name = DEFAULT_PROVIDER


_PROVIDERS: Dict[str, KernelProvider] = {}
_local = threading.local()


def register_provider(provider: KernelProvider, name: Optional[str] = None) -> None:
    """Register (or replace) a provider under ``name`` (default: its own)."""
    _PROVIDERS[name or provider.name] = provider


def available_providers() -> Tuple[str, ...]:
    """Registered provider names, sorted."""
    return tuple(sorted(_PROVIDERS))


def get_provider(name: str) -> KernelProvider:
    """The registered provider instance for ``name`` (loud on unknown)."""
    try:
        return _PROVIDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel provider '{name}'; registered: "
            f"{', '.join(available_providers())}"
        ) from None


def resolve_provider_name(name: Optional[str] = None) -> str:
    """Resolve a provider name: explicit > context > env > default."""
    if name:
        return str(name)
    scoped = getattr(_local, "name", None)
    if scoped:
        return scoped
    env = os.environ.get(PROVIDER_ENV, "").strip()
    if env:
        return env
    return DEFAULT_PROVIDER


@contextmanager
def use_provider(name: Optional[str]):
    """Scope a default provider name onto this thread.

    Plans (and the caches that build them) constructed inside the block
    resolve to ``name`` unless given an explicit provider.  ``None`` is a
    no-op scope, so callers can wrap unconditionally.
    """
    if not name:
        yield
        return
    previous = getattr(_local, "name", None)
    _local.name = str(name)
    try:
        yield
    finally:
        _local.name = previous
