"""Kernel providers: pluggable executors behind one plan IR.

See :mod:`.base` for the registry/selection machinery, :mod:`.reference`
for the serial baseline kernels, :mod:`.threaded` for the worker-pool
provider, and :mod:`.numba_backend` for the optional JIT provider (only
registered when ``numba`` is importable — never a hard dependency).
"""

from __future__ import annotations

from .base import (
    DEFAULT_PROVIDER,
    PROVIDER_ENV,
    KernelProvider,
    NumpyProvider,
    available_providers,
    get_provider,
    register_provider,
    resolve_provider_name,
    use_provider,
)
from .threaded import ThreadedProvider, WorkerPool

register_provider(NumpyProvider())
register_provider(ThreadedProvider())

try:  # optional JIT provider — absent numba just narrows the registry
    from .numba_backend import NumbaProvider
except ImportError:  # pragma: no cover - depends on environment
    NumbaProvider = None  # type: ignore[assignment]
else:
    register_provider(NumbaProvider())

__all__ = [
    "DEFAULT_PROVIDER",
    "PROVIDER_ENV",
    "KernelProvider",
    "NumpyProvider",
    "ThreadedProvider",
    "WorkerPool",
    "NumbaProvider",
    "available_providers",
    "get_provider",
    "register_provider",
    "resolve_provider_name",
    "use_provider",
]
