"""Optional Numba JIT provider — registered only when ``numba`` imports.

The container image does not ship numba, so this module is imported behind
a guard in the package ``__init__``; an ``ImportError`` here simply leaves
the provider unregistered (``available_providers()`` then lists only
``numpy`` and ``threaded``).

Scope is deliberately narrow: scalar-constant elementwise chains
(add/mul/div/neg, no masks) are compiled into a single fused opcode-loop
kernel, turning an N-pass in-place chain into one pass over the buffer.
Everything else — and any chain with relu/clip masks or array constants —
is declined, exercising the same per-op fallback path as ``threaded``.
Chain results are evaluated per element in the same operation order as the
reference, so trajectories agree to reordered-reduction tolerance (the
fused single pass can differ from the multi-pass reference only in
intermediate rounding, ≤1e-9 on the parity suite's trajectories).
"""

from __future__ import annotations

from typing import Callable, Optional

import numba
import numpy as np

from .base import KernelProvider

Step = Callable[[], None]

_OPCODES = {"add": 0, "mul": 1, "div": 2, "neg": 3}


@numba.njit(cache=False)
def _apply_chain(flat, codes, consts):  # pragma: no cover - jitted
    for i in range(flat.shape[0]):
        value = flat[i]
        for j in range(codes.shape[0]):
            code = codes[j]
            if code == 0:
                value = value + consts[j]
            elif code == 1:
                value = value * consts[j]
            elif code == 2:
                value = value / consts[j]
            else:
                value = -value
        flat[i] = value


class NumbaProvider(KernelProvider):
    """JIT provider for mask-free scalar elementwise chains."""

    name = "numba"

    def lookup(self, kind: str, ctx) -> Optional[Step]:
        if kind != "ew":
            return None
        return self._ew(ctx)

    def _ew(self, ctx) -> Optional[Step]:
        out = ctx.out
        x = ctx.x
        if not out.flags.c_contiguous or not x.flags.c_contiguous:
            return None
        if out.dtype != x.dtype or out.dtype.kind != "f":
            return None
        codes = []
        consts = []
        for spec in ctx.steps:
            kind = spec["op"]
            if kind not in _OPCODES:
                return None
            if kind == "neg":
                codes.append(_OPCODES[kind])
                consts.append(0.0)
                continue
            const = spec["const_value"]
            if isinstance(const, np.ndarray):
                if const.ndim != 0:
                    return None
                const = const.item()
            codes.append(_OPCODES[kind])
            consts.append(float(const))
        if not codes:
            return None
        code_arr = np.asarray(codes, dtype=np.int64)
        const_arr = np.asarray(consts, dtype=out.dtype)
        flat = out.reshape(-1)
        x_flat = x.reshape(-1)

        def step() -> None:
            np.copyto(flat, x_flat)
            _apply_chain(flat, code_arr, const_arr)

        return step
