"""Worker-pool provider: row-shard memory-bound kernels across cores.

The provider keeps a persistent pool of daemon threads (the replay thread
itself participates, so ``workers=N`` means N concurrent lanes) and, at
*bind* time, pre-slices each routed kernel's preallocated buffers into
per-shard views.  Replay then only dispatches the prebuilt task closures —
no per-replay NumPy allocation, preserving the executor's zero
steady-state allocation guarantee.

Bitwise-parity discipline: only order-preserving, per-row-disjoint stages
are sharded — im2col gather copies, the per-example col2im scatter,
elementwise chains, the ``rng_mask`` dropout multiply (its Philox mask
draw stays whole on the replay thread: splitting the generator call would
change the stream), and the RBF Gram's elementwise stages.  Reductions
that would reorder float accumulation (the GEMMs, ``hsic_trace``'s
centered trace, bias-gradient sums) are left whole: GEMM-dominated ops
(``affine``, ``matmul``, ``hsic_trace``) are *declined* so they fall back
to the reference kernels (BLAS already parallelises the matmuls), and the
sharded kernels call ``np.matmul`` once on the replay thread.  As a
result ``threaded`` replays are bitwise identical to ``numpy`` replays,
which is what lets CI run the whole tier-1 suite under
``REPRO_PROVIDER=threaded``.

Ops below ``min_size`` elements (or with fewer than 2 rows, or on a
single-core host where ``shards < 2``) are declined as well — per-op
fallback is the common case, not an error path.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, List, Optional

import numpy as np

from .base import KernelProvider

Step = Callable[[], None]

#: below this many elements in the op's dominant buffer, sharding overhead
#: beats the win — decline and fall back to the serial reference kernel.
DEFAULT_MIN_SIZE = 1 << 15


def _slices(n: int, shards: int) -> List[slice]:
    """Split ``range(n)`` into up to ``shards`` contiguous balanced slices."""
    shards = max(1, min(int(shards), int(n)))
    base, extra = divmod(int(n), shards)
    out: List[slice] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(slice(start, start + size))
        start += size
    return out


class WorkerPool:
    """Persistent fork-join pool: N-1 daemon threads + the caller.

    ``run(tasks)`` publishes a task list under a generation counter;
    workers claim tasks by index under the lock, the caller drains
    alongside them, and the call returns once every task has finished.
    The first exception raised by any task is re-raised on the caller's
    thread after the barrier.  ``run`` itself performs no NumPy work and
    no allocation beyond a couple of ints.

    ``run`` is safe for concurrent callers: the whole publish/drain/wait
    cycle holds a mutex, so callers serialize rather than corrupt each
    other's task lists.  That matters because one provider instance (and
    its pool) is registered globally and captured by every plan —
    ``repro.serve`` replays plans from several worker threads at once.
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self._run_lock = threading.Lock()
        self._cond = threading.Condition()
        self._tasks: Optional[List[Step]] = None
        self._next = 0
        self._pending = 0
        self._generation = 0
        self._errors: List[BaseException] = []
        self._threads: List[threading.Thread] = []
        for _ in range(self.workers - 1):
            thread = threading.Thread(
                target=self._worker_loop, name="repro-kernel-worker", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _claim(self) -> Optional[Step]:
        with self._cond:
            tasks = self._tasks
            if tasks is None or self._next >= len(tasks):
                return None
            index = self._next
            self._next += 1
            return tasks[index]

    def _drain(self) -> None:
        done = 0
        while True:
            task = self._claim()
            if task is None:
                break
            try:
                task()
            except BaseException as error:  # noqa: BLE001 - forwarded to caller
                with self._cond:
                    self._errors.append(error)
            done += 1
        if done:
            with self._cond:
                self._pending -= done
                if self._pending <= 0:
                    self._cond.notify_all()

    def _worker_loop(self) -> None:
        seen = 0
        while True:
            with self._cond:
                while self._generation == seen:
                    self._cond.wait()
                seen = self._generation
            self._drain()

    def run(self, tasks: List[Step]) -> None:
        """Execute every task; block until done; re-raise the first error."""
        if len(tasks) == 1:
            tasks[0]()
            return
        with self._run_lock:
            with self._cond:
                self._tasks = tasks
                self._next = 0
                self._pending = len(tasks)
                self._errors = []
                self._generation += 1
                self._cond.notify_all()
            self._drain()
            with self._cond:
                while self._pending > 0:
                    self._cond.wait()
                self._tasks = None
                errors = self._errors
        if errors:
            raise errors[0]


class ThreadedProvider(KernelProvider):
    """Row-sharding provider over a persistent :class:`WorkerPool`."""

    name = "threaded"

    def __init__(
        self,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        min_size: int = DEFAULT_MIN_SIZE,
    ) -> None:
        self.workers = int(workers) if workers else (os.cpu_count() or 1)
        self.shards = int(shards) if shards is not None else self.workers
        self.min_size = int(min_size)
        self._pool: Optional[WorkerPool] = None
        self._pool_lock = threading.Lock()

    @property
    def pool(self) -> WorkerPool:
        """The worker pool, spun up on first use (not at import/registration).

        Creation is locked: concurrent binders (serve workers compiling
        views) must share one pool rather than each leak a thread set.
        """
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = WorkerPool(self.workers)
        return pool

    # -- dispatch ---------------------------------------------------------

    def lookup(self, kind: str, ctx) -> Optional[Step]:
        if self.shards < 2:
            return None
        handler = getattr(self, "_" + kind.replace(".", "_"), None)
        if handler is None:
            return None
        return handler(ctx)

    def _row_slices(self, rows: int, size: int) -> Optional[List[slice]]:
        """Shard slices for an op, or ``None`` when it should fall back."""
        if rows < 2 or size < self.min_size:
            return None
        slices = _slices(rows, self.shards)
        if len(slices) < 2:
            return None
        return slices

    # -- conv2d forward: shard im2col gather + bias/relu epilogue ---------

    def _conv2d(self, ctx) -> Optional[Step]:
        slices = self._row_slices(ctx.n, ctx.cols.size)
        if slices is None:
            return None
        gather: List[Step] = []
        for sl in slices:
            cols_v = ctx.cols6[sl]
            patch_v = ctx.patches[sl]
            if ctx.interior is not None:
                interior_v = ctx.interior[sl]
                x_v = ctx.x[sl]

                def task(iv=interior_v, xv=x_v, cv=cols_v, pv=patch_v) -> None:
                    iv[...] = xv
                    cv[...] = pv

            else:

                def task(cv=cols_v, pv=patch_v) -> None:
                    cv[...] = pv

            gather.append(task)

        epilogue: List[Step] = []
        if ctx.bias is not None or ctx.fuse_relu:
            bias = ctx.bias
            fuse_relu = ctx.fuse_relu
            for sl in _slices(ctx.out2d.shape[0], self.shards):
                block = ctx.out2d[sl]
                mask_v = ctx.mask2d[sl] if ctx.mask2d is not None else None

                def etask(block=block, mask_v=mask_v) -> None:
                    if bias is not None:
                        np.add(block, bias, out=block)
                    if fuse_relu:
                        np.maximum(block, 0.0, out=block)
                        np.greater(block, 0.0, out=mask_v)

                epilogue.append(etask)

        pool = self.pool
        cols = ctx.cols
        w_t = ctx.w_t
        out2d = ctx.out2d

        def step() -> None:
            pool.run(gather)
            np.matmul(cols, w_t, out=out2d)
            if epilogue:
                pool.run(epilogue)

        return step

    # -- conv2d backward (input grad): shard the col2im scatter -----------

    def _conv2d_bwd_input(self, ctx) -> Optional[Step]:
        slices = self._row_slices(ctx.n, ctx.grad_cols.size)
        if slices is None:
            return None
        tasks: List[Step] = []
        write = ctx.write
        for sl in slices:
            gpad_v = ctx.gpad[sl]
            pairs_v = [(target[sl], column[sl]) for target, column in ctx.pairs]
            interior_v = ctx.interior[sl]
            gx_v = ctx.gx[sl]

            def task(
                gpad_v=gpad_v, pairs_v=pairs_v, interior_v=interior_v, gx_v=gx_v
            ) -> None:
                gpad_v.fill(0)
                for target, column in pairs_v:
                    np.add(target, column, out=target)
                if write:
                    np.copyto(gx_v, interior_v)
                else:
                    np.add(gx_v, interior_v, out=gx_v)

            tasks.append(task)

        pool = self.pool
        refresh = ctx.refresh
        grad_mat = ctx.grad_mat
        w_mat = ctx.w_mat
        grad_cols = ctx.grad_cols

        def step() -> None:
            if refresh is not None:
                refresh()
            np.matmul(grad_mat, w_mat, out=grad_cols)
            pool.run(tasks)

        return step

    # -- elementwise chains: shard rows through the whole chain -----------

    def _ew(self, ctx) -> Optional[Step]:
        out = ctx.out
        if out.ndim < 1:
            return None
        slices = self._row_slices(out.shape[0], out.size)
        if slices is None:
            return None
        tasks: List[Step] = []
        for sl in slices:
            out_v = out[sl]
            x_v = ctx.x[sl]
            chain: List[Step] = []
            for spec in ctx.steps:
                kind = spec["op"]
                if kind in ("add", "mul", "div"):
                    const = spec["const_value"]
                    if (
                        isinstance(const, np.ndarray)
                        and const.ndim == out.ndim
                        and const.ndim >= 1
                        and const.shape[0] == out.shape[0]
                    ):
                        const = const[sl]
                    ufunc = {"add": np.add, "mul": np.multiply, "div": np.divide}[kind]
                    chain.append(lambda o=out_v, c=const, u=ufunc: u(o, c, out=o))
                elif kind == "neg":
                    chain.append(lambda o=out_v: np.negative(o, out=o))
                elif kind == "relu":
                    mask_v = spec["_mask"][sl]

                    def relu_op(o=out_v, m=mask_v) -> None:
                        np.maximum(o, 0.0, out=o)
                        np.greater(o, 0.0, out=m)

                    chain.append(relu_op)
                elif kind == "clip":
                    mask_v = spec["_mask"][sl]
                    scratch_v = spec["_scratch_mask"][sl]
                    low = spec["low"]
                    high = spec["high"]

                    def clip_op(
                        o=out_v, m=mask_v, s=scratch_v, low=low, high=high
                    ) -> None:
                        np.greater_equal(o, low, out=m)
                        np.less_equal(o, high, out=s)
                        np.logical_and(m, s, out=m)
                        np.clip(o, low, high, out=o)

                    chain.append(clip_op)
                else:
                    return None

            def task(o=out_v, xv=x_v, chain=chain) -> None:
                np.copyto(o, xv)
                for op in chain:
                    op()

            tasks.append(task)

        pool = self.pool
        return lambda: pool.run(tasks)

    # -- rng_mask (dropout): serial mask refresh, sharded apply -----------

    def _rng_mask(self, ctx) -> Optional[Step]:
        out = ctx.out
        if out.ndim < 1:
            return None
        slices = self._row_slices(out.shape[0], out.size)
        if slices is None:
            return None
        rng = ctx.rng
        tasks: List[Step] = []
        for sl in slices:
            x_v = ctx.x[sl]
            m_v = rng.mask[sl]
            o_v = out[sl]
            tasks.append(lambda xv=x_v, mv=m_v, ov=o_v: np.multiply(xv, mv, out=ov))

        pool = self.pool

        def step() -> None:
            # The Philox draw fills the whole mask in one generator call on
            # the replay thread (splitting it would change the stream); the
            # multiply is per-row disjoint, so sharding it keeps bitwise
            # parity with the serial reference.
            rng.refresh()
            pool.run(tasks)

        return step

    # -- RBF Gram: shard the elementwise stages via the kernel's hook -----

    def _rbf_gram(self, ctx) -> Optional[Step]:
        n = ctx.n
        slices = self._row_slices(n, n * n)
        if slices is None:
            return None
        pool = self.pool
        # The kernel rebuilds its stage callbacks every replay, so the task
        # list is prebuilt once over a cell holding the current stage fn —
        # stages run sequentially, so rebinding between pool.run calls is
        # safe and replay allocates nothing.
        stage: List[Callable[[slice], None]] = [lambda sl: None]
        tasks = [(lambda sl=sl: stage[0](sl)) for sl in slices]

        def hook(fn: Callable[[slice], None], total: int) -> None:
            if total != n:  # pragma: no cover - shapes are plan-static
                fn(slice(0, total))
                return
            stage[0] = fn
            pool.run(tasks)

        rbf = ctx.rbf
        rbf.shard_hook = hook
        x = ctx.x
        out = ctx.out
        return lambda: rbf.run(x, out)
