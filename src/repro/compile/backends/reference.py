"""Serial NumPy reference kernels — the baseline every provider falls back to.

Each factory takes a *kernel context* (a plain namespace the plan binder
fills with preallocated buffers, views, and static flags) and returns a
zero-argument ``step()`` closure.  The bodies are the executor's original
single-threaded ``out=`` kernels, moved here verbatim so alternative
providers can be diffed against an unchanging reference: a plan built with
``provider="numpy"`` must replay bit-for-bit like the pre-registry
executor.

Kernel-context contracts (all arrays preallocated by the binder):

``conv2d``
    ``x``, ``patches`` (strided patch view of the padded source),
    ``interior`` (padded-interior view or ``None``), ``cols``/``cols6``
    (im2col matrix + 6-D view), ``w_t``, ``out2d``, ``bias`` (or
    ``None``), ``fuse_relu``, ``mask2d`` (or ``None``), ``n``.
``affine`` / ``matmul``
    operands, ``out``, ``fuse_relu``.
``ew``
    ``x``, ``out``, ``steps`` — resolved chain specs with ``op`` in
    {add, mul, div, neg, relu, clip}, ``const_value`` arrays, and the
    binder-allocated ``_mask`` / ``_scratch_mask`` buffers.
``rbf_gram`` / ``hsic_trace``
    the bound :class:`~repro.compile.kernels.RBFGram` /
    :class:`~repro.compile.kernels.CenteredTrace` instance plus its
    operands and output.
``rng_mask``
    ``rng`` (the bound :class:`~repro.compile.kernels.DropoutMask`,
    which owns the pooled mask and refreshes it from the module's live
    counter state), ``x``, ``out``.
``conv2d.bwd.input``
    ``grad_mat``, ``w_mat``, ``refresh`` (live-weight repack or ``None``),
    ``grad_cols``, ``gpad``, ``pairs`` (precomputed (col2im target view,
    column view) pairs in scatter order), ``interior``, ``gx``, ``write``,
    ``n``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

Step = Callable[[], None]

#: binary elementwise chain ops and their in-place ufuncs.
EW_UFUNCS = {
    "add": np.add,
    "mul": np.multiply,
    "div": np.divide,
}


def _conv2d(ctx) -> Step:
    x = ctx.x
    interior = ctx.interior
    patches = ctx.patches
    cols = ctx.cols
    cols6 = ctx.cols6
    w_t = ctx.w_t
    out2d = ctx.out2d
    bias = ctx.bias
    fuse_relu = ctx.fuse_relu
    mask2d = ctx.mask2d

    def step() -> None:
        if interior is not None:
            interior[...] = x
        cols6[...] = patches
        np.matmul(cols, w_t, out=out2d)
        if bias is not None:
            np.add(out2d, bias, out=out2d)
        if fuse_relu:
            np.maximum(out2d, 0.0, out=out2d)
            np.greater(out2d, 0.0, out=mask2d)

    return step


def _affine(ctx) -> Step:
    x = ctx.x
    weight_t = ctx.weight_t
    bias = ctx.bias
    out = ctx.out
    fuse_relu = ctx.fuse_relu

    def step() -> None:
        np.matmul(x, weight_t, out=out)
        np.add(out, bias, out=out)
        if fuse_relu:
            np.maximum(out, 0.0, out=out)

    return step


def _matmul(ctx) -> Step:
    a = ctx.a
    b = ctx.b
    out = ctx.out
    fuse_relu = ctx.fuse_relu

    def step() -> None:
        np.matmul(a, b, out=out)
        if fuse_relu:
            np.maximum(out, 0.0, out=out)

    return step


def _make_ew_binary(ufunc, out, const) -> Step:
    return lambda: ufunc(out, const, out=out)


def _make_ew_neg(out) -> Step:
    return lambda: np.negative(out, out=out)


def _make_ew_relu(out, mask) -> Step:
    def op() -> None:
        np.maximum(out, 0.0, out=out)
        np.greater(out, 0.0, out=mask)

    return op


def _make_ew_clip(out, mask, scratch_mask, low, high) -> Step:
    def op() -> None:
        np.greater_equal(out, low, out=mask)
        np.less_equal(out, high, out=scratch_mask)
        np.logical_and(mask, scratch_mask, out=mask)
        np.clip(out, low, high, out=out)

    return op


def build_ew_chain(out, steps) -> list:
    """The in-place op chain for an elementwise spec list (shared helper)."""
    ops = []
    for spec in steps:
        kind = spec["op"]
        if kind in EW_UFUNCS:
            ops.append(_make_ew_binary(EW_UFUNCS[kind], out, spec["const_value"]))
        elif kind == "neg":
            ops.append(_make_ew_neg(out))
        elif kind == "relu":
            ops.append(_make_ew_relu(out, spec["_mask"]))
        elif kind == "clip":
            ops.append(
                _make_ew_clip(
                    out, spec["_mask"], spec["_scratch_mask"], spec["low"], spec["high"]
                )
            )
        else:  # pragma: no cover - binder validates kinds before lookup
            raise KeyError(f"unknown elementwise op {kind!r}")
    return ops


def _ew(ctx) -> Step:
    x = ctx.x
    out = ctx.out
    ops = build_ew_chain(out, ctx.steps)

    def step() -> None:
        np.copyto(out, x)
        for op in ops:
            op()

    return step


def _rbf_gram(ctx) -> Step:
    rbf = ctx.rbf
    x = ctx.x
    out = ctx.out
    return lambda: rbf.run(x, out)


def _rng_mask(ctx) -> Step:
    rng = ctx.rng
    x = ctx.x
    out = ctx.out
    return lambda: rng.run(x, out)


def _hsic_trace(ctx) -> Step:
    trace = ctx.trace
    kx = ctx.kx
    ky = ctx.ky
    out = ctx.out
    return lambda: trace.run(kx, ky, out)


def _conv2d_bwd_input(ctx) -> Step:
    refresh = ctx.refresh
    grad_mat = ctx.grad_mat
    w_mat = ctx.w_mat
    grad_cols = ctx.grad_cols
    gpad = ctx.gpad
    pairs = ctx.pairs
    interior = ctx.interior
    gx = ctx.gx
    write = ctx.write

    def step() -> None:
        if refresh is not None:
            refresh()
        np.matmul(grad_mat, w_mat, out=grad_cols)
        gpad.fill(0)
        for target, column in pairs:
            np.add(target, column, out=target)
        if write:
            np.copyto(gx, interior)
        else:
            np.add(gx, interior, out=gx)

    return step


FACTORIES: Dict[str, Callable] = {
    "conv2d": _conv2d,
    "affine": _affine,
    "matmul": _matmul,
    "ew": _ew,
    "rbf_gram": _rbf_gram,
    "rng_mask": _rng_mask,
    "hsic_trace": _hsic_trace,
    "conv2d.bwd.input": _conv2d_bwd_input,
}


def build(kind: str, ctx) -> Step:
    """The reference step for ``kind`` — every routed op has one."""
    return FACTORIES[kind](ctx)
