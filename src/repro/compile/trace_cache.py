"""Shared capture-trace cache — serialize one graph, replay it in every worker.

``run_grid`` fans out processes that train identical architectures; each one
used to pay for its own :func:`~repro.compile.graph.capture_forward` trace per
batch signature.  This module persists a captured :class:`Graph` through an
ambient :class:`~repro.experiments.store.ArtifactStore` (manifest JSON plus an
``.npz`` of snapshot arrays), keyed by the *plan signature* — model
architecture and config, channel mask, batch shape/dtype, and capture flags —
so the first worker to trace a signature publishes it and every later worker
deserializes the shared trace instead of re-tracing.

Live references survive the round trip *by name*: ``param`` nodes and the
in-meta batch-norm running buffers / dropout counter state are stored as
``{"__param__": name}`` / ``{"__buffer__": path}`` and re-resolved against the
loading worker's own model, so a deserialized graph aliases that worker's live
storage exactly like a fresh capture would.

Anything the encoder cannot express (an exotic ``meta`` value, a snapshot that
is not a plain array) raises :class:`TraceSerializeError` and the caller falls
back to a fresh capture — the cache is an accelerator, never a correctness
gate.  Corrupt or stale stored traces likewise degrade to a re-trace.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .graph import Graph, Node, capture_forward

__all__ = [
    "TraceSerializeError",
    "use_trace_store",
    "active_trace_store",
    "trace_key",
    "serialize_graph",
    "deserialize_graph",
    "load_or_capture",
]

#: bump when the manifest layout changes — old traces become key misses.
TRACE_FORMAT = "graph-trace-v1"


class TraceSerializeError(RuntimeError):
    """A graph (or stored trace) cannot cross the serialization boundary."""


# --------------------------------------------------------------------------- #
# ambient store
# --------------------------------------------------------------------------- #
_store = None


@contextmanager
def use_trace_store(store):
    """Route :func:`load_or_capture` through ``store`` for the dynamic extent.

    ``store`` is duck-typed: anything with ``load_trace(key)`` /
    ``save_trace(key, manifest, arrays)`` (the :class:`ArtifactStore`
    surface).  ``None`` restores plain capture — handy in tests.
    """
    global _store
    previous = _store
    _store = store
    try:
        yield store
    finally:
        _store = previous


def active_trace_store():
    return _store


# --------------------------------------------------------------------------- #
# the cache key — everything that shapes the captured graph
# --------------------------------------------------------------------------- #
def _named_buffers(model) -> Iterator[Tuple[str, np.ndarray]]:
    for path, module in model.named_modules():
        prefix = f"{path}." if path else ""
        for name, buf in module._buffers.items():
            yield f"{prefix}{name}", buf


def _module_config(model) -> List[List[Any]]:
    """A structural digest of the module tree: class names + scalar config.

    Scalar attributes (dropout ``p``, batch-norm ``eps``/``momentum``, conv
    ``stride``/``padding``, the ``training`` flag) are exactly the values that
    get baked into node ``meta`` at capture time, so two models that differ
    only there must key to different traces.  Private attributes are skipped —
    they hold caches and warn-once flags that drift during a run.
    """
    config: List[List[Any]] = []
    for path, module in model.named_modules():
        scalars = {
            key: value
            for key, value in sorted(vars(module).items())
            if not key.startswith("_") and isinstance(value, (bool, int, float, str))
        }
        config.append([path, type(module).__name__, scalars])
    return config


def trace_key(model, sample: np.ndarray, training: bool, with_hidden: bool) -> str:
    """The content address of a capture: sha256 over the plan signature."""
    arr = np.asarray(sample)
    mask = getattr(model, "channel_mask", None)
    if mask is not None:
        mask = np.ascontiguousarray(mask)
        mask_digest = [list(mask.shape), mask.dtype.str, hashlib.sha256(mask.tobytes()).hexdigest()]
    else:
        mask_digest = None
    payload = {
        "format": TRACE_FORMAT,
        "modules": _module_config(model),
        "params": [
            [name, list(p.shape), p.dtype.str] for name, p in model.named_parameters()
        ],
        "buffers": [
            [path, list(b.shape), b.dtype.str] for path, b in _named_buffers(model)
        ],
        "channel_mask": mask_digest,
        "sample": [list(arr.shape), arr.dtype.str],
        "training": bool(training),
        "with_hidden": bool(with_hidden),
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# serialization
# --------------------------------------------------------------------------- #
def _encode(value, params: Dict[int, str], buffers: Dict[int, str], arrays: Dict[str, np.ndarray]):
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": value.hex()}  # bit-exact through JSON
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return {"__scalar__": [value.dtype.str, _encode(value.item(), params, buffers, arrays)]}
    if isinstance(value, np.dtype):
        return {"__dtype__": value.str}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v, params, buffers, arrays) for v in value]}
    if isinstance(value, list):
        return {"__list__": [_encode(v, params, buffers, arrays) for v in value]}
    if isinstance(value, dict):
        if not all(isinstance(k, str) for k in value):
            raise TraceSerializeError("meta dict with non-string keys")
        return {"__dict__": {k: _encode(v, params, buffers, arrays) for k, v in value.items()}}
    name = params.get(id(value))
    if name is not None:
        return {"__param__": name}
    if isinstance(value, np.ndarray):
        path = buffers.get(id(value))
        if path is not None:
            return {"__buffer__": path}  # live module storage, resolved by name
        key = f"a{len(arrays)}"
        arrays[key] = value
        return {"__array__": key}
    raise TraceSerializeError(f"cannot serialize meta value of type {type(value).__name__}")


def _decode(value, params: Dict[str, Any], buffers: Dict[str, np.ndarray], arrays: Dict[str, np.ndarray]):
    if not isinstance(value, dict):
        return value
    if len(value) != 1:
        raise TraceSerializeError("malformed encoded value")
    (tag, payload), = value.items()
    if tag == "__float__":
        return float.fromhex(payload)
    if tag == "__scalar__":
        dtype, raw = payload
        return np.dtype(dtype).type(_decode(raw, params, buffers, arrays))
    if tag == "__dtype__":
        return np.dtype(payload)
    if tag == "__tuple__":
        return tuple(_decode(v, params, buffers, arrays) for v in payload)
    if tag == "__list__":
        return [_decode(v, params, buffers, arrays) for v in payload]
    if tag == "__dict__":
        return {k: _decode(v, params, buffers, arrays) for k, v in payload.items()}
    if tag == "__param__":
        try:
            return params[payload]
        except KeyError:
            raise TraceSerializeError(f"model has no parameter '{payload}'") from None
    if tag == "__buffer__":
        try:
            return buffers[payload]
        except KeyError:
            raise TraceSerializeError(f"model has no buffer '{payload}'") from None
    if tag == "__array__":
        try:
            return arrays[payload]
        except KeyError:
            raise TraceSerializeError(f"stored trace is missing array '{payload}'") from None
    raise TraceSerializeError(f"unknown encoding tag {tag!r}")


def serialize_graph(graph: Graph, model) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Flatten a captured graph into ``(manifest, arrays)``.

    ``manifest`` is JSON-safe; ``arrays`` holds const snapshots and any plain
    ndarray meta values (batch statistics recorded at trace time).  Raises
    :class:`TraceSerializeError` for graphs the format cannot express.
    """
    params = {id(p): name for name, p in model.named_parameters()}
    buffers = {id(b): path for path, b in _named_buffers(model)}
    arrays: Dict[str, np.ndarray] = {}
    nodes = []
    for node in graph.nodes:
        record: Dict[str, Any] = {
            "id": node.id,
            "op": node.op,
            "inputs": list(node.inputs),
            "shape": list(node.shape),
            "dtype": None if node.dtype is None else np.dtype(node.dtype).str,
            "meta": {
                key: _encode(value, params, buffers, arrays)
                for key, value in node.meta.items()
            },
        }
        if node.value is not None:
            key = f"a{len(arrays)}"
            arrays[key] = node.value
            record["value"] = key
        nodes.append(record)
    manifest = {
        "format": TRACE_FORMAT,
        "nodes": nodes,
        "input_id": graph.input_id,
        "output_id": graph.output_id,
        "outputs": dict(graph.outputs),
        "aux": dict(graph.aux),
    }
    return manifest, arrays


def deserialize_graph(manifest: Dict[str, Any], arrays: Dict[str, np.ndarray], model) -> Graph:
    """Rebuild a :class:`Graph` against ``model``'s live parameters/buffers."""
    if manifest.get("format") != TRACE_FORMAT:
        raise TraceSerializeError(f"unsupported trace format {manifest.get('format')!r}")
    params = dict(model.named_parameters())
    buffers = dict(_named_buffers(model))
    nodes: List[Node] = []
    for record in manifest["nodes"]:
        value = None
        if record.get("value") is not None:
            value = arrays[record["value"]]
        meta = {
            key: _decode(encoded, params, buffers, arrays)
            for key, encoded in record["meta"].items()
        }
        nodes.append(
            Node(
                int(record["id"]),
                record["op"],
                tuple(int(i) for i in record["inputs"]),
                meta,
                tuple(int(s) for s in record["shape"]),
                None if record["dtype"] is None else np.dtype(record["dtype"]),
                value=value,
            )
        )
    return Graph(
        nodes,
        int(manifest["input_id"]),
        int(manifest["output_id"]),
        {name: int(i) for name, i in manifest["outputs"].items()},
        {name: int(i) for name, i in manifest["aux"].items()},
    )


# --------------------------------------------------------------------------- #
# the capture front door
# --------------------------------------------------------------------------- #
def load_or_capture(
    model,
    sample: np.ndarray,
    training: bool = False,
    with_hidden: bool = False,
    live_params: bool = False,
) -> Tuple[Graph, Optional[bool]]:
    """A captured graph, through the ambient trace store when one is active.

    Returns ``(graph, hit)`` where ``hit`` is ``True`` for a deserialized
    stored trace, ``False`` for a fresh capture that was published to the
    store, and ``None`` when no store is active (or the trace could not be
    shared).  Capture-time failures still raise
    :class:`~repro.compile.graph.CompileError` exactly like a direct
    :func:`capture_forward` call.
    """
    store = _store
    if store is None:
        graph = capture_forward(
            model, sample, training=training, with_hidden=with_hidden, live_params=live_params
        )
        return graph, None
    if training != bool(model.training) or _has_legacy_dropout(model, training):
        # Let capture_forward raise its canonical CompileError — a stored
        # trace must never paper over an invalid capture request.
        graph = capture_forward(
            model, sample, training=training, with_hidden=with_hidden, live_params=live_params
        )
        return graph, None
    try:
        key = trace_key(model, sample, training, with_hidden)
    except Exception:
        graph = capture_forward(
            model, sample, training=training, with_hidden=with_hidden, live_params=live_params
        )
        return graph, None
    # The key does not discriminate snapshot-vs-live parameter leaves, so keep
    # the two capture flavors from aliasing by folding the flag in here.
    key = hashlib.sha256(f"{key}:live={bool(live_params)}".encode("utf-8")).hexdigest()
    loaded = store.load_trace(key)
    if loaded is not None:
        try:
            return deserialize_graph(loaded[0], loaded[1], model), True
        except Exception:
            pass  # stale/corrupt trace: degrade to a fresh capture
    graph = capture_forward(
        model, sample, training=training, with_hidden=with_hidden, live_params=live_params
    )
    try:
        manifest, arrays = serialize_graph(graph, model)
        store.save_trace(key, manifest, arrays)
    except Exception:
        return graph, None  # unshareable graph — still perfectly usable locally
    return graph, False


def _has_legacy_dropout(model, training: bool) -> bool:
    from ..nn.modules import Dropout

    if not training:
        return False
    return any(
        isinstance(sub, Dropout) and sub.training and sub.p > 0 and sub.rng is not None
        for sub in model.modules()
    )
