"""Buffer arena for compiled plans.

Every ndarray a :class:`~repro.compile.executor.Plan` writes into — op
outputs, gradient accumulators, im2col scratch, pooling index buffers — is
allocated exactly once, at bind time, through a :class:`BufferPool`.  Replays
then reuse the same arrays via ``out=``-style NumPy kernels, so steady-state
attack iterations perform **zero** pool allocations; the pool's counters make
that property observable (and testable) instead of folklore.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["BufferPool"]


class BufferPool:
    """Arena of persistently owned ndarray buffers with allocation accounting."""

    def __init__(self) -> None:
        self._buffers: List[np.ndarray] = []
        # Registered buffer identities: a buffer rebound across named
        # backward programs (or re-registered by an adapter) must not
        # inflate the high-water counters.  The arena keeps a strong
        # reference to every buffer, so ids stay valid for its lifetime.
        self._seen: set = set()
        self.allocations = 0
        self.bytes_allocated = 0

    def empty(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Allocate (and own) an uninitialized buffer."""
        buffer = np.empty(shape, dtype=dtype)
        self._register(buffer)
        return buffer

    def zeros(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Allocate (and own) a zero-initialized buffer."""
        buffer = np.zeros(shape, dtype=dtype)
        self._register(buffer)
        return buffer

    def _register(self, buffer: np.ndarray) -> None:
        key = id(buffer)
        if key in self._seen:
            return
        self._seen.add(key)
        self._buffers.append(buffer)
        self.allocations += 1
        self.bytes_allocated += buffer.nbytes

    def snapshot(self) -> Tuple[int, int]:
        """``(allocations, bytes_allocated)`` — compare before/after replays."""
        return self.allocations, self.bytes_allocated

    def __len__(self) -> int:
        return len(self._buffers)

    def __repr__(self) -> str:
        mib = self.bytes_allocated / (1024 * 1024)
        return f"BufferPool({self.allocations} buffers, {mib:.2f} MiB)"
