"""Fused elementwise kernels for the attack hot path.

The PGD-family update is a chain of five elementwise ops —
``sign -> scale -> step -> eps-ball projection -> range clip`` — that the
NumPy-expression form materializes one temporary at a time.  These kernels
run the whole chain through a single output array (callers ping-pong two
buffers across iterations), with operation order chosen to be **bitwise
identical** to the unfused expressions the attacks previously used.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["linf_step", "lookahead_point"]


def linf_step(
    adversarial: np.ndarray,
    direction: np.ndarray,
    alpha: float,
    original: np.ndarray,
    eps: float,
    clip_min: float,
    clip_max: float,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One fused L_inf ascent step: ``clip(Π_eps(adv + alpha * sign(direction)))``.

    Equivalent to::

        candidate = adversarial + alpha * np.sign(direction)
        delta = np.clip(candidate - original, -eps, eps)
        return np.clip(original + delta, clip_min, clip_max)

    but with every intermediate written into ``out`` (which must not alias
    ``adversarial``, ``direction`` or ``original``).
    """
    if out is None:
        out = np.empty_like(adversarial)
    np.sign(direction, out=out)
    out *= alpha
    out += adversarial
    np.subtract(out, original, out=out)
    np.clip(out, -eps, eps, out=out)
    out += original
    np.clip(out, clip_min, clip_max, out=out)
    return out


def lookahead_point(
    adversarial: np.ndarray,
    momentum: np.ndarray,
    scale: float,
    clip_min: float,
    clip_max: float,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused Nesterov look-ahead: ``clip(adv + scale * momentum)`` (NIFGSM)."""
    if out is None:
        out = np.empty_like(adversarial)
    np.multiply(momentum, scale, out=out)
    out += adversarial
    np.clip(out, clip_min, clip_max, out=out)
    return out
