"""Fused ``out=`` kernels for the attack and loss hot paths.

The PGD-family update is a chain of five elementwise ops —
``sign -> scale -> step -> eps-ball projection -> range clip`` — that the
NumPy-expression form materializes one temporary at a time.  These kernels
run the whole chain through a single output array (callers ping-pong two
buffers across iterations), with operation order chosen to be **bitwise
identical** to the unfused expressions the attacks previously used.

:class:`GramCache` is the per-batch companion of the in-plan IB-RAR loss:
the input RBF Gram matrix, the one-hot label Gram matrix and the two
self-HSIC normalizers carry no gradient, so the compiled adapters refresh
them in place into pooled buffers (which the HSIC plan nodes read as aux
inputs) instead of spending graph nodes on them — replaying the exact
arithmetic of :func:`repro.ib.hsic.gaussian_kernel` /
:func:`~repro.ib.hsic.linear_kernel` / :func:`~repro.ib.hsic.hsic`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .pool import BufferPool

__all__ = [
    "linf_step",
    "lookahead_point",
    "DropoutMask",
    "MedianBandwidth",
    "RBFGram",
    "CenteredTrace",
    "GramCache",
]


class DropoutMask:
    """Pooled replay of the counter-based ``rng_mask`` plan node.

    Holds the pooled mask plus the scratch buffers
    :func:`repro.nn.rng.fill_dropout_mask` needs, and a live reference to
    the owning module's ``[seed, layer_id, step, seeded]`` state buffer.
    :meth:`refresh` re-reads the buffer and refills the mask only when the
    ``(seed, layer_id, step)`` triple moved — several forwards of one
    optimizer step (the TRADES anchor, the MI side forward) reuse one mask,
    exactly like repeated eager applications at the same step.  Replays
    allocate nothing; the mask is bitwise the eager mask because both sides
    share ``fill_dropout_mask``.
    """

    def __init__(self, pool: BufferPool, shape, dtype, p: float, state: np.ndarray) -> None:
        self.p = float(p)
        self.state = state
        self.mask = pool.empty(shape, dtype)
        self._u = pool.empty(shape, np.float64)
        self._b = pool.empty(shape, bool)
        self._last = None

    def refresh(self) -> None:
        from ..nn.rng import fill_dropout_mask, state_key

        key = state_key(self.state)
        if key != self._last:
            fill_dropout_mask(self.mask, self._u, self._b, self.p, *key)
            self._last = key

    def run(self, x: np.ndarray, out: np.ndarray) -> None:
        self.refresh()
        np.multiply(x, self.mask, out=out)


def linf_step(
    adversarial: np.ndarray,
    direction: np.ndarray,
    alpha: float,
    original: np.ndarray,
    eps: float,
    clip_min: float,
    clip_max: float,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One fused L_inf ascent step: ``clip(Π_eps(adv + alpha * sign(direction)))``.

    Equivalent to::

        candidate = adversarial + alpha * np.sign(direction)
        delta = np.clip(candidate - original, -eps, eps)
        return np.clip(original + delta, clip_min, clip_max)

    but with every intermediate written into ``out`` (which must not alias
    ``adversarial``, ``direction`` or ``original``).
    """
    if out is None:
        out = np.empty_like(adversarial)
    np.sign(direction, out=out)
    out *= alpha
    out += adversarial
    np.subtract(out, original, out=out)
    np.clip(out, -eps, eps, out=out)
    out += original
    np.clip(out, clip_min, clip_max, out=out)
    return out


def lookahead_point(
    adversarial: np.ndarray,
    momentum: np.ndarray,
    scale: float,
    clip_min: float,
    clip_max: float,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused Nesterov look-ahead: ``clip(adv + scale * momentum)`` (NIFGSM)."""
    if out is None:
        out = np.empty_like(adversarial)
    np.multiply(momentum, scale, out=out)
    out += adversarial
    np.clip(out, clip_min, clip_max, out=out)
    return out


class MedianBandwidth:
    """Pooled replay of :func:`repro.ib.hsic.median_bandwidth_array`.

    The eager heuristic materializes an ``(n, n, d)`` difference cube, an
    ``(n, n)`` squared-distance matrix and a fresh upper-triangle copy on
    every batch — the last per-batch allocating step left inside a replayed
    IB-RAR plan.  This kernel computes the same upper-triangle distances
    row-block by row-block into pooled scratch and selects the median with
    an in-place :meth:`numpy.ndarray.partition`, reproducing ``np.median``'s
    arithmetic exactly: odd count → the ``m // 2``-th order statistic, even
    count → ``(part[m//2 - 1] + part[m//2]) / 2.0``.  Operand order matches
    the eager ``flat[i] - flat[j]`` / ``diff ** 2`` / row-wise pairwise sum,
    so the returned sigma is **bitwise identical** to the eager one.
    """

    def __init__(self, pool: BufferPool, n: int, dim: int, dtype) -> None:
        self.n = n
        if n > 1:
            self._diffs = pool.empty((n - 1, dim), dtype)
            self._upper = pool.empty((n * (n - 1) // 2,), dtype)

    def run(self, x: np.ndarray) -> float:
        from ..ib.hsic import sigma_from_median

        n = self.n
        if n < 2:
            return 1.0  # the eager heuristic's empty-upper-triangle default
        offset = 0
        for i in range(n - 1):
            rows = n - 1 - i
            diff = self._diffs[:rows]
            np.subtract(x[i], x[i + 1 :], out=diff)
            np.multiply(diff, diff, out=diff)
            np.sum(diff, axis=1, out=self._upper[offset : offset + rows])
            offset += rows
        half = self._upper.size // 2
        if self._upper.size % 2:
            self._upper.partition(half)
            median = float(self._upper[half])
        else:
            self._upper.partition([half - 1, half])
            median = float((self._upper[half - 1] + self._upper[half]) / 2.0)
        return sigma_from_median(median)


class RBFGram:
    """Pooled replay of :func:`repro.ib.hsic.gaussian_kernel`, op for op.

    The **single** implementation of the bit-exact RBF-Gram arithmetic
    (squared norms, Gram matmul, distance assembly, negative-noise clamp,
    bandwidth scale, exp) shared by the ``rbf_gram`` plan node and the
    gradient-free :class:`GramCache` — the parity contract lives here once.
    ``sigma=None`` re-derives the eager median bandwidth per run through the
    pooled :class:`MedianBandwidth` selection kernel (bitwise-equal to the
    eager heuristic, no per-batch allocation).  ``keep_mask=True``
    additionally records the pre-clamp ``>= 0`` mask the plan node's
    backward needs; :attr:`c` holds the scale used by the latest run.

    :attr:`shard_hook` lets a kernel provider distribute the row-parallel
    elementwise stages: when set, each stage is handed to the hook as a
    ``fn(row_slice)`` callable over a disjoint row range (the Gram matmul
    and the bandwidth selection stay whole).  ``None`` (the default) runs
    every stage over the full range — identical ops on identical operands,
    so serial results are unchanged bit for bit.
    """

    def __init__(
        self,
        pool: BufferPool,
        n: int,
        dim: int,
        dtype,
        sigma: Optional[float],
        keep_mask: bool = False,
    ) -> None:
        self.sigma = sigma
        self.c = 0.0
        self.n = n
        self.shard_hook = None
        self._xsq = pool.empty((n, dim), dtype)
        self._sq = pool.empty((n, 1), dtype)
        self._gram = pool.empty((n, n), dtype)
        self._scratch = pool.empty((n, n), dtype)
        self.mask = pool.empty((n, n), bool) if keep_mask else None
        self._median = MedianBandwidth(pool, n, dim, dtype) if sigma is None else None

    def run(self, x: np.ndarray, out: np.ndarray) -> None:
        hook = self.shard_hook
        n = self.n
        xsq, sq, gram, scratch, mask = (
            self._xsq,
            self._sq,
            self._gram,
            self._scratch,
            self.mask,
        )
        sq_t = sq.T

        def norms(rows: slice) -> None:
            np.multiply(x[rows], x[rows], out=xsq[rows])
            np.sum(xsq[rows], axis=1, keepdims=True, out=sq[rows])

        def distances(rows: slice) -> None:
            np.add(sq[rows], sq_t, out=out[rows])
            np.multiply(gram[rows], 2.0, out=scratch[rows])
            np.subtract(out[rows], scratch[rows], out=out[rows])
            if mask is not None:
                np.greater_equal(out[rows], 0.0, out=mask[rows])  # pre-clamp values
            np.maximum(out[rows], 0.0, out=out[rows])

        if hook is None:
            norms(slice(0, n))
        else:
            hook(norms, n)
        np.matmul(x, x.T, out=gram)
        if hook is None:
            distances(slice(0, n))
        else:
            hook(distances, n)
        sigma = self.sigma
        if sigma is None:
            sigma = self._median.run(x)
        sigma = max(float(sigma), 1e-6)
        self.c = -1.0 / (2.0 * sigma * sigma)
        c = self.c

        def scale(rows: slice) -> None:
            np.multiply(out[rows], c, out=out[rows])
            np.exp(out[rows], out=out[rows])

        if hook is None:
            scale(slice(0, n))
        else:
            hook(scale, n)


class CenteredTrace:
    """Pooled one-sided-centered HSIC trace: ``sum(center(kx) * ky) / (m-1)^2``.

    The single implementation of :func:`repro.ib.hsic.hsic`'s arithmetic,
    shared by the ``hsic_trace`` plan node (forward and the centering its
    backward applies to gradients) and :class:`GramCache`'s self-HSIC
    normalizers.  :attr:`cent` keeps the latest centered first kernel.
    """

    def __init__(self, pool: BufferPool, m: int, dtype, with_trace: bool = True) -> None:
        self.m = m
        self.scale = 1.0 / ((m - 1) ** 2)
        self._row = pool.empty((1, m), dtype)
        self._col = pool.empty((m, 1), dtype)
        self._total = pool.empty((), dtype)
        # ``with_trace=False`` binds a centering-only instance (the backward
        # kernels center gradients in place and never call :meth:`run`).
        self.cent = pool.empty((m, m), dtype) if with_trace else None
        self._prod = pool.empty((m, m), dtype) if with_trace else None

    def center(self, kernel: np.ndarray, out: np.ndarray) -> None:
        """``out = kernel - row_mean - col_mean + total_mean`` (eager order).

        ``out`` may alias ``kernel``: the three means are reduced before the
        first write.
        """
        m = self.m
        np.sum(kernel, axis=0, keepdims=True, out=self._row)
        np.multiply(self._row, 1.0 / m, out=self._row)
        np.sum(kernel, axis=1, keepdims=True, out=self._col)
        np.multiply(self._col, 1.0 / m, out=self._col)
        np.sum(kernel, out=self._total)
        np.multiply(self._total, 1.0 / (m * m), out=self._total)
        np.subtract(kernel, self._row, out=out)
        np.subtract(out, self._col, out=out)
        np.add(out, self._total, out=out)

    def run(self, kx: np.ndarray, ky: np.ndarray, out: np.ndarray) -> None:
        self.center(kx, self.cent)
        np.multiply(self.cent, ky, out=self._prod)
        np.sum(self._prod, out=out)
        np.multiply(out, self.scale, out=out)


class GramCache:
    """Pooled per-batch Gram matrices + nHSIC normalizers for IB-RAR.

    :meth:`update` refreshes, entirely through ``out=`` kernels over
    bind-time buffers:

    * ``kx`` — the Gaussian Gram matrix of the flattened input batch
      (detached in the eager loss, so gradient-free here);
    * ``ky`` — the linear kernel of the one-hot labels;
    * ``norm_x`` / ``norm_y`` — the self-HSIC normalizers
      ``HSIC(K, K)`` the normalized-HSIC denominators share per batch.
    """

    def __init__(
        self,
        pool: BufferPool,
        n: int,
        input_dim: int,
        num_classes: int,
        dtype,
        sigma: Optional[float],
        normalized: bool,
    ) -> None:
        self.n = n
        self.normalized = normalized
        self.kx = pool.empty((n, n), dtype)
        self.ky = pool.empty((n, n), dtype)
        self.norm_x = pool.empty((), dtype)
        self.norm_y = pool.empty((), dtype)
        self._onehot = pool.empty((n, num_classes), dtype)
        self._arange = np.arange(n)
        pool._register(self._arange)
        self._rbf = RBFGram(pool, n, input_dim, dtype, sigma)
        self._trace = CenteredTrace(pool, n, dtype)

    def update(self, images: np.ndarray, labels: np.ndarray) -> None:
        """Refresh every buffer for one batch (images already flattened-able)."""
        self._rbf.run(images.reshape(self.n, -1), self.kx)
        self._onehot.fill(0.0)
        self._onehot[self._arange, labels] = 1.0
        np.matmul(self._onehot, self._onehot.T, out=self.ky)
        if self.normalized:
            self._trace.run(self.kx, self.kx, self.norm_x)
            self._trace.run(self.ky, self.ky, self.norm_y)
