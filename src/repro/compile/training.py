"""Compiled training: static plans for the full train step.

This module extends :mod:`repro.compile` from eval-mode inference to the
training loop itself.  A :class:`CompiledTrainer` owns, per input signature,
a plan *context* built from **exactly one traced capture** of the model:

* one (or two, for two-forward losses like TRADES/MART) **training plans** —
  the training-mode forward with live parameters, batch-stat batch norms
  (running statistics updated in place, exactly like eager), and a full
  parameter-gradient backward accumulated into pooled buffers;
* one **attack plan** — derived from the *same* capture by the
  :func:`~repro.compile.passes.lower_to_eval` pass (eval-semantics batch
  norms over the live running buffers), with an input-gradient backward
  driving the inner maximization.  For mode-invariant models (no batch
  norm) the training plan itself is bound with the fused input+param
  backward (``grad="both"``) and serves both roles: PGD-AT's inner attack
  loop and its outer optimizer step then share one plan.

Loss strategies are mapped to *adapters* that build the **entire loss in
plan**: the classification term runs as the fused softmax-CE seed, and the
composite side terms — TRADES' and MART's softmax-KL in both orientations,
MART's margin weighting, IB-RAR's RBF Gram matrices and one-sided-centered
HSIC traces — are appended to the captured graphs as plan nodes reading the
logits/hidden buffers directly (cross-plan logits flow through aliased
``aux`` inputs; per-batch one-hot masks and input/label Gram matrices fill
pooled buffers).  A compiled step therefore records **zero eager graph
nodes and zero steady-state pool allocations** across the whole loss.
Parameter gradients from every backward replay are summed into
per-parameter accumulators, and the optimizer applies them with its fused
in-place :meth:`~repro.nn.optim.Optimizer.step_with_grads` kernels — which
is what keeps the live-parameter plans valid across steps.

Counter-based dropout traces into ``rng_mask`` plan nodes (masks re-derived
from the module's live ``(seed, layer_id, step)`` state every replay), and
``mi_on_adversarial=True`` runs in plan: the MI hidden forward replays on a
re-generated adversarial batch, reproducing the eager loss's second
``generate()`` call exactly.  Anything the adapters cannot express (unknown
strategies, legacy generator-driven dropout, ragged batch signatures on
their first sighting) falls back to the eager path batch by batch; opting in
is always safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn.tensor import Tensor, get_default_dtype
from ..nn import functional as F
from ..obs import trace as _trace
from ..obs.profiler import merge_snapshot as _merge_snapshot
from ..obs.registry import get_registry
from . import trace_cache
from .backends import resolve_provider_name, use_provider
from .cache import SignatureCache
from .executor import Plan
from .graph import CompileError, Graph, capture_forward
from .kernels import GramCache, linf_step
from .passes import lower_to_eval, optimize
from .pool import BufferPool

__all__ = ["CompiledTrainer", "LiveEvalModel", "TrainingCompileStats", "build_adapter"]


@dataclass
class TrainingCompileStats:
    """Compiled-vs-eager accounting for one :class:`CompiledTrainer`.

    ``captures`` counts traced forwards (``capture_forward`` calls) — one
    per signature, regardless of how many plans the context derives from
    the capture.  ``compiled_forward_calls``/``compiled_forward_examples``
    count plan forward replays the way :class:`repro.attacks.engine.
    ForwardPassCounter` counts eager forwards, so a compiled run's
    ``train_forward_examples`` telemetry stays consistent with eager.
    """

    compiled_batches: int = 0
    eager_batches: int = 0
    plans_built: int = 0
    attack_grad_calls: int = 0
    captures: int = 0
    compiled_forward_calls: int = 0
    compiled_forward_examples: int = 0
    #: *genuine* eager fallbacks — batches that will stay eager forever
    #: (unsupported strategy, memoized capture failure, replay failure).
    #: The policy's benign first-sighting deferral is excluded, so a fully
    #: compiled run asserts ``fallbacks == 0`` even though its first batch
    #: per signature ran eagerly.
    fallbacks: int = 0
    #: shared-trace cache accounting (see :mod:`repro.compile.trace_cache`).
    trace_hits: int = 0
    trace_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "compiled_batches": self.compiled_batches,
            "eager_batches": self.eager_batches,
            "plans_built": self.plans_built,
            "attack_grad_calls": self.attack_grad_calls,
            "captures": self.captures,
            "compiled_forward_calls": self.compiled_forward_calls,
            "compiled_forward_examples": self.compiled_forward_examples,
            "fallbacks": self.fallbacks,
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
        }

    def snapshot(self) -> Tuple[int, int]:
        """``(compiled_batches, eager_batches)`` — diff across an epoch."""
        return self.compiled_batches, self.eager_batches

    def merge(self, other: "TrainingCompileStats") -> "TrainingCompileStats":
        """Counter-wise sum (combining retired and live trainer instances)."""
        return TrainingCompileStats(
            compiled_batches=self.compiled_batches + other.compiled_batches,
            eager_batches=self.eager_batches + other.eager_batches,
            plans_built=self.plans_built + other.plans_built,
            attack_grad_calls=self.attack_grad_calls + other.attack_grad_calls,
            captures=self.captures + other.captures,
            compiled_forward_calls=self.compiled_forward_calls + other.compiled_forward_calls,
            compiled_forward_examples=(
                self.compiled_forward_examples + other.compiled_forward_examples
            ),
            fallbacks=self.fallbacks + other.fallbacks,
            trace_hits=self.trace_hits + other.trace_hits,
            trace_misses=self.trace_misses + other.trace_misses,
        )


# --------------------------------------------------------------------------- #
# plan construction
# --------------------------------------------------------------------------- #
def _training_plan(model, sample: np.ndarray, hidden_seeds: bool = True) -> Plan:
    # Hidden outputs exist only for adapters that consume them (the IB-RAR
    # wrapper): naming them protects those nodes from elementwise-chain
    # fusion, and registering them as seed points costs the dead-write
    # optimization on their gradient buffers — pure overhead for CE and the
    # adversarial benchmarks.
    graph = capture_forward(
        model, sample, training=True, with_hidden=hidden_seeds, live_params=True
    )
    graph = optimize(graph, fold_bn=False, fuse=True)
    seed_ids = tuple(graph.outputs.values()) if hidden_seeds else ()
    return Plan(graph, grad="params", seed_ids=seed_ids)


def _train_graph(captured: Graph) -> Graph:
    """An independently optimized copy of the training capture (per plan)."""
    return optimize(captured.copy(), fold_bn=False, fuse=True)


def _eval_graph(captured: Graph) -> Tuple[Graph, bool]:
    """The eval-semantics (attack) graph derived from the same capture."""
    lowered, changed = lower_to_eval(captured)
    return optimize(lowered, fold_bn=False, fuse=True), changed


def _attack_plan(model, sample: np.ndarray) -> Plan:
    was_training = model.training
    model.eval()
    try:
        graph = capture_forward(model, sample, live_params=True)
    finally:
        model.train(was_training)
    graph = optimize(graph, fold_bn=False, fuse=True)
    return Plan(graph, grad="input")


def _logits_signature(graph: Graph) -> Tuple[int, int, np.dtype]:
    n, k = graph.output_node.shape
    return n, k, graph.output_node.dtype


def _append_kl(graph: Graph, aux_name: str, aux_first: bool) -> Tuple[int, int]:
    """Append ``softmax_kl`` between an aux logits leaf and the graph output.

    ``aux_first=True`` puts the aux in the ``p`` slot (``KL(aux || out)``,
    the TRADES orientation — anchor clean logits, differentiate the
    adversarial side); ``False`` swaps the orientation.  Returns
    ``(aux_id, kl_id)``.
    """
    n, k, dtype = _logits_signature(graph)
    aux_id = graph.add_aux(aux_name, (n, k), dtype)
    inputs = (aux_id, graph.output_id) if aux_first else (graph.output_id, aux_id)
    kl_id = graph.add_op("softmax_kl", inputs, (), dtype, name="kl")
    return aux_id, kl_id


def _supports_fused_step(optimizer) -> bool:
    """Whether the optimizer overrides the in-place fused update path.

    The base :class:`~repro.nn.optim.Optimizer.step_with_grads` raises
    ``NotImplementedError``; a custom subclass implementing only ``step()``
    cannot keep live-parameter plans valid, so compiled training declines.
    """
    from ..nn.optim import Optimizer

    return type(optimizer).step_with_grads is not Optimizer.step_with_grads


def _mask_changed(current, reference) -> bool:
    """Whether a channel mask differs *by value* from the captured one.

    Refreshing the Eq. (3) mask installs a fresh array every time; when the
    channel selection has stabilized the values are identical and the plans
    (which bake the mask in as a constant) stay valid — only a value change
    forces recapture.
    """
    if current is reference:
        return False
    if current is None or reference is None:
        return True
    return not np.array_equal(current, reference)


class _SignatureContext:
    """The plans serving one ``(input shape, dtype)`` signature.

    Exactly **one** :func:`~repro.compile.graph.capture_forward` trace runs
    per signature; the adapter derives every plan from copies of that
    capture — the training plan(s) directly, the attack plan through the
    :func:`~repro.compile.passes.lower_to_eval` rewrite.  Per-context state
    the adapters need (loss node ids, seed scalars, the per-batch Gram
    cache) hangs off the context, since node ids differ between signatures.
    """

    def __init__(self, model, sample: np.ndarray, adapter, stats: TrainingCompileStats) -> None:
        self.model = model
        #: distinct plans (for pool accounting; an aliased attack plan on a
        #: mode-invariant model appears once).
        self.plans: List[Plan] = []
        #: extra buffer pools (the IB-RAR Gram cache) for the same accounting.
        self.pools: List[BufferPool] = []
        self.train_a: Optional[Plan] = None
        self.train_b: Optional[Plan] = None
        self.train_mi: Optional[Plan] = None
        self.attack: Optional[Plan] = None
        self.gram: Optional[GramCache] = None
        self.ids: Dict[str, int] = {}  # adapter-chosen loss node ids
        self.one: Optional[np.ndarray] = None
        self.beta_seed: Optional[np.ndarray] = None
        self.arange: Optional[np.ndarray] = None
        captured, trace_hit = trace_cache.load_or_capture(
            model,
            sample,
            training=True,
            with_hidden=adapter.needs_hidden_seeds,
            live_params=True,
        )
        if trace_hit is True:
            stats.trace_hits += 1
        else:
            # A fresh capture_forward ran (store miss, no store, or an
            # unshareable graph); only an actual store miss counts as one.
            stats.captures += 1
            if trace_hit is False:
                stats.trace_misses += 1
        adapter.build(self, captured)

    def register(self, plan: Plan) -> Plan:
        if all(plan is not existing for existing in self.plans):
            self.plans.append(plan)
        return plan

    def scalar(self, value: float, dtype) -> np.ndarray:
        """A bind-time scalar seed array (allocated once, never per batch)."""
        return np.array(value, dtype=dtype)

    @property
    def pool_allocations(self) -> int:
        return sum(plan.pool.allocations for plan in self.plans) + sum(
            pool.allocations for pool in self.pools
        )


def _pgd_loop(
    grad_step: Callable[[np.ndarray], np.ndarray],
    images: np.ndarray,
    eps: float,
    alpha: float,
    steps: int,
    random_start: bool,
    seed: int,
    clip_min: float = 0.0,
    clip_max: float = 1.0,
) -> np.ndarray:
    """Replay :class:`repro.attacks.PGD`'s generation loop through a plan.

    Reproduces the eager attack exactly — the same fresh per-batch RNG and
    random-start draw, the same fused ``linf_step`` ping-pong buffers — with
    the per-step gradient query served by ``grad_step`` (a fused-CE or
    in-plan-KL replay over the live-parameter attack plan).
    """
    images = np.asarray(images, dtype=get_default_dtype())
    rng = np.random.default_rng(seed)
    adversarial = images.copy()
    if random_start and eps > 0:
        adversarial = adversarial + rng.uniform(-eps, eps, size=images.shape)
        adversarial = np.clip(adversarial, clip_min, clip_max)
    buffers = (np.empty_like(images), np.empty_like(images))
    for step in range(steps):
        gradient = grad_step(adversarial)
        adversarial = linf_step(
            adversarial, gradient, alpha, images, eps, clip_min, clip_max,
            out=buffers[step % 2],
        )
    return adversarial


class LiveEvalModel:
    """Eval-mode predictions through live-parameter plans, reusable forever.

    The :class:`~repro.compile.CompiledModel` snapshots weights, so a
    training loop would have to re-capture it after every epoch.  This view
    instead binds eval-semantics plans to the **live** parameter storage
    (like the adapters' attack plans): one capture per batch signature
    serves every epoch of in-training evaluation, tracking in-place weight
    updates and the running batch-norm statistics automatically.  The
    interface mirrors ``CompiledModel`` (``__call__``/``predict``/
    ``value_and_grad``) with per-batch eager fallback; a changed channel
    mask or reallocated parameter storage invalidates the cached plans.
    """

    def __init__(self, module, max_plans: int = 8, provider: Optional[str] = None) -> None:
        self.module = module
        self.provider = resolve_provider_name(provider)

        def build(sample: np.ndarray) -> Plan:
            with use_provider(self.provider):
                return _attack_plan(self.module, sample)

        self._cache = SignatureCache(
            build, capacity=max_plans, name="live-eval", namespace=self.provider
        )
        self._mask_ref = getattr(module, "channel_mask", None)

    def invalidate(self) -> None:
        self._cache.clear()

    def warm(self, samples) -> int:
        """Pre-trace a live-parameter plan per distinct sample signature.

        Mirrors :meth:`CompiledModel.warm`: serve workers pass one zero
        batch per configured bucket so every bucket signature is traced
        before the first request.  Returns the count of usable plans.
        """
        ready = 0
        for sample in samples:
            arr = np.asarray(
                sample.data if isinstance(sample, Tensor) else sample,
                dtype=get_default_dtype(),
            )
            if self._cache.warm(arr):
                ready += 1
        return ready

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/build counters from the underlying :class:`SignatureCache`."""
        return self._cache.stats()

    def profile(self) -> Dict[str, dict]:
        """Per-op-kind executor profile by plan signature (see :mod:`repro.obs`)."""
        profiles: Dict[str, dict] = {}
        for plan in self._cache.entries.values():
            if plan is not None:
                _merge_snapshot(profiles, plan.profile_snapshot())
        return profiles

    @property
    def pool_allocations(self) -> int:
        """Total buffer allocations across every live plan's pool."""
        return sum(
            p.pool.allocations for p in self._cache.entries.values() if p is not None
        )

    @property
    def _plans(self) -> Dict[Tuple[Tuple[int, ...], str], Optional[Plan]]:
        return self._cache.entries

    def _plan_for(self, arr: np.ndarray) -> Optional[Plan]:
        if _mask_changed(getattr(self.module, "channel_mask", None), self._mask_ref):
            self.invalidate()
        self._mask_ref = getattr(self.module, "channel_mask", None)
        # Eval shapes recur every epoch, so from the second epoch on every
        # hook batch replays a plan.
        return self._cache.lookup(arr)

    def __call__(self, x) -> np.ndarray:
        arr = np.asarray(x.data if isinstance(x, Tensor) else x, dtype=get_default_dtype())
        plan = self._plan_for(arr)
        if plan is not None:
            try:
                return plan.forward(arr)
            except CompileError:  # e.g. parameter storage reallocated
                self._cache.evict(arr)
        from ..nn.tensor import no_grad

        was_training = self.module.training
        self.module.eval()
        try:
            with no_grad():
                return self.module.forward(Tensor(arr)).data
        finally:
            self.module.train(was_training)

    def predict(self, x) -> np.ndarray:
        return np.argmax(self(x), axis=1)

    def value_and_grad(self, x, labels, loss: str = "ce") -> Tuple[float, np.ndarray]:
        if loss != "ce":
            raise ValueError(f"unknown compiled loss '{loss}'; supported: 'ce'")
        arr = np.asarray(x.data if isinstance(x, Tensor) else x, dtype=get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        plan = self._plan_for(arr)
        if plan is not None:
            try:
                return plan.value_and_grad_ce(arr, labels)
            except CompileError:
                self._cache.evict(arr)
        was_training = self.module.training
        self.module.eval()
        try:
            x_t = Tensor(arr, requires_grad=True)
            loss_t = F.cross_entropy(self.module.forward(x_t), labels)
            loss_t.backward()
            return float(loss_t.item()), x_t.grad
        finally:
            self.module.train(was_training)


# --------------------------------------------------------------------------- #
# loss adapters
# --------------------------------------------------------------------------- #
class _CEAdapter:
    """Plain cross-entropy: one training forward, fused-CE seed."""

    needs_hidden_seeds = False

    def build(self, ctx: _SignatureContext, captured: Graph) -> None:
        ctx.train_a = ctx.register(Plan(_train_graph(captured), grad="params"))

    def replay_generate(self, trainer, ctx, images, labels) -> np.ndarray:
        # CE has no ``generate``; the eager MI wrapper falls back to the
        # clean batch, and so does the compiled one.
        return images

    def step(self, trainer: "CompiledTrainer", ctx, images, labels):
        plan = ctx.train_a
        logits = plan.forward(images)
        trainer.count_forwards(1, len(labels))
        loss, seed = plan.ce_loss_and_seed(labels)
        plan.run_backward({plan.graph.output_id: seed})
        trainer.accumulate(plan)
        return loss, logits


class _PGDAdversarialAdapter:
    """Madry PGD-AT: compiled inner maximization + fused CE on the result.

    One capture serves the whole step.  On a model whose training forward
    is mode-invariant (no batch norm) the training plan binds the fused
    input+param backward (``grad="both"``) and doubles as the attack plan:
    the inner loop drives its input-only backward program, the outer step
    its fused full program — one plan, one capture.  Batch-norm models get
    the plan pair, with the attack plan derived by the ``lower_to_eval``
    rewrite of the same capture instead of a second trace.
    """

    needs_hidden_seeds = False

    def __init__(self, strategy) -> None:
        self.strategy = strategy

    def build(self, ctx: _SignatureContext, captured: Graph) -> None:
        attack_graph, mode_divergent = _eval_graph(captured)
        if mode_divergent:
            ctx.train_a = ctx.register(Plan(_train_graph(captured), grad="params"))
            ctx.attack = ctx.register(Plan(attack_graph, grad="input"))
        else:
            ctx.train_a = ctx.register(Plan(_train_graph(captured), grad="both"))
            ctx.attack = ctx.train_a

    def _generate(self, trainer, ctx, images, labels, random_start: bool) -> np.ndarray:
        """One fresh CE-guided PGD generation — the eager ``generate()``."""
        s = self.strategy
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        attack = ctx.attack

        def grad_step(adversarial: np.ndarray) -> np.ndarray:
            _, gradient = attack.value_and_grad_ce(adversarial, labels)
            return gradient

        adversarial = _pgd_loop(
            grad_step, images,
            eps=s.eps, alpha=s.alpha, steps=s.steps,
            random_start=random_start, seed=s.seed,
        )
        trainer.stats.attack_grad_calls += s.steps
        trainer.count_forwards(s.steps, s.steps * len(labels))
        return adversarial

    def replay_generate(self, trainer, ctx, images, labels) -> np.ndarray:
        # The eager MI wrapper's second ``generate()`` builds a fresh attack
        # with the same seed — identical draws, re-run against the current
        # (post-base-step) running statistics, which the live-buffer attack
        # plan reads automatically.
        return self._generate(trainer, ctx, images, labels, self.strategy.random_start)

    def step(self, trainer: "CompiledTrainer", ctx, images, labels):
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        adversarial = self._generate(
            trainer, ctx, images, labels, self.strategy.random_start
        )
        plan = ctx.train_a
        plan.forward(adversarial)
        trainer.count_forwards(1, len(labels))
        loss, seed = plan.ce_loss_and_seed(labels)
        plan.run_backward({plan.graph.output_id: seed})
        trainer.accumulate(plan)
        return loss, None


class _TRADESAdapter:
    """TRADES, fully in plan: KL inner maximization + in-plan CE/KL outer.

    The adversarial plan's graph carries the robust KL term as a
    ``softmax_kl`` node whose ``p`` side is an aux leaf **aliasing the
    clean plan's logits buffer** — no copies, no eager graphs.  Seeding
    that node with ``beta`` yields the parameter gradients of the robust
    term plus, through the aux gradient accumulator, the KL gradient with
    respect to the clean logits, which joins the fused-CE seed in the clean
    plan's backward.  The attack plan (same capture, eval-lowered) carries
    its own KL node against the same aliased anchor for the inner loop.
    """

    needs_hidden_seeds = False

    def __init__(self, strategy) -> None:
        self.strategy = strategy

    def build(self, ctx: _SignatureContext, captured: Graph) -> None:
        s = self.strategy
        ctx.train_a = ctx.register(Plan(_train_graph(captured), grad="params"))
        clean_logits = ctx.train_a.values[ctx.train_a.graph.output_id]
        dtype = clean_logits.dtype

        graph_b = _train_graph(captured)
        _, kl_id = _append_kl(graph_b, "clean_logits", aux_first=True)
        ctx.train_b = ctx.register(
            Plan(
                graph_b.rebuild(),
                grad="params",
                seed_ids=(kl_id,),
                aux={"clean_logits": clean_logits},
                grad_aux=("clean_logits",),
            )
        )
        ctx.ids["kl"] = kl_id

        attack_graph, _ = _eval_graph(captured)
        _, attack_kl_id = _append_kl(attack_graph, "clean_logits", aux_first=True)
        ctx.attack = ctx.register(
            Plan(
                attack_graph.rebuild(),
                grad="input",
                seed_ids=(attack_kl_id,),
                aux={"clean_logits": clean_logits},
            )
        )
        ctx.ids["attack_kl"] = attack_kl_id
        ctx.one = ctx.scalar(1.0, dtype)
        ctx.beta_seed = ctx.scalar(s.beta, dtype)

    def _generate(self, trainer, ctx, images, labels) -> np.ndarray:
        """One fresh TRADES generation: training-mode anchor + KL-guided PGD.

        The eager ``generate()`` anchors the KL on a training-mode clean
        forward (running stats update once here, exactly like eager — and
        the same-step dropout mask reapplies bitwise); the attack plan's
        aux aliases that logits buffer, so no copy is taken.
        """
        s = self.strategy
        n = np.asarray(labels).reshape(-1).shape[0]
        plan_a, attack = ctx.train_a, ctx.attack
        plan_a.forward(images)
        trainer.count_forwards(1, n)
        attack_kl = ctx.ids["attack_kl"]

        def grad_step(adversarial: np.ndarray) -> np.ndarray:
            attack.forward(adversarial)
            attack.run_backward({attack_kl: ctx.one})
            return attack.input_grad()

        adversarial = _pgd_loop(
            grad_step, images,
            eps=s.eps, alpha=s.alpha, steps=s.steps,
            random_start=True, seed=s.seed,
        )
        trainer.stats.attack_grad_calls += s.steps
        trainer.count_forwards(s.steps, s.steps * n)
        return adversarial

    def replay_generate(self, trainer, ctx, images, labels) -> np.ndarray:
        return self._generate(trainer, ctx, images, labels)

    def step(self, trainer: "CompiledTrainer", ctx, images, labels):
        s = self.strategy
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        n = len(labels)
        plan_a, plan_b = ctx.train_a, ctx.train_b
        adversarial = self._generate(trainer, ctx, images, labels)
        # Outer term order matches eager: clean forward, then adversarial.
        plan_a.forward(images)
        natural, ce_seed = plan_a.ce_loss_and_seed(labels)
        plan_b.forward(adversarial)
        trainer.count_forwards(2, 2 * n)
        robust = float(plan_b.values[ctx.ids["kl"]])
        plan_b.run_backward({ctx.ids["kl"]: ctx.beta_seed})
        trainer.accumulate(plan_b)
        np.add(ce_seed, plan_b.aux_grad("clean_logits"), out=ce_seed)
        plan_a.run_backward({plan_a.graph.output_id: ce_seed})
        trainer.accumulate(plan_a)
        return natural + robust * s.beta, None


class _MARTAdapter:
    """MART, fully in plan: boosted CE + misclassification-weighted KL.

    The clean plan's graph carries both loss terms as plan nodes — the
    ``mart_boosted_ce`` margin weighting and the ``mart_weighted_kl``
    (the reverse KL orientation, per-example, weighted by ``1 - p_clean[y]``)
    — over two aux leaves: the adversarial logits (aliasing the adversarial
    plan's output buffer) and a pooled one-hot ``true_mask`` filled in
    place per batch.  One seed at the in-plan total drives the whole
    backward; the adversarial plan is seeded with the aux gradient.
    """

    needs_hidden_seeds = False

    def __init__(self, strategy) -> None:
        self.strategy = strategy

    def build(self, ctx: _SignatureContext, captured: Graph) -> None:
        s = self.strategy
        # Eager MART forwards the adversarial batch first, then the clean
        # one; the loss nodes live on the (later) clean plan.
        ctx.train_b = ctx.register(Plan(_train_graph(captured), grad="params"))
        adv_logits = ctx.train_b.values[ctx.train_b.graph.output_id]
        graph_a = _train_graph(captured)
        n, k, dtype = _logits_signature(graph_a)
        adv_id = graph_a.add_aux("adv_logits", (n, k), dtype)
        mask_id = graph_a.add_aux("true_mask", (n, k), dtype)
        bce_id = graph_a.add_op(
            "mart_boosted_ce", (adv_id, mask_id), (), dtype, name="boosted_ce"
        )
        wkl_id = graph_a.add_op(
            "mart_weighted_kl", (graph_a.output_id, adv_id, mask_id), (), dtype,
            name="weighted_kl",
        )
        beta_id = graph_a.add_const(np.asarray(s.beta, dtype=dtype))
        scaled_id = graph_a.add_op("mul", (wkl_id, beta_id), (), dtype)
        total_id = graph_a.add_op("add", (bce_id, scaled_id), (), dtype, name="total")
        ctx.train_a = ctx.register(
            Plan(
                graph_a.rebuild(),
                grad="params",
                seed_ids=(total_id,),
                aux={"adv_logits": adv_logits},
                grad_aux=("adv_logits",),
            )
        )
        ctx.ids["total"] = total_id
        ctx.attack = ctx.register(Plan(_eval_graph(captured)[0], grad="input"))
        ctx.one = ctx.scalar(1.0, dtype)
        ctx.arange = np.arange(n)

    def _generate(self, trainer, ctx, images, labels) -> np.ndarray:
        """One fresh MART generation (CE-guided PGD, forced random start)."""
        s = self.strategy
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        attack = ctx.attack

        def grad_step(adversarial: np.ndarray) -> np.ndarray:
            _, gradient = attack.value_and_grad_ce(adversarial, labels)
            return gradient

        adversarial = _pgd_loop(
            grad_step, images,
            eps=s.eps, alpha=s.alpha, steps=s.steps,
            random_start=True, seed=s.seed,
        )
        trainer.stats.attack_grad_calls += s.steps
        trainer.count_forwards(s.steps, s.steps * len(labels))
        return adversarial

    def replay_generate(self, trainer, ctx, images, labels) -> np.ndarray:
        return self._generate(trainer, ctx, images, labels)

    def step(self, trainer: "CompiledTrainer", ctx, images, labels):
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        n = len(labels)
        adversarial = self._generate(trainer, ctx, images, labels)
        plan_a, plan_b = ctx.train_a, ctx.train_b
        plan_b.forward(adversarial)
        mask = plan_a.aux_values["true_mask"]
        mask.fill(0.0)
        mask[ctx.arange, labels] = 1.0
        plan_a.forward(images)
        trainer.count_forwards(2, 2 * n)
        total = float(plan_a.values[ctx.ids["total"]])
        plan_a.run_backward({ctx.ids["total"]: ctx.one})
        trainer.accumulate(plan_a)
        plan_b.run_backward({plan_b.graph.output_id: plan_a.aux_grad("adv_logits")})
        trainer.accumulate(plan_b)
        return total, None


def _append_hsic_terms(graph: Graph, config, normalized_eps: float = 1e-9) -> Dict[str, int]:
    """Append the IB-RAR HSIC side terms to a training graph, in plan.

    Per selected hidden layer: flatten, an ``rbf_gram`` node, the
    one-sided-centered ``hsic_trace`` against the per-batch input and label
    Gram aux inputs, and (for normalized HSIC) the self-HSIC normalizer
    with the eager sqrt/eps composition.  The returned ids name the side
    total (``side``) and the two per-loss sums (``sum_x`` / ``sum_y``).
    """
    from ..core.losses import resolve_mi_layers

    selected = resolve_mi_layers(graph.outputs.keys(), config.layers)
    n = graph.input_node.shape[0]
    dtype = graph.output_node.dtype
    kx_id = graph.add_aux("hsic_kx", (n, n), dtype)
    ky_id = graph.add_aux("hsic_ky", (n, n), dtype)
    normalized = config.normalized_hsic
    if normalized:
        norm_x_id = graph.add_aux("hsic_norm_x", (), dtype)
        norm_y_id = graph.add_aux("hsic_norm_y", (), dtype)
        eps_id = graph.add_const(np.asarray(normalized_eps, dtype=dtype))
    sum_x_id: Optional[int] = None
    sum_y_id: Optional[int] = None
    for name in selected:
        hidden_id = graph.outputs[name]
        hidden_node = graph.node(hidden_id)
        if len(hidden_node.shape) > 2:
            flat_shape = (n, int(np.prod(hidden_node.shape[1:])))
            flat_id = graph.add_op(
                "reshape", (hidden_id,), flat_shape, dtype, meta={"shape": flat_shape}
            )
        else:
            flat_id = hidden_id
        gram_id = graph.add_op(
            "rbf_gram", (flat_id,), (n, n), dtype, meta={"sigma": config.sigma}
        )

        def term(other_id: int, norm_other_id: Optional[int], norm_layer_id: Optional[int]) -> int:
            cross_id = graph.add_op("hsic_trace", (gram_id, other_id), (), dtype)
            if not normalized:
                return cross_id
            prod_id = graph.add_op("mul", (norm_layer_id, norm_other_id), (), dtype)
            inner_id = graph.add_op("add", (prod_id, eps_id), (), dtype)
            den_id = graph.add_op("sqrt", (inner_id,), (), dtype)
            den_eps_id = graph.add_op("add", (den_id, eps_id), (), dtype)
            return graph.add_op("div", (cross_id, den_eps_id), (), dtype)

        norm_layer_id = (
            graph.add_op("hsic_trace", (gram_id, gram_id), (), dtype) if normalized else None
        )
        term_x = term(kx_id, norm_x_id if normalized else None, norm_layer_id)
        term_y = term(ky_id, norm_y_id if normalized else None, norm_layer_id)
        sum_x_id = term_x if sum_x_id is None else graph.add_op("add", (sum_x_id, term_x), (), dtype)
        sum_y_id = term_y if sum_y_id is None else graph.add_op("add", (sum_y_id, term_y), (), dtype)
    alpha_id = graph.add_const(np.asarray(config.alpha, dtype=dtype))
    beta_id = graph.add_const(np.asarray(config.beta, dtype=dtype))
    scaled_x = graph.add_op("mul", (sum_x_id, alpha_id), (), dtype)
    scaled_y = graph.add_op("mul", (sum_y_id, beta_id), (), dtype)
    neg_y = graph.add_op("neg", (scaled_y,), (), dtype)
    side_id = graph.add_op("add", (scaled_x, neg_y), (), dtype, name="mi_side")
    graph.outputs["mi_sum_x"] = sum_x_id
    graph.outputs["mi_sum_y"] = sum_y_id
    return {"side": side_id, "sum_x": sum_x_id, "sum_y": sum_y_id}


class _MILossAdapter:
    """IB-RAR wrapper: base term through plans + in-plan HSIC side terms.

    The HSIC regularizers are plan nodes reading the training plan's hidden
    buffers: per layer an RBF Gram node and one-sided-centered trace nodes
    against the per-batch input/label Gram matrices, which a pooled
    :class:`~repro.compile.kernels.GramCache` refreshes in place (together
    with the nHSIC normalizers) before each forward.  Eq. (1) shares one
    plan between the fused-CE seed and the side terms; Eq. (2) runs the
    adversarial base through its own plans and a dedicated hidden plan for
    the MI terms — matching the extra ``forward_with_hidden`` pass the
    eager loss performs.  With ``mi_on_adversarial=True`` that pass (and
    the input Gram) sees a **re-generated** adversarial batch: the base
    adapter's ``replay_generate`` reruns its attack with a fresh
    same-seeded RNG against the post-base-step running statistics, exactly
    like the eager wrapper's second ``generate()`` call.
    """

    needs_hidden_seeds = True

    def __init__(self, strategy, base_adapter) -> None:
        self.strategy = strategy
        self.base = base_adapter  # None => fused clean-CE base (Eq. 1)

    def build(self, ctx: _SignatureContext, captured: Graph) -> None:
        config = self.strategy.config
        mi_graph = _train_graph(captured)
        ids = _append_hsic_terms(mi_graph, config)
        mi_graph = mi_graph.rebuild()
        n = mi_graph.input_node.shape[0]
        input_dim = int(np.prod(mi_graph.input_node.shape[1:]))
        dtype = mi_graph.output_node.dtype
        gram_pool = BufferPool()
        ctx.gram = GramCache(
            gram_pool,
            n,
            input_dim,
            num_classes=self.strategy.num_classes,
            dtype=dtype,
            sigma=config.sigma,
            normalized=config.normalized_hsic,
        )
        ctx.pools.append(gram_pool)
        aux = {"hsic_kx": ctx.gram.kx, "hsic_ky": ctx.gram.ky}
        if config.normalized_hsic:
            aux["hsic_norm_x"] = ctx.gram.norm_x
            aux["hsic_norm_y"] = ctx.gram.norm_y
        mi_plan = Plan(mi_graph, grad="params", seed_ids=(ids["side"],), aux=aux)
        ctx.ids["mi_side"] = ids["side"]
        ctx.one = ctx.scalar(1.0, dtype)
        if self.base is None:
            ctx.train_a = ctx.register(mi_plan)
            ctx.train_mi = mi_plan
        else:
            self.base.build(ctx, captured)
            ctx.train_mi = ctx.register(mi_plan)

    def _side_values(self, plan: Plan) -> Tuple[float, float, float]:
        side = float(plan.output_value("mi_side"))
        hsic_x = float(plan.output_value("mi_sum_x"))
        hsic_y = float(plan.output_value("mi_sum_y"))
        return side, hsic_x, hsic_y

    def step(self, trainer: "CompiledTrainer", ctx, images, labels):
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if self.base is None:
            # Eq. (1) fused path: one training forward shares the CE term,
            # the HSIC terms and the training-accuracy logits.
            plan = ctx.train_a
            ctx.gram.update(images, labels)
            logits = plan.forward(images)
            trainer.count_forwards(1, len(labels))
            base_value, ce_seed = plan.ce_loss_and_seed(labels)
            side_value, hsic_x, hsic_y = self._side_values(plan)
            plan.run_backward(
                {plan.graph.output_id: ce_seed, ctx.ids["mi_side"]: ctx.one}
            )
            trainer.accumulate(plan)
            returned_logits = logits
        else:
            # Eq. (2): the adversarial base runs through its own adapter,
            # then the MI terms get their dedicated hidden forward — on the
            # clean batch, or (mi_on_adversarial) on a fresh re-generation.
            base_value, _ = self.base.step(trainer, ctx, images, labels)
            mi_inputs = images
            if self.strategy.config.mi_on_adversarial:
                mi_inputs = self.base.replay_generate(trainer, ctx, images, labels)
            plan = ctx.train_mi
            ctx.gram.update(mi_inputs, labels)
            plan.forward(mi_inputs)
            trainer.count_forwards(1, len(labels))
            side_value, hsic_x, hsic_y = self._side_values(plan)
            plan.run_backward({ctx.ids["mi_side"]: ctx.one})
            trainer.accumulate(plan)
            returned_logits = None
        total = base_value + side_value
        self.strategy.last_components = {
            "base": base_value,
            "hsic_x": hsic_x,
            "hsic_y": hsic_y,
            "total": total,
        }
        return total, returned_logits


def build_adapter(strategy):
    """Map a loss strategy to its compiled adapter (``None`` = stay eager).

    Exact-type matches only (a user subclass may override the math, and the
    adapters replay the *base-class* computation — mixing those silently
    would train the wrong objective).  The one ``isinstance`` is the CE base
    inside the IB-RAR wrapper, which mirrors the eager fused-path condition
    exactly: eager ``MILoss.loss_and_logits`` also dispatches CE subclasses
    to the plain CE term without calling their overrides.
    """
    from ..core.losses import AdversarialMILoss, MILoss
    from ..training.adversarial import (
        CrossEntropyLoss,
        MARTLoss,
        PGDAdversarialLoss,
        TRADESLoss,
    )

    if type(strategy) in (MILoss, AdversarialMILoss):
        # The fused single-forward path mirrors the eager ``fused`` flag
        # exactly: CE base (subclasses included) *and* clean MI inputs.
        # ``mi_on_adversarial`` instead takes the non-fused route — the
        # base through its own adapter (which must replay its generate),
        # the MI terms on a re-generated batch.
        if isinstance(strategy.base_loss, CrossEntropyLoss):
            if not strategy.config.mi_on_adversarial:
                return _MILossAdapter(strategy, None)
            if type(strategy.base_loss) is not CrossEntropyLoss:
                return None  # a CE subclass may override the eager base call
            return _MILossAdapter(strategy, _CEAdapter())
        inner = build_adapter(strategy.base_loss)
        if inner is None:
            return None
        return _MILossAdapter(strategy, inner)
    if type(strategy) is CrossEntropyLoss:
        return _CEAdapter()
    if type(strategy) is PGDAdversarialLoss:
        return _PGDAdversarialAdapter(strategy)
    if type(strategy) is TRADESLoss:
        return _TRADESAdapter(strategy)
    if type(strategy) is MARTLoss:
        return _MARTAdapter(strategy)
    return None


# --------------------------------------------------------------------------- #
# the trainer-facing cache
# --------------------------------------------------------------------------- #
class CompiledTrainer:
    """Shape-dispatching training-plan cache for one (model, optimizer, loss).

    :meth:`train_batch` runs one full training step — inner attack, loss,
    parameter gradients, fused in-place optimizer update — through compiled
    plans, or returns ``None`` when the batch must take the eager path
    (unsupported strategy, first sighting of a signature, capture failure,
    reallocated parameter storage).  A changed channel mask (the IB-RAR
    Eq. 3 refresh installs a new mask array) invalidates every plan, since
    masks are baked into graphs as constants.
    """

    def __init__(
        self,
        model,
        optimizer,
        loss_strategy,
        max_signatures: int = 4,
        provider: Optional[str] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_strategy = loss_strategy
        self.provider = resolve_provider_name(provider)
        self.adapter = build_adapter(loss_strategy)
        # Compiled training needs in-place updates (live plans alias
        # parameter storage); a custom Optimizer subclass that implements
        # only step() has no fused path, so the whole trainer stays eager.
        if self.adapter is not None and not _supports_fused_step(optimizer):
            self.adapter = None
        self.stats = TrainingCompileStats()
        self._cache = SignatureCache(
            self._build_context,
            capacity=max_signatures,
            name="trainer",
            namespace=self.provider,
        )
        self._accums: Dict[int, np.ndarray] = {}
        self._mask_ref = getattr(model, "channel_mask", None)
        self._fallback_counter = get_registry().counter("trainer.fallback")

    def _fallback(self) -> None:
        """Record a *genuine* eager fallback (a batch that stays eager forever)."""
        self.stats.fallbacks += 1
        self._fallback_counter.inc()

    def _build_context(self, sample: np.ndarray) -> _SignatureContext:
        # Every Plan the adapters build inside the context (training plan,
        # derived attack plan, loss plans) inherits the trainer's provider
        # through the thread-local scope — no per-adapter plumbing.
        with use_provider(self.provider):
            ctx = _SignatureContext(self.model, sample, self.adapter, self.stats)
        self.stats.plans_built += len(ctx.plans)
        return ctx

    @property
    def supported(self) -> bool:
        """Whether the strategy (and optimizer) have a compiled path at all."""
        return self.adapter is not None

    def count_forwards(self, calls: int, examples: int) -> None:
        """Record plan forward replays (the compiled ForwardPassCounter)."""
        self.stats.compiled_forward_calls += calls
        self.stats.compiled_forward_examples += examples

    @property
    def pool_allocations(self) -> int:
        """Total buffer allocations across every live context's pools."""
        return sum(
            ctx.pool_allocations
            for ctx in self._cache.entries.values()
            if ctx is not None
        )

    def profile(self) -> Dict[str, dict]:
        """Per-op-kind executor profile by plan signature (see :mod:`repro.obs`).

        Aggregates every plan a signature context owns (training plans and
        the derived attack plan alike), so one warm PGD-AT step shows the
        inner-attack replays and the fused training backward in one table.
        """
        profiles: Dict[str, dict] = {}
        for ctx in self._cache.entries.values():
            if ctx is None:
                continue
            for plan in ctx.plans:
                _merge_snapshot(profiles, plan.profile_snapshot())
        return profiles

    @property
    def plans(self) -> int:
        return sum(len(ctx.plans) for ctx in self._cache.entries.values() if ctx is not None)

    def invalidate(self) -> None:
        """Drop every cached plan (next batches recompile on second sighting)."""
        self._cache.clear()

    # -- gradient accumulation --------------------------------------------------
    def accumulate(self, plan: Plan) -> None:
        """Add ``plan``'s parameter gradients into the per-parameter sums."""
        for param_id, buffer in plan.param_grads().items():
            accumulator = self._accums.get(param_id)
            if accumulator is None:
                accumulator = np.zeros_like(buffer)
                self._accums[param_id] = accumulator
            np.add(accumulator, buffer, out=accumulator)

    def _zero_accumulators(self) -> None:
        for accumulator in self._accums.values():
            accumulator.fill(0)

    # -- the batch step ----------------------------------------------------------
    def train_batch(self, images, labels) -> Optional[Tuple[float, np.ndarray]]:
        """One compiled training step; ``None`` means "run this batch eagerly".

        Returns ``(loss, predictions)`` on success.  The optimizer update has
        already been applied (in place, via ``step_with_grads``) and the
        predictions reproduce the eager trainer's training-accuracy pass —
        shared clean logits where the strategy provides them, an extra
        training-mode forward (with its running-stat update) otherwise.
        """
        if self.adapter is None:
            self.stats.eager_batches += 1
            self._fallback()  # no compiled path for this strategy/optimizer
            return None
        images = np.asarray(images, dtype=get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if _mask_changed(self.model.channel_mask, self._mask_ref):
            self.invalidate()
        self._mask_ref = self.model.channel_mask
        ctx = self._cache.lookup(images)
        if ctx is None:
            self.stats.eager_batches += 1
            if self._cache.failed(images):
                self._fallback()  # memoized capture failure, never retried
            return None
        self._zero_accumulators()
        counters_before = (
            self.stats.compiled_forward_calls,
            self.stats.compiled_forward_examples,
            self.stats.attack_grad_calls,
        )
        try:
            with _trace.span("compile.train_batch"):
                loss, logits = self.adapter.step(self, ctx, images, labels)
                if logits is not None:
                    predictions = np.argmax(logits, axis=1)
                else:
                    predictions = np.argmax(ctx.train_a.forward(images), axis=1)
                    self.count_forwards(1, len(labels))
        except CompileError:
            # A replay failure (e.g. parameter storage reallocated behind the
            # plan's back by an interleaved eager ``optimizer.step()``).
            # Unlike a capture failure — deterministic, remembered as None —
            # this is recoverable: drop the context so the next sighting of
            # this signature recompiles against the current storage.  The
            # batch re-runs eagerly (where ForwardPassCounter sees it), so
            # whatever this partial step already recorded is rolled back —
            # otherwise the run's forward telemetry would double-count it.
            (
                self.stats.compiled_forward_calls,
                self.stats.compiled_forward_examples,
                self.stats.attack_grad_calls,
            ) = counters_before
            self._cache.evict(images)
            self.stats.eager_batches += 1
            self._fallback()
            return None
        grads = [self._accums.get(id(p)) for p in self.optimizer.parameters]
        self.optimizer.step_with_grads(grads)
        self.stats.compiled_batches += 1
        return float(loss), predictions
