"""Compiled training: static plans for the full train step.

This module extends :mod:`repro.compile` from eval-mode inference to the
training loop itself.  A :class:`CompiledTrainer` owns, per input signature:

* one (or two, for two-forward losses like TRADES/MART) **training plans** —
  the training-mode forward captured with live parameters, batch-stat batch
  norms (running statistics updated in place, exactly like eager), named
  hidden outputs, and a full parameter-gradient backward accumulated into
  pooled buffers;
* one **attack plan** — the eval-mode forward with live parameters and an
  input-gradient backward, driving the inner maximization of the
  adversarial-training losses (eager attacks also run the model in eval
  mode, so this reproduces their semantics).

Loss strategies are mapped to *adapters* that replay the exact eager
computation through those plans: the classification term runs as the fused
softmax-CE seed, while composite side terms (IB-RAR's HSIC regularizers,
TRADES/MART KL terms) are composed **eagerly on the plans' logit/hidden
buffers** — tiny graphs over ``(N, classes)`` logits or ``m x m`` kernels —
and their leaf gradients are injected back into the plan backward via
:meth:`~repro.compile.executor.Plan.run_backward`.  Parameter gradients from
every backward replay are summed into per-parameter accumulators, and the
optimizer applies them with its fused in-place
:meth:`~repro.nn.optim.Optimizer.step_with_grads` kernels — which is what
keeps the live-parameter plans valid across steps.

Anything the adapters cannot express (unknown strategies,
``mi_on_adversarial``, dropout-bearing models, ragged batch signatures on
their first sighting) falls back to the eager path batch by batch; opting in
is always safe.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn.tensor import Tensor, get_default_dtype
from ..nn import functional as F
from .executor import Plan
from .graph import CompileError, capture_forward
from .kernels import linf_step
from .passes import optimize

__all__ = ["CompiledTrainer", "LiveEvalModel", "TrainingCompileStats", "build_adapter"]


@dataclass
class TrainingCompileStats:
    """Compiled-vs-eager accounting for one :class:`CompiledTrainer`."""

    compiled_batches: int = 0
    eager_batches: int = 0
    plans_built: int = 0
    attack_grad_calls: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "compiled_batches": self.compiled_batches,
            "eager_batches": self.eager_batches,
            "plans_built": self.plans_built,
            "attack_grad_calls": self.attack_grad_calls,
        }

    def snapshot(self) -> Tuple[int, int]:
        """``(compiled_batches, eager_batches)`` — diff across an epoch."""
        return self.compiled_batches, self.eager_batches

    def merge(self, other: "TrainingCompileStats") -> "TrainingCompileStats":
        """Counter-wise sum (combining retired and live trainer instances)."""
        return TrainingCompileStats(
            compiled_batches=self.compiled_batches + other.compiled_batches,
            eager_batches=self.eager_batches + other.eager_batches,
            plans_built=self.plans_built + other.plans_built,
            attack_grad_calls=self.attack_grad_calls + other.attack_grad_calls,
        )


# --------------------------------------------------------------------------- #
# plan construction
# --------------------------------------------------------------------------- #
def _training_plan(model, sample: np.ndarray, hidden_seeds: bool = True) -> Plan:
    # Hidden outputs exist only for adapters that consume them (the IB-RAR
    # wrapper): naming them protects those nodes from elementwise-chain
    # fusion, and registering them as seed points costs the dead-write
    # optimization on their gradient buffers — pure overhead for CE and the
    # adversarial benchmarks.
    graph = capture_forward(
        model, sample, training=True, with_hidden=hidden_seeds, live_params=True
    )
    graph = optimize(graph, fold_bn=False, fuse=True)
    seed_ids = tuple(graph.outputs.values()) if hidden_seeds else ()
    return Plan(graph, grad="params", seed_ids=seed_ids)


def _attack_plan(model, sample: np.ndarray) -> Plan:
    was_training = model.training
    model.eval()
    try:
        graph = capture_forward(model, sample, live_params=True)
    finally:
        model.train(was_training)
    graph = optimize(graph, fold_bn=False, fuse=True)
    return Plan(graph, grad="input")


def _supports_fused_step(optimizer) -> bool:
    """Whether the optimizer overrides the in-place fused update path.

    The base :class:`~repro.nn.optim.Optimizer.step_with_grads` raises
    ``NotImplementedError``; a custom subclass implementing only ``step()``
    cannot keep live-parameter plans valid, so compiled training declines.
    """
    from ..nn.optim import Optimizer

    return type(optimizer).step_with_grads is not Optimizer.step_with_grads


def _mask_changed(current, reference) -> bool:
    """Whether a channel mask differs *by value* from the captured one.

    Refreshing the Eq. (3) mask installs a fresh array every time; when the
    channel selection has stabilized the values are identical and the plans
    (which bake the mask in as a constant) stay valid — only a value change
    forces recapture.
    """
    if current is reference:
        return False
    if current is None or reference is None:
        return True
    return not np.array_equal(current, reference)


class _SignatureContext:
    """The plans serving one ``(input shape, dtype)`` signature."""

    def __init__(
        self,
        model,
        sample: np.ndarray,
        slots: int,
        needs_attack: bool,
        hidden_seeds: bool,
    ) -> None:
        self.train_a = _training_plan(model, sample, hidden_seeds=hidden_seeds)
        self.train_b = (
            _training_plan(model, sample, hidden_seeds=hidden_seeds) if slots >= 2 else None
        )
        self.attack = _attack_plan(model, sample) if needs_attack else None

    @property
    def plans(self) -> List[Plan]:
        return [p for p in (self.train_a, self.train_b, self.attack) if p is not None]


class _SignatureCache:
    """Shape-keyed compile-on-second-sighting cache, shared policy.

    One instance backs :class:`CompiledTrainer` (entries are
    :class:`_SignatureContext`) and one backs :class:`LiveEvalModel`
    (entries are eval :class:`Plan`).  A signature seen once runs eagerly
    (a ragged final batch is cheaper eager than captured); the second
    sighting calls ``build``.  Capture failures are memoized as ``None``
    (deterministic — e.g. dropout); :meth:`evict` drops a *recoverable*
    failure (reallocated parameter storage) so the next sighting rebuilds.
    """

    def __init__(self, build: Callable[[np.ndarray], object], capacity: int) -> None:
        self._build = build
        self.capacity = capacity
        self.entries: Dict[Tuple[Tuple[int, ...], str], Optional[object]] = {}
        self._misses: Dict[Tuple[Tuple[int, ...], str], int] = {}

    def clear(self) -> None:
        self.entries.clear()
        self._misses.clear()

    def lookup(self, sample: np.ndarray):
        key = (sample.shape, sample.dtype.str)
        if key in self.entries:
            return self.entries[key]
        if self._misses.get(key, 0) == 0:
            self._misses[key] = 1
            return None
        if sum(1 for entry in self.entries.values() if entry is not None) >= self.capacity:
            return None
        try:
            entry = self._build(sample)
        except CompileError:
            entry = None  # remember the failure; fall back for this signature
        self.entries[key] = entry
        return entry

    def evict(self, sample: np.ndarray) -> None:
        self.entries.pop((sample.shape, sample.dtype.str), None)


def _pgd_loop(
    attack_plan: Plan,
    images: np.ndarray,
    labels: np.ndarray,
    eps: float,
    alpha: float,
    steps: int,
    random_start: bool,
    seed: int,
    clip_min: float = 0.0,
    clip_max: float = 1.0,
    logits_seed: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """Replay :class:`repro.attacks.PGD`'s generation loop through a plan.

    Reproduces the eager attack exactly — the same fresh per-batch RNG and
    random-start draw, the same fused ``linf_step`` ping-pong buffers — with
    the per-step gradient query served by the live-parameter eval plan.
    ``logits_seed`` swaps the default fused-CE loss for a custom
    logits-level loss (TRADES' KL inner maximization): it receives the
    plan-owned logits and returns the output-gradient seed.
    """
    images = np.asarray(images, dtype=get_default_dtype())
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    rng = np.random.default_rng(seed)
    adversarial = images.copy()
    if random_start and eps > 0:
        adversarial = adversarial + rng.uniform(-eps, eps, size=images.shape)
        adversarial = np.clip(adversarial, clip_min, clip_max)
    buffers = (np.empty_like(images), np.empty_like(images))
    for step in range(steps):
        if logits_seed is None:
            _, gradient = attack_plan.value_and_grad_ce(adversarial, labels)
        else:
            logits = attack_plan.forward(adversarial)
            gradient = attack_plan.backward(logits_seed(logits))
        adversarial = linf_step(
            adversarial, gradient, alpha, images, eps, clip_min, clip_max,
            out=buffers[step % 2],
        )
    return adversarial


class LiveEvalModel:
    """Eval-mode predictions through live-parameter plans, reusable forever.

    The :class:`~repro.compile.CompiledModel` snapshots weights, so a
    training loop would have to re-capture it after every epoch.  This view
    instead binds eval-semantics plans to the **live** parameter storage
    (like the adapters' attack plans): one capture per batch signature
    serves every epoch of in-training evaluation, tracking in-place weight
    updates and the running batch-norm statistics automatically.  The
    interface mirrors ``CompiledModel`` (``__call__``/``predict``/
    ``value_and_grad``) with per-batch eager fallback; a changed channel
    mask or reallocated parameter storage invalidates the cached plans.
    """

    def __init__(self, module, max_plans: int = 8) -> None:
        self.module = module
        self._cache = _SignatureCache(
            lambda sample: _attack_plan(self.module, sample), capacity=max_plans
        )
        self._mask_ref = getattr(module, "channel_mask", None)

    def invalidate(self) -> None:
        self._cache.clear()

    @property
    def _plans(self) -> Dict[Tuple[Tuple[int, ...], str], Optional[Plan]]:
        return self._cache.entries

    def _plan_for(self, arr: np.ndarray) -> Optional[Plan]:
        if _mask_changed(getattr(self.module, "channel_mask", None), self._mask_ref):
            self.invalidate()
        self._mask_ref = getattr(self.module, "channel_mask", None)
        # Eval shapes recur every epoch, so from the second epoch on every
        # hook batch replays a plan.
        return self._cache.lookup(arr)

    def __call__(self, x) -> np.ndarray:
        arr = np.asarray(x.data if isinstance(x, Tensor) else x, dtype=get_default_dtype())
        plan = self._plan_for(arr)
        if plan is not None:
            try:
                return plan.forward(arr)
            except CompileError:  # e.g. parameter storage reallocated
                self._cache.evict(arr)
        from ..nn.tensor import no_grad

        was_training = self.module.training
        self.module.eval()
        try:
            with no_grad():
                return self.module.forward(Tensor(arr)).data
        finally:
            self.module.train(was_training)

    def predict(self, x) -> np.ndarray:
        return np.argmax(self(x), axis=1)

    def value_and_grad(self, x, labels, loss: str = "ce") -> Tuple[float, np.ndarray]:
        if loss != "ce":
            raise ValueError(f"unknown compiled loss '{loss}'; supported: 'ce'")
        arr = np.asarray(x.data if isinstance(x, Tensor) else x, dtype=get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        plan = self._plan_for(arr)
        if plan is not None:
            try:
                return plan.value_and_grad_ce(arr, labels)
            except CompileError:
                self._cache.evict(arr)
        was_training = self.module.training
        self.module.eval()
        try:
            x_t = Tensor(arr, requires_grad=True)
            loss_t = F.cross_entropy(self.module.forward(x_t), labels)
            loss_t.backward()
            return float(loss_t.item()), x_t.grad
        finally:
            self.module.train(was_training)


# --------------------------------------------------------------------------- #
# loss adapters
# --------------------------------------------------------------------------- #
class _CEAdapter:
    """Plain cross-entropy: one training forward, fused-CE seed."""

    slots = 1
    needs_attack = False
    needs_hidden_seeds = False

    def step(self, trainer: "CompiledTrainer", ctx, images, labels):
        plan = ctx.train_a
        logits = plan.forward(images)
        loss, seed = plan.ce_loss_and_seed(labels)
        plan.run_backward({plan.graph.output_id: seed})
        trainer.accumulate(plan)
        return loss, logits


class _PGDAdversarialAdapter:
    """Madry PGD-AT: compiled inner maximization + fused CE on the result."""

    slots = 1
    needs_attack = True
    needs_hidden_seeds = False

    def __init__(self, strategy) -> None:
        self.strategy = strategy

    def step(self, trainer: "CompiledTrainer", ctx, images, labels):
        s = self.strategy
        adversarial = _pgd_loop(
            ctx.attack, images, labels,
            eps=s.eps, alpha=s.alpha, steps=s.steps,
            random_start=s.random_start, seed=s.seed,
        )
        trainer.stats.attack_grad_calls += s.steps
        plan = ctx.train_a
        plan.forward(adversarial)
        loss, seed = plan.ce_loss_and_seed(labels)
        plan.run_backward({plan.graph.output_id: seed})
        trainer.accumulate(plan)
        return loss, None


class _TRADESAdapter:
    """TRADES: KL inner maximization + eager-composed CE/KL over two plans."""

    slots = 2
    needs_attack = True
    needs_hidden_seeds = False

    def __init__(self, strategy) -> None:
        self.strategy = strategy

    def step(self, trainer: "CompiledTrainer", ctx, images, labels):
        s = self.strategy
        plan_a, plan_b = ctx.train_a, ctx.train_b
        # generate(): the eager loss anchors the KL on a training-mode clean
        # forward (running stats update once here, exactly like eager).
        clean_anchor = Tensor(np.array(plan_a.forward(images), copy=True))

        def kl_seed(logits: np.ndarray) -> np.ndarray:
            q = Tensor(logits, requires_grad=True)
            F.kl_div_with_logits(clean_anchor, q).backward()
            return q.grad

        adversarial = _pgd_loop(
            ctx.attack, images, labels,
            eps=s.eps, alpha=s.alpha, steps=s.steps,
            random_start=True, seed=s.seed, logits_seed=kl_seed,
        )
        trainer.stats.attack_grad_calls += s.steps
        a = Tensor(plan_a.forward(images), requires_grad=True)
        b = Tensor(plan_b.forward(adversarial), requires_grad=True)
        natural = F.cross_entropy(a, labels)
        robust = F.kl_div_with_logits(a, b)
        total = natural + robust * s.beta
        total.backward()
        plan_a.run_backward({plan_a.graph.output_id: a.grad})
        trainer.accumulate(plan_a)
        plan_b.run_backward({plan_b.graph.output_id: b.grad})
        trainer.accumulate(plan_b)
        return float(total.item()), None


class _MARTAdapter:
    """MART: boosted CE + misclassification-weighted KL over two plans."""

    slots = 2
    needs_attack = True
    needs_hidden_seeds = False

    def __init__(self, strategy) -> None:
        self.strategy = strategy

    def step(self, trainer: "CompiledTrainer", ctx, images, labels):
        s = self.strategy
        adversarial = _pgd_loop(
            ctx.attack, images, labels,
            eps=s.eps, alpha=s.alpha, steps=s.steps,
            random_start=True, seed=s.seed,
        )
        trainer.stats.attack_grad_calls += s.steps
        # Eager MART forwards the adversarial batch first, then the clean one.
        adv_logits = Tensor(ctx.train_b.forward(adversarial), requires_grad=True)
        clean_logits = Tensor(ctx.train_a.forward(images), requires_grad=True)
        num_classes = adv_logits.shape[1]
        adv_probs = F.softmax(adv_logits, axis=1)
        clean_probs = F.softmax(clean_logits, axis=1)
        true_mask = Tensor(F.one_hot(labels, num_classes))
        adv_true = (adv_probs * true_mask).sum(axis=1)
        adv_wrong_max = (adv_probs + true_mask * (-1e9)).max(axis=1)
        boosted_ce = -((adv_true + 1e-12).log()) - ((1.0 - adv_wrong_max + 1e-12).log())
        kl_per_example = F.kl_div_with_logits(clean_logits, adv_logits, reduction="none")
        clean_true = (clean_probs * true_mask).sum(axis=1)
        weighted_kl = kl_per_example * (1.0 - clean_true)
        total = boosted_ce.mean() + weighted_kl.mean() * s.beta
        total.backward()
        ctx.train_b.run_backward({ctx.train_b.graph.output_id: adv_logits.grad})
        trainer.accumulate(ctx.train_b)
        ctx.train_a.run_backward({ctx.train_a.graph.output_id: clean_logits.grad})
        trainer.accumulate(ctx.train_a)
        return float(total.item()), None


class _MILossAdapter:
    """IB-RAR wrapper: base term through plans + eager HSIC side terms.

    The side terms consume the training plan's hidden-activation buffers as
    eager leaves; their gradients are injected into the same plan backward
    that carries the classification seed (Eq. 1, the fused-CE base) or into
    a dedicated clean-forward backward (Eq. 2, adversarial bases — matching
    the extra ``forward_with_hidden`` pass the eager loss performs).
    """

    needs_hidden_seeds = True

    def __init__(self, strategy, base_adapter) -> None:
        self.strategy = strategy
        self.base = base_adapter  # None => fused clean-CE base (Eq. 1)
        self.slots = base_adapter.slots if base_adapter is not None else 1
        self.needs_attack = base_adapter.needs_attack if base_adapter is not None else False

    def _side_terms(self, plan: Plan, images, labels):
        from ..core.losses import mi_regularizer_terms

        config = self.strategy.config
        hidden_ids = plan.graph.outputs
        leaves = OrderedDict(
            (name, Tensor(plan.values[node_id], requires_grad=True))
            for name, node_id in hidden_ids.items()
        )
        sum_xt, sum_yt = mi_regularizer_terms(
            Tensor(images),
            labels,
            leaves,
            num_classes=self.strategy.num_classes,
            layers=config.layers,
            normalized=config.normalized_hsic,
            sigma=config.sigma,
        )
        side = sum_xt * config.alpha - sum_yt * config.beta
        side.backward()
        seeds: Dict[int, np.ndarray] = {}
        for name, leaf in leaves.items():
            if leaf.grad is not None:
                seeds[hidden_ids[name]] = leaf.grad
        return float(side.item()), seeds, float(sum_xt.item()), float(sum_yt.item())

    def step(self, trainer: "CompiledTrainer", ctx, images, labels):
        plan = ctx.train_a
        if self.base is None:
            # Eq. (1) fused path: one training forward shares the CE term,
            # the HSIC terms and the training-accuracy logits.
            logits = plan.forward(images)
            base_value, ce_seed = plan.ce_loss_and_seed(labels)
            side_value, seeds, hsic_x, hsic_y = self._side_terms(plan, images, labels)
            output_id = plan.graph.output_id
            if output_id in seeds:  # a model whose "hidden" includes the logits
                np.add(ce_seed, seeds.pop(output_id), out=ce_seed)
            seeds[output_id] = ce_seed
            plan.run_backward(seeds)
            trainer.accumulate(plan)
            returned_logits = logits
        else:
            # Eq. (2): the adversarial base runs through its own adapter,
            # then the MI terms get their dedicated clean hidden forward.
            base_value, _ = self.base.step(trainer, ctx, images, labels)
            plan.forward(images)
            side_value, seeds, hsic_x, hsic_y = self._side_terms(plan, images, labels)
            plan.run_backward(seeds)
            trainer.accumulate(plan)
            returned_logits = None
        total = base_value + side_value
        self.strategy.last_components = {
            "base": base_value,
            "hsic_x": hsic_x,
            "hsic_y": hsic_y,
            "total": total,
        }
        return total, returned_logits


def build_adapter(strategy):
    """Map a loss strategy to its compiled adapter (``None`` = stay eager).

    Exact-type matches only (a user subclass may override the math, and the
    adapters replay the *base-class* computation — mixing those silently
    would train the wrong objective).  The one ``isinstance`` is the CE base
    inside the IB-RAR wrapper, which mirrors the eager fused-path condition
    exactly: eager ``MILoss.loss_and_logits`` also dispatches CE subclasses
    to the plain CE term without calling their overrides.
    """
    from ..core.losses import AdversarialMILoss, MILoss
    from ..training.adversarial import (
        CrossEntropyLoss,
        MARTLoss,
        PGDAdversarialLoss,
        TRADESLoss,
    )

    if type(strategy) in (MILoss, AdversarialMILoss):
        if strategy.config.mi_on_adversarial:
            return None
        if isinstance(strategy.base_loss, CrossEntropyLoss):
            return _MILossAdapter(strategy, None)
        inner = build_adapter(strategy.base_loss)
        if inner is None:
            return None
        return _MILossAdapter(strategy, inner)
    if type(strategy) is CrossEntropyLoss:
        return _CEAdapter()
    if type(strategy) is PGDAdversarialLoss:
        return _PGDAdversarialAdapter(strategy)
    if type(strategy) is TRADESLoss:
        return _TRADESAdapter(strategy)
    if type(strategy) is MARTLoss:
        return _MARTAdapter(strategy)
    return None


# --------------------------------------------------------------------------- #
# the trainer-facing cache
# --------------------------------------------------------------------------- #
class CompiledTrainer:
    """Shape-dispatching training-plan cache for one (model, optimizer, loss).

    :meth:`train_batch` runs one full training step — inner attack, loss,
    parameter gradients, fused in-place optimizer update — through compiled
    plans, or returns ``None`` when the batch must take the eager path
    (unsupported strategy, first sighting of a signature, capture failure,
    reallocated parameter storage).  A changed channel mask (the IB-RAR
    Eq. 3 refresh installs a new mask array) invalidates every plan, since
    masks are baked into graphs as constants.
    """

    def __init__(self, model, optimizer, loss_strategy, max_signatures: int = 4) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_strategy = loss_strategy
        self.adapter = build_adapter(loss_strategy)
        # Compiled training needs in-place updates (live plans alias
        # parameter storage); a custom Optimizer subclass that implements
        # only step() has no fused path, so the whole trainer stays eager.
        if self.adapter is not None and not _supports_fused_step(optimizer):
            self.adapter = None
        self.stats = TrainingCompileStats()
        self._cache = _SignatureCache(self._build_context, capacity=max_signatures)
        self._accums: Dict[int, np.ndarray] = {}
        self._mask_ref = getattr(model, "channel_mask", None)

    def _build_context(self, sample: np.ndarray) -> _SignatureContext:
        ctx = _SignatureContext(
            self.model,
            sample,
            slots=self.adapter.slots,
            needs_attack=self.adapter.needs_attack,
            hidden_seeds=self.adapter.needs_hidden_seeds,
        )
        self.stats.plans_built += len(ctx.plans)
        return ctx

    @property
    def supported(self) -> bool:
        """Whether the strategy (and optimizer) have a compiled path at all."""
        return self.adapter is not None

    @property
    def pool_allocations(self) -> int:
        """Total buffer allocations across every live context's plans."""
        return sum(
            plan.pool.allocations
            for ctx in self._cache.entries.values()
            if ctx is not None
            for plan in ctx.plans
        )

    @property
    def plans(self) -> int:
        return sum(len(ctx.plans) for ctx in self._cache.entries.values() if ctx is not None)

    def invalidate(self) -> None:
        """Drop every cached plan (next batches recompile on second sighting)."""
        self._cache.clear()

    # -- gradient accumulation --------------------------------------------------
    def accumulate(self, plan: Plan) -> None:
        """Add ``plan``'s parameter gradients into the per-parameter sums."""
        for param_id, buffer in plan.param_grads().items():
            accumulator = self._accums.get(param_id)
            if accumulator is None:
                accumulator = np.zeros_like(buffer)
                self._accums[param_id] = accumulator
            np.add(accumulator, buffer, out=accumulator)

    def _zero_accumulators(self) -> None:
        for accumulator in self._accums.values():
            accumulator.fill(0)

    # -- the batch step ----------------------------------------------------------
    def train_batch(self, images, labels) -> Optional[Tuple[float, np.ndarray]]:
        """One compiled training step; ``None`` means "run this batch eagerly".

        Returns ``(loss, predictions)`` on success.  The optimizer update has
        already been applied (in place, via ``step_with_grads``) and the
        predictions reproduce the eager trainer's training-accuracy pass —
        shared clean logits where the strategy provides them, an extra
        training-mode forward (with its running-stat update) otherwise.
        """
        if self.adapter is None:
            self.stats.eager_batches += 1
            return None
        images = np.asarray(images, dtype=get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if _mask_changed(self.model.channel_mask, self._mask_ref):
            self.invalidate()
        self._mask_ref = self.model.channel_mask
        ctx = self._cache.lookup(images)
        if ctx is None:
            self.stats.eager_batches += 1
            return None
        self._zero_accumulators()
        try:
            loss, logits = self.adapter.step(self, ctx, images, labels)
            if logits is not None:
                predictions = np.argmax(logits, axis=1)
            else:
                predictions = np.argmax(ctx.train_a.forward(images), axis=1)
        except CompileError:
            # A replay failure (e.g. parameter storage reallocated behind the
            # plan's back by an interleaved eager ``optimizer.step()``).
            # Unlike a capture failure — deterministic, remembered as None —
            # this is recoverable: drop the context so the next sighting of
            # this signature recompiles against the current storage.
            self._cache.evict(images)
            self.stats.eager_batches += 1
            return None
        grads = [self._accums.get(id(p)) for p in self.optimizer.parameters]
        self.optimizer.step_with_grads(grads)
        self.stats.compiled_batches += 1
        return float(loss), predictions
