"""Static-graph capture, operator fusion, and buffer-pooled execution.

The attack hot path — tens of forward+backward passes per batch for
PGD/NIFGSM/CW — previously rebuilt the dynamic Python autograd graph and
allocated fresh arrays on every step.  This subsystem traces a module's
eval-mode forward **once** into a static :class:`~repro.compile.graph.Graph`,
optimizes it (batch-norm folding into conv weights, affine/ReLU/elementwise
fusion, constant folding, dead-node elimination) and replays it through a
:class:`~repro.compile.pool.BufferPool` arena with ``out=``-style NumPy
kernels, so steady-state iterations allocate nothing and never touch the
autograd machinery.  The eval/attack backward computes input gradients only —
parameter gradients, which attacks always discard, are never materialized.

Training is compiled too (:mod:`repro.compile.training`): training-mode
forwards (batch-stat batch norm with in-place running updates) captured with
**live parameters**, a full parameter-gradient backward into pooled buffers
(or the fused input+param backward, ``grad="both"``), fused in-place
optimizer kernels, and adapters building the paper's composite losses (CE,
PGD-AT, TRADES, MART, IB-RAR) **fully in plan** — the fused softmax-CE seed
plus softmax-KL, MART margin-weighting and RBF-Gram/HSIC-trace plan nodes
over aliased aux inputs, zero eager graph nodes per compiled step.  Dropout compiles in training
mode as an ``rng_mask`` plan node: masks are counter-based (Philox over
``seed x layer-id x step``, state in the module's ``rng_state`` buffer) and
share the eager ``F.dropout`` mask-fill, so eager and compiled masks are
bitwise identical and resume-exact; ``mi_on_adversarial=True`` replays the
MI hidden forward on attack outputs inside the plan.  One
``capture_forward`` trace per batch signature serves every plan: the
eval-semantics attack plan derives from the training capture through the
:func:`~repro.compile.passes.lower_to_eval` pass, and
:mod:`repro.compile.trace_cache` serializes captures through the artifact
store so grid workers share one trace per signature.

Entry points:

* ``model.compile(sample_input)`` / :func:`compile_model` — returns a
  :class:`CompiledModel` with ``__call__`` (logits), ``predict`` and
  ``value_and_grad(x, y)`` (fused cross-entropy), with automatic eager
  fallback for unseen shapes, training mode, or uncompilable graphs.
* ``AttackEngine(..., compile=True)`` / ``evaluate_robustness(...,
  compile=True)`` / ``ExperimentSpec(eval_compile=True)`` — opt the
  evaluation stack in; PGD-family attacks pick the compiled
  ``value_and_grad`` up automatically and telemetry reports compiled vs
  eager pass counts.
* ``Trainer(compile=True)`` / ``ExperimentSpec(train_compile=True)`` — opt
  the training loop in; per-batch eager fallback keeps it always safe and
  ``TrainingHistory.compile_stats`` reports the split.
* :mod:`repro.compile.kernels` — fused sign/step/project elementwise chains
  shared by the FGSM/PGD/NIFGSM/MIFGSM update rules.
* :mod:`repro.compile.backends` — the kernel-provider registry behind every
  plan: ``numpy`` (serial reference), ``threaded`` (worker-pool row
  sharding), optional ``numba`` (JIT elementwise chains).  Select with
  ``REPRO_PROVIDER``, :func:`use_provider`, or the ``provider=`` argument
  on ``compile_model`` / ``CompiledTrainer`` / ``Trainer`` /
  ``ExperimentSpec``; unsupported ops fall back per op to the reference.
"""

from .backends import (
    KernelProvider,
    available_providers,
    get_provider,
    register_provider,
    resolve_provider_name,
    use_provider,
)
from .cache import SignatureCache
from .graph import CompileError, Graph, Node, capture_forward
from .executor import Plan
from .kernels import GramCache, linf_step, lookahead_point
from .model import CompiledModel, CompiledStats, compile_model
from .passes import lower_to_eval, optimize
from .pool import BufferPool
from .training import CompiledTrainer, TrainingCompileStats

__all__ = [
    "BufferPool",
    "CompileError",
    "CompiledModel",
    "CompiledStats",
    "CompiledTrainer",
    "Graph",
    "GramCache",
    "KernelProvider",
    "Node",
    "Plan",
    "SignatureCache",
    "TrainingCompileStats",
    "available_providers",
    "capture_forward",
    "compile_model",
    "get_provider",
    "linf_step",
    "lookahead_point",
    "lower_to_eval",
    "optimize",
    "register_provider",
    "resolve_provider_name",
    "use_provider",
]
