"""Optimization passes over captured graphs.

The pass pipeline (:func:`optimize`) mirrors what a small deep-learning
compiler does before code generation:

1. **constant folding** — subgraphs depending only on constants are
   evaluated once at compile time.  The big win is ``transpose(weight)``
   inside every ``Linear``: the transposed weight matrix becomes a
   precomputed constant instead of a per-forward allocation.
2. **batch-norm folding** — an eval-mode ``batch_norm2d`` whose input is a
   single-consumer ``conv2d`` is folded into the convolution's weights and
   bias (``W' = W * gamma/std``, ``b' = beta - mean * gamma/std + b * gamma/std``),
   removing the BN node from both the forward and the backward pass.
   Eval-mode BNs that cannot fold are lowered to a precomputed
   scale-and-shift (handled by the executor's ``batch_norm2d`` kernel).
3. **affine fusion** — ``add(matmul(x, W), b)`` with constant ``W``/``b``
   becomes a single ``affine`` node executed as one BLAS call plus an
   in-place bias add.
4. **ReLU fusion** — a ``relu`` directly after ``conv2d`` / ``affine`` /
   ``add`` / ``matmul`` / ``batch_norm2d`` is folded into the producer
   (``fuse_relu`` flag) and applied in place on the producer's buffer.
5. **elementwise-chain fusion** — runs of single-consumer elementwise ops
   (negate, clip, add/mul/div/maximum with a constant) collapse into one
   ``ew`` node replayed in a single buffer.
6. **dead-node elimination** — nodes no longer reachable from the output
   (detached BN parameters, unfused duplicates) are dropped.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .graph import CompileError, Graph, Node

__all__ = [
    "optimize",
    "fold_constants",
    "fold_batchnorm",
    "fuse_affine",
    "fuse_relu",
    "fuse_elementwise",
    "eliminate_dead",
    "bn_scale_shift",
    "lower_to_eval",
]


def lower_to_eval(graph: Graph) -> Tuple[Graph, bool]:
    """Derive the eval-semantics graph from a training-mode capture.

    Returns ``(eval_graph, changed)``.  The expensive part of building an
    attack plan is the traced forward; this pass re-derives the eval-mode
    graph from the *training* capture instead of tracing a second time, so
    one capture per signature serves both the training plan and the
    eval-semantics attack plan.

    A capturable graph can diverge from eval semantics in two ways.  Each
    batch-stat ``batch_norm2d`` node is rewritten to normalize with the
    module's **live running buffers** — exactly the statistics an eager
    attack sees after ``model.eval()``, re-read on every replay because the
    training plan updates them in place.  Each ``rng_mask`` (counter-based
    dropout) node is stripped: eval-mode dropout is the identity, so its
    consumers are rewired straight to the masked input.  ``changed=False``
    means the graph is mode-invariant: the training plan replays the eval
    forward bit for bit, and a single fused input+param plan can serve both
    roles.
    """
    lowered = graph.copy()
    changed = False
    rewired: Dict[int, int] = {}
    for node in lowered.nodes:
        if node.op == "rng_mask":
            rewired[node.id] = node.inputs[0]
            changed = True
            continue
        if node.op != "batch_norm2d" or not node.meta.get("training"):
            continue
        node.meta = {
            "training": False,
            "mean": node.meta["running_mean"],
            "var": node.meta["running_var"],
            "eps": node.meta["eps"],
        }
        changed = True
    if rewired:
        for node in lowered.nodes:
            node.inputs = tuple(_resolve(rewired, i) for i in node.inputs)
        lowered.output_id = _resolve(rewired, lowered.output_id)
    # The attack plan neither exposes hidden representations nor carries
    # loss subgraphs; dropping the named outputs unprotects those nodes for
    # the fusion passes.
    lowered.outputs = {}
    return lowered.rebuild(), changed


def optimize(graph: Graph, fold_bn: bool = True, fuse: bool = True) -> Graph:
    """Run the default pass pipeline (see module docstring)."""
    graph = fold_constants(graph)
    if fold_bn:
        graph = fold_batchnorm(graph)
    if fuse:
        graph = fuse_affine(graph)
        graph = fuse_relu(graph)
        graph = fuse_elementwise(graph)
    return eliminate_dead(graph)


# --------------------------------------------------------------------------- #
# constant folding
# --------------------------------------------------------------------------- #
_CONST_EVAL: Dict[str, Callable] = {
    "add": lambda m, a, b: a + b,
    "mul": lambda m, a, b: a * b,
    "div": lambda m, a, b: a / b,
    "maximum": lambda m, a, b: np.maximum(a, b),
    "matmul": lambda m, a, b: a @ b,
    "neg": lambda m, a: -a,
    "exp": lambda m, a: np.exp(a),
    "log": lambda m, a: np.log(a),
    "sqrt": lambda m, a: np.sqrt(a),
    "abs": lambda m, a: np.abs(a),
    "tanh": lambda m, a: np.tanh(a),
    "sigmoid": lambda m, a: 1.0 / (1.0 + np.exp(-a)),
    "relu": lambda m, a: np.maximum(a, 0.0),
    "pow": lambda m, a: a ** m["exponent"],
    "clip": lambda m, a: np.clip(a, m["low"], m["high"]),
    "reshape": lambda m, a: a.reshape(m["shape"]),
    "transpose": lambda m, a: np.ascontiguousarray(np.transpose(a, m["axes"])),
    "sum": lambda m, a: a.sum(axis=m["axis"], keepdims=m["keepdims"]),
    "detach": lambda m, a: a,
}


def fold_constants(graph: Graph) -> Graph:
    """Evaluate ops whose every input is constant; replace them with consts."""
    for node in graph.nodes:
        if node.op in ("input", "const") or node.op not in _CONST_EVAL:
            continue
        inputs = [graph.node(i) for i in node.inputs]
        if not all(n.is_const() for n in inputs):
            continue
        value = _CONST_EVAL[node.op](node.meta, *[n.value for n in inputs])
        node.op = "const"
        node.inputs = ()
        node.meta = {}
        node.value = np.asarray(value, dtype=node.dtype)
    return graph.rebuild()


# --------------------------------------------------------------------------- #
# batch-norm folding / lowering
# --------------------------------------------------------------------------- #
def bn_scale_shift(gamma, beta, mean, var, eps, dtype) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel ``(scale, shift)`` of an eval-mode batch norm.

    Shared by the folding pass and the executor's standalone BN kernel so
    the affine form of eval batch norm is derived in exactly one place.
    """
    scale = gamma / np.sqrt(var + eps)
    shift = beta - mean * scale
    return scale.astype(dtype), shift.astype(dtype)


def _bn_scale_shift(node: Node, graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """``bn_scale_shift`` for a graph node, validating constant gamma/beta."""
    gamma = graph.node(node.inputs[1])
    beta = graph.node(node.inputs[2])
    if not (gamma.is_const() and beta.is_const()):
        raise CompileError("batch-norm gamma/beta must be constants in a plan")
    return bn_scale_shift(
        gamma.value, beta.value, node.meta["mean"], node.meta["var"], node.meta["eps"], node.dtype
    )


def fold_batchnorm(graph: Graph) -> Graph:
    """Fold eval-mode BN into a preceding single-consumer convolution."""
    consumers = graph.consumer_counts()
    rewired: Dict[int, int] = {}
    next_id = max(n.id for n in graph.nodes) + 1
    new_consts: List[Node] = []
    for node in graph.nodes:
        if node.op != "batch_norm2d":
            continue
        if node.meta.get("training"):
            raise CompileError("cannot plan a training-mode batch norm")
        conv = graph.node(node.inputs[0])
        if conv.op != "conv2d" or consumers[conv.id] != 1:
            continue
        weight = graph.node(conv.inputs[1])
        bias = graph.node(conv.inputs[2]) if len(conv.inputs) > 2 else None
        if not weight.is_const() or (bias is not None and not bias.is_const()):
            continue
        scale, shift = _bn_scale_shift(node, graph)
        folded_weight = (weight.value * scale[:, None, None, None]).astype(conv.dtype)
        folded_bias = shift if bias is None else (shift + scale * bias.value).astype(conv.dtype)
        w_node = Node(next_id, "const", (), {}, folded_weight.shape, conv.dtype, value=folded_weight)
        b_node = Node(next_id + 1, "const", (), {}, folded_bias.shape, conv.dtype, value=folded_bias)
        next_id += 2
        new_consts.extend([w_node, b_node])
        conv.inputs = (conv.inputs[0], w_node.id, b_node.id)
        rewired[node.id] = conv.id
    if not rewired and not new_consts:
        return graph
    nodes = graph.nodes + new_consts
    for node in nodes:
        node.inputs = tuple(_resolve(rewired, i) for i in node.inputs)
    output_id = _resolve(rewired, graph.output_id)
    outputs = {k: _resolve(rewired, v) for k, v in graph.outputs.items()}
    return Graph(nodes, graph.input_id, output_id, outputs).rebuild()


def _resolve(rewired: Dict[int, int], node_id: int) -> int:
    while node_id in rewired:
        node_id = rewired[node_id]
    return node_id


# --------------------------------------------------------------------------- #
# fusion passes
# --------------------------------------------------------------------------- #
def fuse_affine(graph: Graph) -> Graph:
    """Collapse ``add(matmul(x, W), b)`` with constant ``W``/``b`` into ``affine``."""
    consumers = graph.consumer_counts()
    for node in graph.nodes:
        if node.op != "add" or len(node.inputs) != 2:
            continue
        matmul, bias = graph.node(node.inputs[0]), graph.node(node.inputs[1])
        if matmul.op != "matmul":
            matmul, bias = bias, matmul
        if matmul.op != "matmul" or consumers[matmul.id] != 1 or not bias.is_const():
            continue
        weight = graph.node(matmul.inputs[1])
        if not weight.is_const() or weight.value.ndim != 2 or bias.value.ndim != 1:
            continue
        node.op = "affine"
        node.inputs = (matmul.inputs[0], matmul.inputs[1], bias.id)
    return graph.rebuild()


_RELU_FUSABLE = ("conv2d", "affine", "add", "matmul", "batch_norm2d")


def fuse_relu(graph: Graph) -> Graph:
    """Fold a ``relu`` into its single-consumer producer (in-place activation)."""
    consumers = graph.consumer_counts()
    rewired: Dict[int, int] = {}
    for node in graph.nodes:
        if node.op != "relu":
            continue
        producer = graph.node(node.inputs[0])
        if producer.op not in _RELU_FUSABLE or consumers[producer.id] != 1:
            continue
        if producer.meta.get("fuse_relu"):
            continue
        producer.meta["fuse_relu"] = True
        rewired[node.id] = producer.id
    if not rewired:
        return graph
    for node in graph.nodes:
        node.inputs = tuple(_resolve(rewired, i) for i in node.inputs)
    outputs = {k: _resolve(rewired, v) for k, v in graph.outputs.items()}
    return Graph(
        graph.nodes, graph.input_id, _resolve(rewired, graph.output_id), outputs
    ).rebuild()


#: elementwise ops a chain may contain.  ``maximum`` is deliberately absent:
#: its backward needs a winner mask against the *intermediate* value, which a
#: fused chain does not keep, so it stays a standalone (fully differentiable)
#: node instead of poisoning the whole plan at bind time.
_EW_UNARY = ("neg", "relu", "clip")
_EW_BINARY = ("add", "mul", "div")


def _chain_source(node: Node, graph: Graph) -> Optional[int]:
    """The id of ``node``'s variable (non-const) input when it is a fusable step."""
    if node.meta.get("fuse_relu"):
        return None
    if node.op in _EW_UNARY and len(node.inputs) == 1:
        return node.inputs[0]
    if node.op in _EW_BINARY and len(node.inputs) == 2:
        first, second = (graph.node(i) for i in node.inputs)
        if second.is_const() and not first.is_const():
            return node.inputs[0]
        if first.is_const() and not second.is_const():
            if node.op == "div":
                return None  # const / x needs the intermediate value; don't fuse
            return node.inputs[1]
    return None


def _ew_step(node: Node, graph: Graph, source: int) -> dict:
    """Describe ``node`` (a validated chain link) as an executable step."""
    if node.op in _EW_UNARY:
        return {"op": node.op, "const": None, **{k: v for k, v in node.meta.items() if k != "fuse_relu"}}
    const_id = node.inputs[1] if node.inputs[0] == source else node.inputs[0]
    return {"op": node.op, "const": const_id}


def fuse_elementwise(graph: Graph) -> Graph:
    """Collapse runs (length >= 2) of single-consumer elementwise ops into ``ew``.

    Named graph outputs (hidden representations a training plan must expose
    and seed gradients into) may only sit at a chain's *tail*: interior chain
    members lose their materialized values, so a protected node ends the
    upward walk instead of joining it.
    """
    consumers = graph.consumer_counts()
    protect = set(graph.outputs.values())
    fused: set = set()
    for node in reversed(graph.nodes):  # visit chain tails before their members
        if node.id in fused:
            continue
        chain: List[Node] = []
        current = node
        while current.id not in fused:
            if chain and current.id in protect:
                break
            source = _chain_source(current, graph)
            # Broadcast constants must not grow the running shape.
            if source is None or current.shape != graph.node(source).shape:
                break
            chain.append(current)
            producer = graph.node(source)
            if consumers[producer.id] != 1 or producer.id in fused:
                break
            current = producer
        if len(chain) < 2:
            continue
        chain.reverse()  # execution order
        head_input = _chain_source(chain[0], graph)
        steps = []
        const_ids = []
        source = head_input
        for link in chain:
            step = _ew_step(link, graph, source)
            if step["const"] is not None:
                const_ids.append(step["const"])
            steps.append(step)
            source = link.id
        tail = chain[-1]
        tail.op = "ew"
        tail.meta = {"steps": steps}
        tail.inputs = (head_input, *const_ids)
        fused.update(link.id for link in chain)
    return graph.rebuild()


def eliminate_dead(graph: Graph) -> Graph:
    """Drop nodes unreachable from the output (rebuild walks from it)."""
    return graph.rebuild()
