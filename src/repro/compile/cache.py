"""Shape-keyed compile-on-second-sighting cache — the one shared policy.

Every compiled entry point dispatches on the ``(input shape, dtype)``
signature of the incoming batch and follows the same economics: a signature
seen **once** runs eagerly (a ragged final batch is cheaper eager than
captured and bound), the **second** sighting triggers the expensive build,
and deterministic build failures are memoized as ``None`` so the eager
fallback is taken without re-trying the capture.

One instance backs :class:`repro.compile.CompiledModel` (entries are eval
:class:`~repro.compile.executor.Plan` objects),
one backs :class:`repro.compile.training.CompiledTrainer` (entries are
per-signature plan contexts), and one backs
:class:`repro.compile.training.LiveEvalModel` (live-parameter eval plans).
:meth:`evict` drops a *recoverable* failure (reallocated parameter storage)
so the next sighting rebuilds against the current storage.

Long-running servers (:mod:`repro.serve`) need two extras over the batch
policy: :meth:`warm` bypasses second-sighting so every configured bucket
signature is traced before the first request arrives, and the
hit/miss/build/eviction counters surfaced by :meth:`stats` feed the server's
``stats`` endpoint.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..obs.registry import get_registry
from .graph import CompileError

__all__ = ["SignatureCache"]

Key = Tuple[Tuple[int, ...], str]

#: unique per-instance label suffix so concurrent caches never share series.
_instance_ids = itertools.count(1)


class SignatureCache:
    """Second-sighting build cache keyed by ``(shape, dtype)`` signatures.

    The hit/miss/build/eviction counters live as labeled series on the
    shared :mod:`repro.obs` registry (``compile.cache.*{cache=...}``); the
    legacy ``hits``/``misses``/... attributes and :meth:`stats` are thin
    read-through views over those series, so one registry snapshot sees
    every cache in the process.
    """

    def __init__(
        self,
        build: Callable[[np.ndarray], object],
        capacity: int,
        name: str = "cache",
        namespace: Optional[str] = None,
    ) -> None:
        self._build = build
        self.capacity = capacity
        #: extra key component (the kernel-provider name): plans built by
        #: different providers are distinct entries, so a provider switch
        #: can never replay another provider's plan.
        self.namespace = namespace
        self.entries: Dict[Key, Optional[object]] = {}
        self._misses: Dict[Key, int] = {}
        labels = {"cache": f"{name}-{next(_instance_ids)}"}
        registry = get_registry()
        self._hits = registry.counter("compile.cache.hits", labels)
        self._miss = registry.counter("compile.cache.misses", labels)
        self._builds = registry.counter("compile.cache.builds", labels)
        self._build_failures = registry.counter("compile.cache.build_failures", labels)
        self._evictions = registry.counter("compile.cache.evictions", labels)

    # -- registry read-through (legacy attribute shapes) -------------------------
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._miss.value

    @property
    def builds(self) -> int:
        return self._builds.value

    @property
    def build_failures(self) -> int:
        return self._build_failures.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @staticmethod
    def key(sample: np.ndarray) -> Key:
        return (sample.shape, sample.dtype.str)

    def _key(self, sample: np.ndarray):
        base = (sample.shape, sample.dtype.str)
        return base if self.namespace is None else base + (self.namespace,)

    @property
    def live_entries(self) -> int:
        """Number of cached entries holding a usable plan (failures excluded)."""
        return sum(1 for entry in self.entries.values() if entry is not None)

    def clear(self) -> None:
        self.entries.clear()
        self._misses.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for telemetry (the serve ``stats`` endpoint)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "build_failures": self.build_failures,
            "evictions": self.evictions,
            "live_entries": self.live_entries,
            "capacity": self.capacity,
        }

    def get(self, sample: np.ndarray):
        """The cached entry for this signature, or ``None`` (never builds)."""
        return self.entries.get(self._key(sample))

    def failed(self, sample: np.ndarray) -> bool:
        """Whether this signature's build failed (a memoized ``None`` entry).

        Distinguishes a *genuine* eager fallback from the policy's benign
        first-sighting deferral, so fallback telemetry only counts batches
        that will stay eager forever.
        """
        key = self._key(sample)
        return key in self.entries and self.entries[key] is None

    def insert(self, sample: np.ndarray, entry) -> None:
        """Pre-seed the cache (a caller-built first plan skips the policy)."""
        self.entries[self._key(sample)] = entry

    def warm(self, sample: np.ndarray) -> bool:
        """Build this signature *now*, bypassing the second-sighting policy.

        Servers call this at startup for every configured bucket size so the
        first real request replays an already-traced plan.  Returns ``True``
        when a usable entry is cached afterwards (freshly built or already
        present), ``False`` when the build failed, the failure was already
        memoized, or the cache is at capacity.
        """
        key = self._key(sample)
        if key in self.entries:
            return self.entries[key] is not None
        if self.live_entries >= self.capacity:
            return False
        entry = self._try_build(sample)
        self.entries[key] = entry
        return entry is not None

    def lookup(self, sample: np.ndarray):
        """The entry for this signature, building it on the second sighting.

        Returns ``None`` on the first sighting, when the live-entry count is
        at capacity, or when the build failed (memoized — deterministic
        failures such as an untraceable forward never retry).
        """
        key = self._key(sample)
        if key in self.entries:
            entry = self.entries[key]
            if entry is not None:
                self._hits.inc()
            else:
                self._miss.inc()
            return entry
        self._miss.inc()
        if self._misses.get(key, 0) == 0:
            self._misses[key] = 1
            return None
        if self.live_entries >= self.capacity:
            return None
        entry = self._try_build(sample)
        self.entries[key] = entry
        return entry

    def _try_build(self, sample: np.ndarray):
        try:
            entry = self._build(sample)
        except CompileError:
            entry = None  # remember the failure; fall back for this signature
            self._build_failures.inc()
        else:
            self._builds.inc()
        return entry

    def evict(self, sample: np.ndarray) -> None:
        if self.entries.pop(self._key(sample), None) is not None:
            self._evictions.inc()
