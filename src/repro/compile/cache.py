"""Shape-keyed compile-on-second-sighting cache — the one shared policy.

Every compiled entry point dispatches on the ``(input shape, dtype)``
signature of the incoming batch and follows the same economics: a signature
seen **once** runs eagerly (a ragged final batch is cheaper eager than
captured and bound), the **second** sighting triggers the expensive build,
and deterministic build failures are memoized as ``None`` so the eager
fallback is taken without re-trying the capture.

One instance backs :class:`repro.compile.CompiledModel` (entries are eval
:class:`~repro.compile.executor.Plan` objects),
one backs :class:`repro.compile.training.CompiledTrainer` (entries are
per-signature plan contexts), and one backs
:class:`repro.compile.training.LiveEvalModel` (live-parameter eval plans).
:meth:`evict` drops a *recoverable* failure (reallocated parameter storage)
so the next sighting rebuilds against the current storage.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .graph import CompileError

__all__ = ["SignatureCache"]

Key = Tuple[Tuple[int, ...], str]


class SignatureCache:
    """Second-sighting build cache keyed by ``(shape, dtype)`` signatures."""

    def __init__(self, build: Callable[[np.ndarray], object], capacity: int) -> None:
        self._build = build
        self.capacity = capacity
        self.entries: Dict[Key, Optional[object]] = {}
        self._misses: Dict[Key, int] = {}

    @staticmethod
    def key(sample: np.ndarray) -> Key:
        return (sample.shape, sample.dtype.str)

    def clear(self) -> None:
        self.entries.clear()
        self._misses.clear()

    def get(self, sample: np.ndarray):
        """The cached entry for this signature, or ``None`` (never builds)."""
        return self.entries.get(self.key(sample))

    def insert(self, sample: np.ndarray, entry) -> None:
        """Pre-seed the cache (a caller-built first plan skips the policy)."""
        self.entries[self.key(sample)] = entry

    def lookup(self, sample: np.ndarray):
        """The entry for this signature, building it on the second sighting.

        Returns ``None`` on the first sighting, when the live-entry count is
        at capacity, or when the build failed (memoized — deterministic
        failures such as dropout never retry).
        """
        key = self.key(sample)
        if key in self.entries:
            return self.entries[key]
        if self._misses.get(key, 0) == 0:
            self._misses[key] = 1
            return None
        if sum(1 for entry in self.entries.values() if entry is not None) >= self.capacity:
            return None
        try:
            entry = self._build(sample)
        except CompileError:
            entry = None  # remember the failure; fall back for this signature
        self.entries[key] = entry
        return entry

    def evict(self, sample: np.ndarray) -> None:
        self.entries.pop(self.key(sample), None)
