"""Opt-in per-op profiling for the plan executor.

When :data:`PROFILER` is enabled, every :class:`~repro.compile.executor.
Plan` replay times each bound kernel step and accumulates, per op kind,
``{calls, total seconds, output bytes}`` into a :class:`PlanProfile` keyed
by the plan's input signature.  The executor checks ``PROFILER.enabled``
**once per replay** (not per step), so the disabled path costs a single
attribute read and allocates nothing.

Aggregations (``CompiledModel.profile()``, ``CompiledTrainer.profile()``,
the serve ``stats`` endpoint's ``profile`` field) merge snapshots across
plans sharing a signature via :func:`merge_snapshot`; :func:`flush` emits
one ``{"event": "profile"}`` JSONL line per live profiled plan to the
trace sink, which ``python -m repro.obs summarize`` rolls into the
per-op-kind table.
"""

from __future__ import annotations

import os
import weakref
from typing import Dict, List, Optional

from . import trace

__all__ = [
    "PROFILER",
    "PlanProfile",
    "enable",
    "disable",
    "enabled",
    "merge_snapshot",
    "merge_profiles",
    "flush",
]


class _OpStat:
    __slots__ = ("calls", "seconds", "bytes")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.bytes = 0


class PlanProfile:
    """Per-op-kind accounting for one plan (single-writer, no lock)."""

    __slots__ = ("signature", "ops")

    def __init__(self, signature: str) -> None:
        self.signature = signature
        self.ops: Dict[str, _OpStat] = {}

    def record(self, kind: str, seconds: float, nbytes: int) -> None:
        stat = self.ops.get(kind)
        if stat is None:
            stat = self.ops[kind] = _OpStat()
        stat.calls += 1
        stat.seconds += seconds
        stat.bytes += nbytes

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            kind: {
                "calls": stat.calls,
                "total_ms": stat.seconds * 1e3,
                "bytes": stat.bytes,
            }
            for kind, stat in self.ops.items()
        }


class _Profiler:
    """Global on/off switch plus a weak set of live profiled plans."""

    def __init__(self) -> None:
        self.enabled = False
        self._plans: "weakref.WeakSet" = weakref.WeakSet()
        self._keys: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._next_key = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def profile_for(self, plan) -> PlanProfile:
        """A fresh :class:`PlanProfile` for ``plan``, tracked for flushing."""
        self._plans.add(plan)
        if plan not in self._keys:
            self._next_key += 1
            self._keys[plan] = self._next_key
        return PlanProfile(plan.signature)

    def snapshots(self) -> List[dict]:
        """Profile snapshots of every live plan that has recorded anything.

        Each snapshot carries a per-process ``plan`` key so repeated
        :func:`flush` calls (cumulative by design) can be deduplicated
        last-wins by the summarize CLI.
        """
        out = []
        for plan in list(self._plans):
            snap = plan.profile_snapshot()
            if snap is not None:
                snap["plan"] = self._keys.get(plan, 0)
                out.append(snap)
        return out


PROFILER = _Profiler()


def enabled() -> bool:
    return PROFILER.enabled


def enable() -> None:
    PROFILER.enable()


def disable() -> None:
    PROFILER.disable()


def merge_snapshot(profiles: Dict[str, dict], snap: Optional[dict]) -> None:
    """Fold one plan's profile snapshot into a per-signature aggregation.

    ``profiles`` maps ``signature -> {"ops": {kind: {calls, total_ms,
    bytes}}, "pool": {"allocations", "bytes"}}``; plans sharing a signature
    (a training plan and its derived attack plan) sum op-wise, and pool
    high-water marks sum across their arenas.
    """
    if snap is None:
        return
    entry = profiles.setdefault(
        snap["signature"], {"ops": {}, "pool": {"allocations": 0, "bytes": 0}}
    )
    for kind, stat in snap["ops"].items():
        target = entry["ops"].setdefault(
            kind, {"calls": 0, "total_ms": 0.0, "bytes": 0}
        )
        target["calls"] += stat["calls"]
        target["total_ms"] += stat["total_ms"]
        target["bytes"] += stat["bytes"]
    pool = snap.get("pool")
    if pool:
        entry["pool"]["allocations"] += pool["allocations"]
        entry["pool"]["bytes"] += pool["bytes"]


def merge_profiles(target: Dict[str, dict], other: Dict[str, dict]) -> None:
    """Fold one per-signature aggregation into another (serve worker views)."""
    for signature, entry in other.items():
        merge_snapshot(
            target,
            {"signature": signature, "ops": entry["ops"], "pool": entry.get("pool")},
        )


def flush() -> int:
    """Emit one ``profile`` trace event per live profiled plan.

    Events are cumulative per plan; ``pid`` + ``plan`` let the summarize
    CLI keep only the last emission for each plan when flush runs more
    than once in a process.  Returns the number of events emitted (0 when
    tracing is disabled — events have nowhere to go without a sink).
    """
    if not trace.enabled():
        return 0
    count = 0
    pid = os.getpid()
    for snap in PROFILER.snapshots():
        trace.emit(
            {
                "event": "profile",
                "signature": snap["signature"],
                "provider": snap.get("provider"),
                "ops": snap["ops"],
                "pool": snap.get("pool"),
                "pid": pid,
                "plan": snap.get("plan"),
            }
        )
        count += 1
    return count
