"""Unified observability: metrics registry, span tracing, plan profiler.

Three cooperating pieces, all near-free when off:

* :mod:`repro.obs.registry` — the process-wide :class:`MetricsRegistry`
  every telemetry surface (serve stats, signature-cache counters, attack
  telemetry, training compile stats) reports through, with JSON and
  Prometheus exposition.
* :mod:`repro.obs.trace` — span-based tracing with thread-local stacks,
  explicit carriers across serve worker threads and ``run_grid`` child
  processes, and a pluggable JSONL sink.
* :mod:`repro.obs.profiler` — the opt-in per-op plan-executor profiler
  surfaced by ``CompiledModel.profile()`` / ``CompiledTrainer.profile()``
  and the serve ``stats`` endpoint.

Environment activation (read once, at first import):

* ``REPRO_TRACE=<path>`` — enable tracing, appending JSONL to ``path``;
  at process exit the live plan profiles and a final metrics snapshot are
  flushed to the same file.
* ``REPRO_PROFILE=1`` — enable the plan-executor profiler.
* ``REPRO_RUNS=<store-or-1>`` — persist a RunRecord for every
  ``Trainer.fit`` (see :mod:`repro.obs.records`).

``python -m repro.obs summarize <path>`` renders the per-span and
per-op-kind tables; ``export`` converts a trace to Chrome Trace Event
format; ``runs list|show|diff`` browses the persistent run records.
"""

from __future__ import annotations

import atexit
import os

from . import profiler, trace
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    publish_dict,
)
from .trace import attach, carrier, span, traced
from . import records
from .records import RunWindow, annotate

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "publish_dict",
    "trace",
    "profiler",
    "records",
    "RunWindow",
    "annotate",
    "span",
    "traced",
    "carrier",
    "attach",
    "flush",
]


def flush() -> None:
    """Flush live plan profiles and a metrics snapshot to the trace sink.

    Called automatically at process exit under ``REPRO_TRACE``, and by
    ``run_grid`` workers after each spec — multiprocessing children exit
    via ``os._exit`` and never run :mod:`atexit` handlers, so anything
    they profiled must be flushed while the work is still in hand.
    Snapshots are cumulative; the events carry ``pid`` (and a per-plan
    key) so the summarize CLI keeps only each process's last flush.
    """
    if not trace.enabled():
        return
    profiler.flush()
    trace.emit(
        {"event": "metrics", "pid": os.getpid(), "snapshot": get_registry().snapshot()}
    )


def _init_from_env() -> None:
    path = os.environ.get("REPRO_TRACE")
    if path and not trace.enabled():
        trace.enable(path=path)
    if os.environ.get("REPRO_PROFILE") and not profiler.enabled():
        profiler.enable()
    if path:
        atexit.register(flush)


_init_from_env()
