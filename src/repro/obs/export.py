"""Convert a ``REPRO_TRACE`` JSONL into Chrome Trace Event format.

``python -m repro.obs export trace.jsonl`` writes a ``*.chrome.json`` that
loads directly in ``chrome://tracing`` or https://ui.perfetto.dev: every
span event becomes an ``"X"`` (complete) event with microsecond ``ts`` /
``dur``, ``pid`` is the span's recording process and ``tid`` a stable
per-process index of its thread name — so a ``run_grid`` fan-out shows one
track per worker process and a serve session one track per worker thread,
with the carrier-propagated trace/span ids preserved in ``args``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, TextIO

__all__ = ["chrome_trace", "export_chrome"]


def chrome_trace(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """A Chrome Trace Event document from repro.obs span events.

    Span timestamps are wall-clock seconds at span *exit*; the start is
    recovered as ``ts - dur`` and rebased to the earliest span so the
    timeline starts at zero.  Non-span events (profile/metrics flushes)
    are ignored.
    """
    spans = []
    for event in events:
        if event.get("event") != "span":
            continue
        dur_s = float(event.get("dur_ms", 0.0)) / 1e3
        end_s = float(event.get("ts", 0.0))
        spans.append((end_s - dur_s, dur_s, event))
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = min(start for start, _, _ in spans)

    trace_events: List[Dict[str, Any]] = []
    # tid: per-pid first-seen index of the thread name; pid 0 for events
    # from hand-written traces that carry neither.
    tids: Dict[tuple, int] = {}
    named_processes: set = set()
    for start, dur_s, event in sorted(spans, key=lambda item: item[0]):
        pid = int(event.get("pid") or 0)
        thread = str(event.get("thread") or "main")
        key = (pid, thread)
        if key not in tids:
            tids[key] = 1 + sum(1 for k in tids if k[0] == pid)
            if pid not in named_processes:
                named_processes.add(pid)
                trace_events.append(
                    {
                        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                        "args": {"name": f"repro pid {pid}"},
                    }
                )
            trace_events.append(
                {
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": tids[key], "args": {"name": thread},
                }
            )
        name = str(event.get("name", "span"))
        args: Dict[str, Any] = {}
        for field in ("trace_id", "span_id", "parent_id", "error"):
            if event.get(field) is not None:
                args[field] = event[field]
        attrs = event.get("attrs")
        if isinstance(attrs, dict):
            args.update(attrs)
        trace_events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": round((start - origin) * 1e6, 3),
                "dur": round(dur_s * 1e6, 3),
                "pid": pid,
                "tid": tids[key],
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome(
    path: str, out_path: Optional[str] = None, stream: Optional[TextIO] = None
) -> int:
    """Read span JSONL at ``path``, write Chrome Trace JSON; returns #events."""
    from .cli import _read_events  # shared torn-line-tolerant reader

    document = chrome_trace(_read_events(path))
    if out_path is None:
        base = path[: -len(".jsonl")] if path.endswith(".jsonl") else path
        out_path = base + ".chrome.json"
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    count = sum(1 for e in document["traceEvents"] if e["ph"] == "X")
    if stream is not None:
        print(f"wrote {count} span events to {out_path}", file=stream)
    return count
