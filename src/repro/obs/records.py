"""Persistent run records: the durable layer over the in-process telemetry.

A :class:`RunWindow` brackets one unit of work — a ``Trainer.fit``, a
``run_grid`` invocation, a serve session — and captures everything PR 7's
primitives know at close time into one JSON-safe dict: wall/CPU time, a
span roll-up (collected live through :func:`repro.obs.trace.add_collector`,
so no sink file is required), the registry metrics snapshot, the git SHA
and any :func:`annotate` context (spec training/content hashes).  Producers
append their own sections (``history``, ``profile``, ``summary``,
``stats``) via :meth:`RunWindow.build` and persist through
:func:`save_record` into the content-addressed
:class:`~repro.experiments.store.ArtifactStore` (``runs/`` section, id =
sha256 of the canonical JSON).

Activation for ``Trainer.fit`` is environment-driven — ``REPRO_RUNS=1``
writes into the default store, ``REPRO_RUNS=<dir>`` into that root — so
training code pays one ``os.environ`` lookup per fit when off.  ``run_grid``
and a serve session with a store always record (they already own a store).

``python -m repro.obs runs list|show|diff`` renders and compares records;
:func:`diff_records` computes the per-metric and per-op-kind deltas.
"""

from __future__ import annotations

import json
import os
import subprocess
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import trace as _trace
from .registry import get_registry

__all__ = [
    "RunWindow",
    "SpanRollup",
    "annotate",
    "annotations",
    "enabled",
    "records_root",
    "git_sha",
    "sanitize",
    "save_record",
    "load_record",
    "list_records",
    "open_store",
    "flatten_metrics",
    "op_totals",
    "diff_records",
    "metric_direction",
    "regressions",
]

RECORDS_ENV = "REPRO_RUNS"
RECORD_VERSION = 1

#: metric-name fragments whose growth is a regression (for diff --warn).
LOWER_IS_BETTER = (
    "latency", "_ms", "seconds", "waste", "errors", "shed", "deadline",
    "evictions", "misses", "fallback", "eager", "loss",
)
#: metric-name fragments whose shrinkage is a regression.
HIGHER_IS_BETTER = (
    "accuracy", "per_sec", "speedup", "hits", "throughput", "compiled",
)


def enabled() -> bool:
    """Whether environment-driven recording (``REPRO_RUNS``) is on."""
    return bool(os.environ.get(RECORDS_ENV))


def records_root() -> Optional[str]:
    """The store root named by ``REPRO_RUNS`` (``None`` for 1/true/on)."""
    value = os.environ.get(RECORDS_ENV, "")
    if value.lower() in ("", "1", "true", "yes", "on"):
        return None
    return value


def git_sha(cwd: Optional[str] = None) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, cwd=cwd, check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


# --------------------------------------------------------------------------- #
# annotation context (spec hashes etc., carried thread-locally)
# --------------------------------------------------------------------------- #
_local = threading.local()


def annotations() -> Dict[str, Any]:
    """The annotation fields currently in scope on this thread."""
    return dict(getattr(_local, "annotations", None) or {})


class annotate:
    """Context manager layering fields onto the thread's annotation scope.

    ``with annotate(training_hash=spec.training_hash): trainer.fit(...)``
    makes the hash visible to any :class:`RunWindow` closed inside the
    block (the experiment runner wraps training so Trainer-level records
    carry the spec identity without the trainer knowing about specs).
    """

    def __init__(self, **fields: Any) -> None:
        self._fields = {k: v for k, v in fields.items() if v is not None}
        self._previous: Optional[Dict[str, Any]] = None

    def __enter__(self) -> "annotate":
        self._previous = getattr(_local, "annotations", None)
        merged = dict(self._previous or {})
        merged.update(self._fields)
        _local.annotations = merged
        return self

    def __exit__(self, *exc_info) -> bool:
        _local.annotations = self._previous
        return False


# --------------------------------------------------------------------------- #
# span roll-up collector
# --------------------------------------------------------------------------- #
class SpanRollup:
    """Aggregate span events by name: ``{count, total_ms, max_ms}``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_name: Dict[str, Dict[str, float]] = {}

    def __call__(self, event: Dict[str, Any]) -> None:
        if event.get("event") != "span":
            return
        duration = float(event.get("dur_ms", 0.0))
        with self._lock:
            stat = self._by_name.get(event["name"])
            if stat is None:
                stat = self._by_name[event["name"]] = {
                    "count": 0, "total_ms": 0.0, "max_ms": 0.0,
                }
            stat["count"] += 1
            stat["total_ms"] += duration
            if duration > stat["max_ms"]:
                stat["max_ms"] = duration

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {name: dict(stat) for name, stat in self._by_name.items()}


# --------------------------------------------------------------------------- #
# the run window
# --------------------------------------------------------------------------- #
# RunWindows auto-enable tracing (sinkless) when it is off so the span
# roll-up sees events; a refcount keeps nested/overlapping windows from
# disabling it under each other, and an externally enabled trace is never
# touched.
_auto_lock = threading.Lock()
_auto_enabled = 0


def _acquire_trace() -> bool:
    global _auto_enabled
    with _auto_lock:
        if _auto_enabled > 0:
            _auto_enabled += 1
            return True
        if _trace.enabled():
            return False
        _trace.enable()
        _auto_enabled = 1
        return True


def _release_trace(owned: bool) -> None:
    global _auto_enabled
    if not owned:
        return
    with _auto_lock:
        _auto_enabled -= 1
        if _auto_enabled == 0:
            _trace.disable()


class RunWindow:
    """Measurement bracket producing one RunRecord payload.

    Usable as a context manager or via explicit ``open()`` / ``close()``
    (the serve session opens at ``start()`` and closes at ``stop()``).
    """

    def __init__(self, kind: str, label: Optional[str] = None) -> None:
        self.kind = kind
        self.label = label or kind
        self.rollup = SpanRollup()
        self._owned_trace = False
        self._open = False
        self._wall_start = 0.0
        self._cpu_start = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.created = 0.0

    def open(self) -> "RunWindow":
        if self._open:
            return self
        self._open = True
        self.created = time.time()
        self._owned_trace = _acquire_trace()
        _trace.add_collector(self.rollup)
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def close(self) -> None:
        if not self._open:
            return
        self._open = False
        self.wall_seconds = time.perf_counter() - self._wall_start
        self.cpu_seconds = time.process_time() - self._cpu_start
        _trace.remove_collector(self.rollup)
        _release_trace(self._owned_trace)
        self._owned_trace = False

    def __enter__(self) -> "RunWindow":
        return self.open()

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def build(self, **sections: Any) -> Dict[str, Any]:
        """The RunRecord dict: the window's measurements plus ``sections``."""
        if self._open:
            self.close()
        record: Dict[str, Any] = {
            "version": RECORD_VERSION,
            "kind": self.kind,
            "label": self.label,
            "created": self.created,
            "git_sha": git_sha(),
            "pid": os.getpid(),
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "context": annotations(),
            "spans": self.rollup.snapshot(),
            "metrics": get_registry().snapshot(),
        }
        for key, value in sections.items():
            if value is not None:
                record[key] = value
        return record


# --------------------------------------------------------------------------- #
# persistence (lazy ArtifactStore import: experiments imports repro.obs)
# --------------------------------------------------------------------------- #
def open_store(root: Optional[str] = None):
    """An :class:`ArtifactStore` at ``root`` / ``$REPRO_RUNS`` / the default."""
    from ..experiments.store import ArtifactStore

    return ArtifactStore(root if root is not None else records_root())


def _json_default(value: Any):
    # numpy arrays and scalars; anything else becomes a string.
    if hasattr(value, "tolist"):
        try:
            return value.tolist()
        except (TypeError, ValueError):
            pass
    item = getattr(value, "item", None)
    if callable(item):
        try:
            unwrapped = item()
            if isinstance(unwrapped, (bool, int, float, str)):
                return unwrapped
        except (TypeError, ValueError):
            pass
    if isinstance(value, (set, tuple)):
        return list(value)
    return str(value)


def sanitize(record: Dict[str, Any]) -> Dict[str, Any]:
    """A pure-JSON deep copy of ``record`` (numpy scalars coerced)."""
    return json.loads(json.dumps(record, default=_json_default))


def save_record(record: Dict[str, Any], store=None) -> str:
    """Persist one RunRecord; returns its content-addressed run id."""
    if store is None:
        store = open_store()
    return store.save_run_record(sanitize(record))


def load_record(run_ref: str, store=None) -> Optional[Dict[str, Any]]:
    """Load a record by (a prefix of) its run id."""
    if store is None:
        store = open_store()
    run_id = store.resolve_run_id(run_ref)
    if run_id is None:
        return None
    return store.load_run_record(run_id)


def list_records(store=None) -> List[Dict[str, Any]]:
    """Every stored record (oldest first), each carrying its ``run_id``."""
    if store is None:
        store = open_store()
    return store.list_run_records()


# --------------------------------------------------------------------------- #
# diffing
# --------------------------------------------------------------------------- #
#: record keys that are identity/bookkeeping, not comparable measurements.
_NON_METRIC_KEYS = frozenset(
    ("version", "kind", "label", "created", "git_sha", "pid", "run_id",
     "context", "spans", "profile")
)


def flatten_metrics(record: Dict[str, Any]) -> Dict[str, float]:
    """Numeric leaves of a record as ``dotted.path -> value``.

    Lists of numbers (per-epoch history series) contribute their final
    element under ``<path>.final`` — the value a "final metrics" diff
    wants.  Bookkeeping keys and the per-signature profile (handled by
    :func:`op_totals`) are skipped.
    """
    out: Dict[str, float] = {}

    def walk(node: Any, path: str) -> None:
        if isinstance(node, bool):
            return
        if isinstance(node, (int, float)):
            out[path] = float(node)
        elif isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{path}.{key}" if path else str(key))
        elif isinstance(node, list) and node:
            last = node[-1]
            if isinstance(last, (int, float)) and not isinstance(last, bool):
                out[f"{path}.final"] = float(last)

    for key, value in record.items():
        if key in _NON_METRIC_KEYS:
            continue
        walk(value, key)
    return out


def op_totals(record: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Per-op-kind ``{calls, total_ms}`` aggregated over the profile section.

    Handles both shapes producers emit: ``{signature: {"ops": ...}}``
    (trainer, grid) and ``{model: {signature: {"ops": ...}}}`` (serve).
    """
    totals: Dict[str, Dict[str, float]] = {}

    def visit(node: Any) -> None:
        if not isinstance(node, dict):
            return
        ops = node.get("ops")
        if isinstance(ops, dict):
            for kind, stat in ops.items():
                if not isinstance(stat, dict):
                    continue
                target = totals.setdefault(kind, {"calls": 0.0, "total_ms": 0.0})
                target["calls"] += float(stat.get("calls", 0))
                target["total_ms"] += float(stat.get("total_ms", 0.0))
            return
        for value in node.values():
            visit(value)

    visit(record.get("profile") or {})
    return totals


def metric_direction(name: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` / ``None`` from the metric's name."""
    lowered = name.lower()
    # The most specific fragment wins: scan lower-is-better first since
    # latency/error style names are the ones worth warning about.
    for fragment in LOWER_IS_BETTER:
        if fragment in lowered:
            return "lower"
    for fragment in HIGHER_IS_BETTER:
        if fragment in lowered:
            return "higher"
    return None


def diff_records(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Per-metric and per-op-kind deltas from record ``a`` to record ``b``."""
    metrics_a = flatten_metrics(a)
    metrics_b = flatten_metrics(b)
    metrics: List[Dict[str, Any]] = []
    for key in sorted(set(metrics_a) | set(metrics_b)):
        va, vb = metrics_a.get(key), metrics_b.get(key)
        entry: Dict[str, Any] = {"metric": key, "a": va, "b": vb}
        if va is not None and vb is not None:
            entry["delta"] = vb - va
            if va != 0:
                entry["pct"] = 100.0 * (vb - va) / abs(va)
        metrics.append(entry)
    ops_a = op_totals(a)
    ops_b = op_totals(b)
    ops: List[Dict[str, Any]] = []
    for kind in sorted(set(ops_a) | set(ops_b)):
        sa = ops_a.get(kind, {"calls": 0.0, "total_ms": 0.0})
        sb = ops_b.get(kind, {"calls": 0.0, "total_ms": 0.0})
        entry = {
            "op": kind,
            "calls_a": sa["calls"],
            "calls_b": sb["calls"],
            "total_ms_a": sa["total_ms"],
            "total_ms_b": sb["total_ms"],
            "delta_ms": sb["total_ms"] - sa["total_ms"],
        }
        if sa["total_ms"]:
            entry["pct"] = 100.0 * entry["delta_ms"] / sa["total_ms"]
        ops.append(entry)
    return {"metrics": metrics, "ops": ops}


def regressions(
    diff: Dict[str, Any], threshold: float = 0.2
) -> List[str]:
    """Direction-aware regression lines from a :func:`diff_records` result."""
    problems: List[str] = []
    for entry in diff["metrics"]:
        va, vb = entry.get("a"), entry.get("b")
        if va is None or vb is None or va == 0:
            continue
        direction = metric_direction(entry["metric"])
        if direction is None:
            continue
        change = (vb - va) / abs(va)
        if direction == "lower" and change > threshold:
            problems.append(
                f"{entry['metric']} rose {change * 100:.1f}% ({va:.4g} -> {vb:.4g})"
            )
        elif direction == "higher" and change < -threshold:
            problems.append(
                f"{entry['metric']} fell {-change * 100:.1f}% ({va:.4g} -> {vb:.4g})"
            )
    return problems
