"""``python -m repro.obs`` — trace summaries, timeline export, run records.

* ``summarize PATH`` rolls the JSONL emitted by :mod:`repro.obs.trace`
  (span events, ``profile`` events from :func:`repro.obs.profiler.flush`,
  and the optional final ``metrics`` snapshot) into three tables:
  per-span-name timing, per-op-kind plan-executor cost, and the
  counter/gauge snapshot.
* ``export PATH [--format chrome]`` converts the same JSONL into Chrome
  Trace Event format for ``chrome://tracing`` / Perfetto.
* ``runs list|show|diff`` browses the persistent RunRecords
  (:mod:`repro.obs.records`) in an artifact store and renders per-metric
  and per-op-kind deltas between any two of them.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Iterable, List, Optional

from .registry import percentile

__all__ = ["main", "summarize", "runs_list", "runs_show", "runs_diff"]


def _read_events(path: str) -> List[dict]:
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # a torn concurrent append; skip the partial line
    return events


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _span_table(events: Iterable[dict]) -> Optional[str]:
    by_name: Dict[str, List[float]] = {}
    for event in events:
        if event.get("event") == "span":
            by_name.setdefault(event["name"], []).append(float(event.get("dur_ms", 0.0)))
    if not by_name:
        return None
    rows = []
    for name, durations in sorted(
        by_name.items(), key=lambda item: -sum(item[1])
    ):
        total = sum(durations)
        rows.append(
            [
                name,
                str(len(durations)),
                f"{total:.2f}",
                f"{total / len(durations):.3f}",
                f"{percentile(durations, 95):.3f}",
                f"{max(durations):.3f}",
            ]
        )
    return _format_table(
        ["span", "count", "total_ms", "mean_ms", "p95_ms", "max_ms"], rows
    )


def _split_provider(kind: str) -> tuple:
    # Op labels carry the serving kernel provider in-band ("conv2d@threaded");
    # unlabelled kinds ran the baseline reference kernels.
    base, sep, provider = kind.rpartition("@")
    if sep and base:
        return base, provider
    return kind, "numpy"


def _op_table(events: Iterable[dict]) -> Optional[str]:
    # Profile events are cumulative per plan and may be flushed more than
    # once per process — keep only the last emission per (pid, plan).
    # Events without those keys (hand-written or older traces) stay unique.
    latest: Dict[object, dict] = {}
    for index, event in enumerate(events):
        if event.get("event") != "profile":
            continue
        if event.get("pid") is not None and event.get("plan") is not None:
            key = (event["pid"], event["plan"], event.get("signature"))
        else:
            key = index
        latest[key] = event
    ops: Dict[tuple, Dict[str, float]] = {}
    signatures = set()
    for event in latest.values():
        signatures.add(event.get("signature"))
        for kind, stat in (event.get("ops") or {}).items():
            target = ops.setdefault(
                _split_provider(kind), {"calls": 0, "total_ms": 0.0, "bytes": 0}
            )
            target["calls"] += stat.get("calls", 0)
            target["total_ms"] += stat.get("total_ms", 0.0)
            target["bytes"] += stat.get("bytes", 0)
    if not ops:
        return None
    rows = []
    for (kind, provider), stat in sorted(
        ops.items(), key=lambda item: (item[0][1], -item[1]["total_ms"])
    ):
        rows.append(
            [
                kind,
                provider,
                str(int(stat["calls"])),
                f"{stat['total_ms']:.2f}",
                f"{stat['total_ms'] / max(stat['calls'], 1):.4f}",
                f"{stat['bytes'] / 1e6:.1f}",
            ]
        )
    table = _format_table(
        ["op kind", "provider", "calls", "total_ms", "ms/call", "MB out"], rows
    )
    plans = ", ".join(sorted(s for s in signatures if s))
    return f"{table}\n\nplans profiled: {plans or '(none)'}"


def _metrics_table(events: Iterable[dict]) -> Optional[str]:
    # Snapshots are cumulative per process: keep the last per pid, then
    # merge across processes (counters sum — each process counted its own
    # work; gauges and histograms last-write-wins in event order).
    per_pid: Dict[object, dict] = {}
    for event in events:
        if event.get("event") == "metrics" and event.get("snapshot"):
            per_pid[event.get("pid")] = event["snapshot"]
    if not per_pid:
        return None
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snapshot in per_pid.values():
        for series, value in (snapshot.get("counters") or {}).items():
            counters[series] = counters.get(series, 0) + value
        gauges.update(snapshot.get("gauges") or {})
        histograms.update(snapshot.get("histograms") or {})
    rows = []
    for series, value in sorted(counters.items()):
        rows.append([series, "counter", f"{value}"])
    for series, value in sorted(gauges.items()):
        rows.append([series, "gauge", f"{value}"])
    for series, summary in sorted(histograms.items()):
        rows.append(
            [series, "histogram", f"count={summary['count']} p50={summary['p50']:.4g}"]
        )
    if not rows:
        return None
    return _format_table(["series", "kind", "value"], rows)


def summarize(path: str, stream=None) -> int:
    stream = stream or sys.stdout
    try:
        events = _read_events(path)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    sections = [
        ("Spans", _span_table(events)),
        ("Plan executor (per op kind)", _op_table(events)),
        ("Metrics", _metrics_table(events)),
    ]
    printed = False
    for title, table in sections:
        if table is None:
            continue
        print(f"== {title} ==", file=stream)
        print(table, file=stream)
        print(file=stream)
        printed = True
    if not printed:
        print(f"no span/profile/metrics events in {path}", file=stream)
    return 0


# --------------------------------------------------------------------------- #
# run records
# --------------------------------------------------------------------------- #
def _open_store(root: Optional[str]):
    from . import records

    return records.open_store(root)


def _fmt_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _record_header(record: dict) -> str:
    created = record.get("created")
    when = (
        time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(created))
        if created
        else "-"
    )
    return (
        f"run {record.get('run_id', '?')[:12]}  kind={record.get('kind')}  "
        f"label={record.get('label')}  created={when}  "
        f"git={str(record.get('git_sha', '?'))[:12]}  "
        f"wall={_fmt_value(record.get('wall_seconds'))}s  "
        f"cpu={_fmt_value(record.get('cpu_seconds'))}s"
    )


def runs_list(store_root: Optional[str] = None, kind: Optional[str] = None, stream=None) -> int:
    stream = stream or sys.stdout
    store = _open_store(store_root)
    records = store.list_run_records()
    if kind:
        records = [r for r in records if r.get("kind") == kind]
    if not records:
        print(f"no run records in {store.root}", file=stream)
        return 0
    rows = []
    for record in records:
        created = record.get("created")
        rows.append(
            [
                record.get("run_id", "?")[:12],
                str(record.get("kind", "-")),
                str(record.get("label", "-")),
                time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(created))
                if created
                else "-",
                _fmt_value(record.get("wall_seconds")),
            ]
        )
    print(_format_table(["run", "kind", "label", "created", "wall_s"], rows), file=stream)
    return 0


def runs_show(run_ref: str, store_root: Optional[str] = None, stream=None) -> int:
    from . import records as _records

    stream = stream or sys.stdout
    store = _open_store(store_root)
    try:
        record = _records.load_record(run_ref, store=store)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if record is None:
        print(f"error: no run record matches '{run_ref}' in {store.root}", file=sys.stderr)
        return 2
    print(_record_header(record), file=stream)
    context = record.get("context") or {}
    if context:
        print("context: " + ", ".join(f"{k}={v}" for k, v in sorted(context.items())), file=stream)
    print(file=stream)
    spans = record.get("spans") or {}
    if spans:
        rows = [
            [name, str(int(stat.get("count", 0))), f"{stat.get('total_ms', 0.0):.2f}",
             f"{stat.get('max_ms', 0.0):.3f}"]
            for name, stat in sorted(spans.items(), key=lambda kv: -kv[1].get("total_ms", 0.0))
        ]
        print("== Spans ==", file=stream)
        print(_format_table(["span", "count", "total_ms", "max_ms"], rows), file=stream)
        print(file=stream)
    ops = _records.op_totals(record)
    if ops:
        rows = [
            [kind, str(int(stat["calls"])), f"{stat['total_ms']:.2f}"]
            for kind, stat in sorted(ops.items(), key=lambda kv: -kv[1]["total_ms"])
        ]
        print("== Plan executor (per op kind) ==", file=stream)
        print(_format_table(["op kind", "calls", "total_ms"], rows), file=stream)
        print(file=stream)
    metrics = _records.flatten_metrics(record)
    if metrics:
        rows = [[key, _fmt_value(value)] for key, value in sorted(metrics.items())]
        print("== Metrics ==", file=stream)
        print(_format_table(["metric", "value"], rows), file=stream)
    return 0


def runs_diff(
    ref_a: Optional[str] = None,
    ref_b: Optional[str] = None,
    store_root: Optional[str] = None,
    threshold: float = 0.2,
    warn: bool = False,
    stream=None,
) -> int:
    """Diff two run records (default: the two most recent of the same kind).

    With fewer than two comparable records the command reports so and
    exits 0 — the CI soft gate must pass on the first ever run.
    """
    from . import records as _records

    stream = stream or sys.stdout
    store = _open_store(store_root)
    try:
        if ref_a and ref_b:
            record_a = _records.load_record(ref_a, store=store)
            record_b = _records.load_record(ref_b, store=store)
            if record_a is None or record_b is None:
                missing = ref_a if record_a is None else ref_b
                print(f"error: no run record matches '{missing}'", file=sys.stderr)
                return 2
        else:
            stored = store.list_run_records()
            if ref_a:
                record_b = _records.load_record(ref_a, store=store)
                if record_b is None:
                    print(f"error: no run record matches '{ref_a}'", file=sys.stderr)
                    return 2
                earlier = [
                    r for r in stored
                    if r.get("kind") == record_b.get("kind")
                    and r.get("run_id") != record_b.get("run_id")
                    and (r.get("created") or 0) <= (record_b.get("created") or 0)
                ]
                if not earlier:
                    print("nothing to diff against (single record)", file=stream)
                    return 0
                record_a = earlier[-1]
            else:
                if not stored:
                    print(f"no run records in {store.root}", file=stream)
                    return 0
                record_b = stored[-1]
                earlier = [
                    r for r in stored[:-1] if r.get("kind") == record_b.get("kind")
                ]
                if not earlier:
                    print("nothing to diff against (single record)", file=stream)
                    return 0
                record_a = earlier[-1]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print("a: " + _record_header(record_a), file=stream)
    print("b: " + _record_header(record_b), file=stream)
    print(file=stream)
    diff = _records.diff_records(record_a, record_b)
    changed = [
        e for e in diff["metrics"]
        if e.get("a") != e.get("b")
    ]
    if changed:
        rows = []
        for entry in changed:
            rows.append(
                [
                    entry["metric"],
                    _fmt_value(entry.get("a")),
                    _fmt_value(entry.get("b")),
                    _fmt_value(entry.get("delta")),
                    f"{entry['pct']:+.1f}%" if "pct" in entry else "-",
                ]
            )
        print("== Metrics (a -> b) ==", file=stream)
        print(_format_table(["metric", "a", "b", "delta", "pct"], rows), file=stream)
        print(file=stream)
    else:
        print("no metric differences", file=stream)
    if diff["ops"]:
        split = [(_split_provider(entry["op"]), entry) for entry in diff["ops"]]
        rows = [
            [
                kind,
                provider,
                f"{int(entry['calls_a'])} -> {int(entry['calls_b'])}",
                f"{entry['total_ms_a']:.2f} -> {entry['total_ms_b']:.2f}",
                f"{entry['delta_ms']:+.2f}",
                f"{entry['pct']:+.1f}%" if "pct" in entry else "-",
            ]
            for (kind, provider), entry in sorted(
                split, key=lambda item: (item[0][1], -item[1]["total_ms_b"])
            )
        ]
        print("== Plan executor delta (per op kind) ==", file=stream)
        print(
            _format_table(
                ["op kind", "provider", "calls", "total_ms", "delta_ms", "pct"], rows
            ),
            file=stream,
        )
    if warn:
        for problem in _records.regressions(diff, threshold=threshold):
            print(f"::warning title=run-regression::{problem}", file=stream)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize/export repro.obs traces and browse run records.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summarize_parser = sub.add_parser(
        "summarize", help="per-span and per-op-kind tables from a JSONL trace"
    )
    summarize_parser.add_argument("path", help="trace JSONL file (REPRO_TRACE output)")

    export_parser = sub.add_parser(
        "export", help="convert a JSONL trace to Chrome Trace Event format"
    )
    export_parser.add_argument("path", help="trace JSONL file (REPRO_TRACE output)")
    export_parser.add_argument(
        "-o", "--out", default=None, help="output path (default: <path>.chrome.json)"
    )
    export_parser.add_argument(
        "--format", default="chrome", choices=("chrome",),
        help="output format (chrome = Chrome Trace Event / Perfetto)",
    )

    runs_parser = sub.add_parser("runs", help="browse persistent run records")
    runs_sub = runs_parser.add_subparsers(dest="runs_command", required=True)
    list_parser = runs_sub.add_parser("list", help="list stored run records")
    list_parser.add_argument("--store", default=None, help="artifact store root")
    list_parser.add_argument("--kind", default=None, help="filter by record kind")
    show_parser = runs_sub.add_parser("show", help="render one run record")
    show_parser.add_argument("run", help="run id (or unique prefix)")
    show_parser.add_argument("--store", default=None, help="artifact store root")
    diff_parser = runs_sub.add_parser(
        "diff", help="metric and per-op-kind deltas between two records"
    )
    diff_parser.add_argument("run_a", nargs="?", default=None, help="older record")
    diff_parser.add_argument("run_b", nargs="?", default=None, help="newer record")
    diff_parser.add_argument("--store", default=None, help="artifact store root")
    diff_parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="fractional change that counts as a regression (default 0.2)",
    )
    diff_parser.add_argument(
        "--warn", action="store_true",
        help="emit ::warning annotations for direction-aware regressions",
    )

    args = parser.parse_args(argv)
    if args.command == "summarize":
        return summarize(args.path)
    if args.command == "export":
        from .export import export_chrome

        try:
            export_chrome(args.path, args.out, stream=sys.stdout)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0
    if args.command == "runs":
        if args.runs_command == "list":
            return runs_list(args.store, kind=args.kind)
        if args.runs_command == "show":
            return runs_show(args.run, store_root=args.store)
        if args.runs_command == "diff":
            return runs_diff(
                args.run_a,
                args.run_b,
                store_root=args.store,
                threshold=args.threshold,
                warn=args.warn,
            )
    return 2
