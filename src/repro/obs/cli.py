"""``python -m repro.obs`` — summarize a trace/metrics JSONL.

``summarize PATH`` rolls the JSONL emitted by :mod:`repro.obs.trace` (span
events, ``profile`` events from :func:`repro.obs.profiler.flush`, and the
optional final ``metrics`` snapshot) into three tables: per-span-name
timing, per-op-kind plan-executor cost, and the counter/gauge snapshot.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterable, List, Optional

from .registry import percentile

__all__ = ["main", "summarize"]


def _read_events(path: str) -> List[dict]:
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # a torn concurrent append; skip the partial line
    return events


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _span_table(events: Iterable[dict]) -> Optional[str]:
    by_name: Dict[str, List[float]] = {}
    for event in events:
        if event.get("event") == "span":
            by_name.setdefault(event["name"], []).append(float(event.get("dur_ms", 0.0)))
    if not by_name:
        return None
    rows = []
    for name, durations in sorted(
        by_name.items(), key=lambda item: -sum(item[1])
    ):
        total = sum(durations)
        rows.append(
            [
                name,
                str(len(durations)),
                f"{total:.2f}",
                f"{total / len(durations):.3f}",
                f"{percentile(durations, 95):.3f}",
                f"{max(durations):.3f}",
            ]
        )
    return _format_table(
        ["span", "count", "total_ms", "mean_ms", "p95_ms", "max_ms"], rows
    )


def _op_table(events: Iterable[dict]) -> Optional[str]:
    # Profile events are cumulative per plan and may be flushed more than
    # once per process — keep only the last emission per (pid, plan).
    # Events without those keys (hand-written or older traces) stay unique.
    latest: Dict[object, dict] = {}
    for index, event in enumerate(events):
        if event.get("event") != "profile":
            continue
        if event.get("pid") is not None and event.get("plan") is not None:
            key = (event["pid"], event["plan"], event.get("signature"))
        else:
            key = index
        latest[key] = event
    ops: Dict[str, Dict[str, float]] = {}
    signatures = set()
    for event in latest.values():
        signatures.add(event.get("signature"))
        for kind, stat in (event.get("ops") or {}).items():
            target = ops.setdefault(kind, {"calls": 0, "total_ms": 0.0, "bytes": 0})
            target["calls"] += stat.get("calls", 0)
            target["total_ms"] += stat.get("total_ms", 0.0)
            target["bytes"] += stat.get("bytes", 0)
    if not ops:
        return None
    rows = []
    for kind, stat in sorted(ops.items(), key=lambda item: -item[1]["total_ms"]):
        rows.append(
            [
                kind,
                str(int(stat["calls"])),
                f"{stat['total_ms']:.2f}",
                f"{stat['total_ms'] / max(stat['calls'], 1):.4f}",
                f"{stat['bytes'] / 1e6:.1f}",
            ]
        )
    table = _format_table(
        ["op kind", "calls", "total_ms", "ms/call", "MB out"], rows
    )
    plans = ", ".join(sorted(s for s in signatures if s))
    return f"{table}\n\nplans profiled: {plans or '(none)'}"


def _metrics_table(events: Iterable[dict]) -> Optional[str]:
    # Snapshots are cumulative per process: keep the last per pid, then
    # merge across processes (counters sum — each process counted its own
    # work; gauges and histograms last-write-wins in event order).
    per_pid: Dict[object, dict] = {}
    for event in events:
        if event.get("event") == "metrics" and event.get("snapshot"):
            per_pid[event.get("pid")] = event["snapshot"]
    if not per_pid:
        return None
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snapshot in per_pid.values():
        for series, value in (snapshot.get("counters") or {}).items():
            counters[series] = counters.get(series, 0) + value
        gauges.update(snapshot.get("gauges") or {})
        histograms.update(snapshot.get("histograms") or {})
    rows = []
    for series, value in sorted(counters.items()):
        rows.append([series, "counter", f"{value}"])
    for series, value in sorted(gauges.items()):
        rows.append([series, "gauge", f"{value}"])
    for series, summary in sorted(histograms.items()):
        rows.append(
            [series, "histogram", f"count={summary['count']} p50={summary['p50']:.4g}"]
        )
    if not rows:
        return None
    return _format_table(["series", "kind", "value"], rows)


def summarize(path: str, stream=None) -> int:
    stream = stream or sys.stdout
    try:
        events = _read_events(path)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    sections = [
        ("Spans", _span_table(events)),
        ("Plan executor (per op kind)", _op_table(events)),
        ("Metrics", _metrics_table(events)),
    ]
    printed = False
    for title, table in sections:
        if table is None:
            continue
        print(f"== {title} ==", file=stream)
        print(table, file=stream)
        print(file=stream)
        printed = True
    if not printed:
        print(f"no span/profile/metrics events in {path}", file=stream)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize a repro.obs trace/metrics JSONL.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summarize_parser = sub.add_parser(
        "summarize", help="per-span and per-op-kind tables from a JSONL trace"
    )
    summarize_parser.add_argument("path", help="trace JSONL file (REPRO_TRACE output)")
    args = parser.parse_args(argv)
    if args.command == "summarize":
        return summarize(args.path)
    return 2
