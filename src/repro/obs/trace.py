"""Span-based tracing with thread-local stacks and explicit carriers.

``with span("train.epoch"):`` opens a span whose parent is the innermost
span already open *on this thread* (or a remote parent attached via
:func:`attach`).  Each span emits one JSONL event on exit — ``{"event":
"span", "name", "trace_id", "span_id", "parent_id", "ts", "dur_ms",
"thread", "pid", "attrs"}`` — to the configured sink (a callable, or an
append-mode JSONL file).

**Disabled cost is near zero**: :func:`span` returns one shared no-op
context manager without allocating, so instrumentation points in hot loops
pay a single flag check.  Pass ``attrs`` as a pre-built dict (not kwargs)
so the disabled call allocates nothing.

**Propagation** is explicit: :func:`carrier` captures the current position
(``trace_id``/``span_id`` plus the sink path, so child *processes* can
re-open it), and ``with attach(carrier):`` re-parents spans opened on
another thread or in a ``run_grid`` worker process onto it.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from functools import wraps
from typing import Any, Callable, Dict, Optional

__all__ = [
    "span",
    "traced",
    "enable",
    "disable",
    "enabled",
    "carrier",
    "attach",
    "emit",
    "add_collector",
    "remove_collector",
]


class _State:
    __slots__ = ("enabled", "sink", "path", "_file", "lock", "collectors")

    def __init__(self) -> None:
        self.enabled = False
        self.sink: Optional[Callable[[Dict[str, Any]], None]] = None
        self.path: Optional[str] = None
        self._file = None
        self.lock = threading.Lock()
        #: in-process observers fed every event in addition to the sink
        #: (e.g. the RunRecord span roll-up).  A tuple so iteration in
        #: :func:`emit` races safely against add/remove.
        self.collectors: tuple = ()


_state = _State()
_local = threading.local()


def _stack():
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


def enabled() -> bool:
    return _state.enabled


def enable(
    path: Optional[str] = None, sink: Optional[Callable[[Dict[str, Any]], None]] = None
) -> None:
    """Turn tracing on, emitting to ``sink`` or appending JSONL to ``path``.

    With neither, events are dropped (spans still nest and carriers still
    propagate — useful for tests that only assert structure via a sink).
    Re-enabling with the same path is idempotent (child processes attach
    to the parent's file).
    """
    with _state.lock:
        if _state.enabled and path is not None and path == _state.path:
            return
        if _state._file is not None:
            _state._file.close()
            _state._file = None
        _state.path = path
        if path is not None:
            _state._file = open(path, "a", buffering=1, encoding="utf-8")
        _state.sink = sink
        _state.enabled = True


def disable() -> None:
    with _state.lock:
        _state.enabled = False
        _state.sink = None
        _state.path = None
        if _state._file is not None:
            _state._file.close()
            _state._file = None


def add_collector(fn: Callable[[Dict[str, Any]], None]) -> None:
    """Register an in-process event observer (fed alongside the sink)."""
    with _state.lock:
        _state.collectors = _state.collectors + (fn,)


def remove_collector(fn: Callable[[Dict[str, Any]], None]) -> None:
    with _state.lock:
        _state.collectors = tuple(c for c in _state.collectors if c is not fn)


def emit(event: Dict[str, Any]) -> None:
    """Write one event dict to the active sink (no-op when disabled)."""
    if not _state.enabled:
        return
    for collector in _state.collectors:
        collector(event)
    sink = _state.sink
    if sink is not None:
        sink(event)
        return
    with _state.lock:
        if _state._file is not None:
            _state._file.write(json.dumps(event) + "\n")


class _NoopSpan:
    """The shared disabled-path span: allocation-free enter/exit."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def set(self, key, value) -> None:  # matches _Span.set
        pass


NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "attrs", "trace_id", "span_id", "parent_id", "_start")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]]) -> None:
        self.name = name
        self.attrs = attrs
        self.trace_id = None
        self.span_id = _new_id()
        self.parent_id = None
        self._start = 0.0

    def set(self, key: str, value) -> None:
        """Attach one attribute after the span has opened."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __enter__(self) -> "_Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            remote = getattr(_local, "remote", None)
            if remote is not None:
                self.trace_id, self.parent_id = remote
            else:
                self.trace_id = _new_id()
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        event = {
            "event": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": time.time(),
            "dur_ms": duration * 1e3,
            "thread": threading.current_thread().name,
            "pid": os.getpid(),
        }
        if self.attrs:
            event["attrs"] = self.attrs
        if exc_type is not None:
            event["error"] = exc_type.__name__
        emit(event)
        return False


def span(name: str, attrs: Optional[Dict[str, Any]] = None):
    """A context manager recording one span (the shared no-op when disabled)."""
    if not _state.enabled:
        return NOOP
    return _Span(name, attrs)


def traced(name: Optional[str] = None):
    """Decorator form: ``@traced()`` wraps the call in a span."""

    def decorate(fn):
        span_name = name or f"{fn.__module__}.{fn.__qualname__}"

        @wraps(fn)
        def wrapper(*args, **kwargs):
            if not _state.enabled:
                return fn(*args, **kwargs)
            with _Span(span_name, None):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def carrier() -> Optional[Dict[str, str]]:
    """The current trace position, for handoff to another thread/process.

    ``None`` when tracing is disabled or no span is open.  Includes the
    sink ``path`` (when file-backed) so a child process can re-open the
    same JSONL file via :func:`attach`.
    """
    if not _state.enabled:
        return None
    stack = getattr(_local, "stack", None)
    if not stack:
        return None
    top = stack[-1]
    out = {"trace_id": top.trace_id, "span_id": top.span_id}
    if _state.path is not None:
        out["path"] = _state.path
    return out


@contextmanager
def attach(remote: Optional[Dict[str, str]]):
    """Adopt a carrier as this thread's span parent for the enclosed block.

    In a worker thread the next :func:`span` parents onto the carrier's
    span; in a ``run_grid`` child process the carrier's ``path`` also
    re-enables tracing onto the parent's JSONL file.
    """
    if not remote:
        yield
        return
    path = remote.get("path")
    if path and not _state.enabled:
        enable(path=path)
    previous = getattr(_local, "remote", None)
    _local.remote = (remote.get("trace_id"), remote.get("span_id"))
    try:
        yield
    finally:
        _local.remote = previous
