"""Shared metrics registry: counters, gauges and reservoir histograms.

One :class:`MetricsRegistry` (the process-wide default from
:func:`get_registry`) is the substrate every telemetry surface reports
through: the serve layer's :class:`~repro.serve.telemetry.ServerStats`, the
compile layer's :class:`~repro.compile.cache.SignatureCache` counters, the
attack engine's per-attack series and the trainer's compile stats all
register labeled series here, so one ``snapshot()`` (or one Prometheus
scrape of :meth:`MetricsRegistry.to_prometheus`) sees the whole process.

Design points:

* **Labeled series** — ``registry.counter("serve.requests", {"kind":
  "classify"})`` returns one :class:`Counter` per distinct label set;
  callers hold the handle and mutate it lock-cheap (one ``threading.Lock``
  per metric, never a global one on the hot path).
* **Bounded reservoirs** — :class:`Histogram` keeps the most recent
  ``maxlen`` observations (plus lifetime count/sum), so exposition stays
  O(reservoir) regardless of traffic, exactly like the serve layer's
  original deques.
* **Exposition** — :meth:`snapshot` (JSON-safe dict) and
  :meth:`to_prometheus` (text format: ``# TYPE`` lines, ``{k="v"}`` label
  sets, quantile series for histograms).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "publish_dict",
]

LabelSet = Tuple[Tuple[str, str], ...]


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a sequence; 0.0 when empty."""
    data = sorted(values)
    if not data:
        return 0.0
    rank = max(0, min(len(data) - 1, int(round(q / 100.0 * (len(data) - 1)))))
    return float(data[rank])


def _label_key(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name: str, label_key: LabelSet) -> str:
    if not label_key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in label_key)
    return f"{name}{{{inner}}}"


class _Metric:
    """Base class: a named, labeled series owned by one registry."""

    kind = "metric"

    def __init__(self, name: str, label_key: LabelSet) -> None:
        self.name = name
        self.labels = label_key
        self._lock = threading.Lock()

    @property
    def series(self) -> str:
        return _series_name(self.name, self.labels)


class Counter(_Metric):
    """Monotonic (float-capable) counter with atomic increments."""

    kind = "counter"

    def __init__(self, name: str, label_key: LabelSet) -> None:
        super().__init__(name, label_key)
        self._value = 0

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge(_Metric):
    """Last-written value (set/add semantics)."""

    kind = "gauge"

    def __init__(self, name: str, label_key: LabelSet) -> None:
        super().__init__(name, label_key)
        self._value = 0.0

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def add(self, amount) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Metric):
    """Bounded reservoir of the most recent ``maxlen`` observations.

    ``count``/``sum`` are lifetime totals; :meth:`values` snapshots the
    reservoir for percentile math (the nearest-rank :func:`percentile`
    shared with the serve layer).
    """

    kind = "histogram"

    def __init__(self, name: str, label_key: LabelSet, maxlen: int = 4096) -> None:
        super().__init__(name, label_key)
        self.maxlen = maxlen
        self._values: Deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.sum = 0.0

    def observe(self, value) -> None:
        with self._lock:
            self._values.append(value)
            self.count += 1
            self.sum += value

    def extend(self, values: Iterable[float]) -> None:
        with self._lock:
            for value in values:
                self._values.append(value)
                self.count += 1
                self.sum += value

    def values(self) -> List[float]:
        """A snapshot list of the current reservoir (most recent ``maxlen``)."""
        with self._lock:
            return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def reset(self) -> None:
        with self._lock:
            self._values = deque(maxlen=self.maxlen)
            self.count = 0
            self.sum = 0.0

    def summary(self) -> Dict[str, float]:
        data = self.values()
        return {
            "count": self.count,
            "sum": float(self.sum),
            "reservoir": len(data),
            "p50": percentile(data, 50),
            "p95": percentile(data, 95),
            "p99": percentile(data, 99),
            "max": float(max(data)) if data else 0.0,
        }


class MetricsRegistry:
    """Thread-safe get-or-create store of labeled metric series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, LabelSet], _Metric] = {}

    def _get_or_create(self, cls, name: str, labels, **kwargs) -> _Metric:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._series.get(key)
            if metric is None:
                metric = self._series[key] = cls(name, key[1], **kwargs)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric '{name}' already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            return metric

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        maxlen: int = 4096,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, maxlen=maxlen)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return list(self._series.values())

    def reset(self) -> None:
        """Zero every registered series (the series themselves survive)."""
        for metric in self.metrics():
            metric.reset()

    # -- exposition --------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for metric in self.metrics():
            if metric.kind == "counter":
                out["counters"][metric.series] = metric.value
            elif metric.kind == "gauge":
                out["gauges"][metric.series] = metric.value
            else:
                out["histograms"][metric.series] = metric.summary()
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (counters, gauges, histogram summaries)."""
        lines: List[str] = []
        seen_types = set()
        for metric in sorted(self.metrics(), key=lambda m: (m.name, m.labels)):
            base = metric.name.replace(".", "_").replace("-", "_")
            if metric.kind == "histogram":
                if base not in seen_types:
                    seen_types.add(base)
                    lines.append(f"# TYPE {base} summary")
                summary = metric.summary()
                for q_label, q_key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                    labels = metric.labels + (("quantile", q_label),)
                    lines.append(f"{_series_name(base, labels)} {summary[q_key]}")
                lines.append(f"{_series_name(base + '_count', metric.labels)} {summary['count']}")
                lines.append(f"{_series_name(base + '_sum', metric.labels)} {summary['sum']}")
                continue
            if base not in seen_types:
                seen_types.add(base)
                lines.append(f"# TYPE {base} {metric.kind}")
            lines.append(f"{_series_name(base, metric.labels)} {metric.value}")
        return "\n".join(lines) + ("\n" if lines else "")


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every telemetry surface reports to."""
    return _DEFAULT


def publish_dict(
    prefix: str,
    values: Dict[str, object],
    labels: Optional[Dict[str, str]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Publish a flat ``{key: number}`` dict as ``{prefix}.{key}`` gauges.

    The write-through mirror used by value-semantics telemetry
    (:class:`~repro.compile.training.TrainingCompileStats` published at the
    end of :meth:`Trainer.fit <repro.training.trainer.Trainer.fit>`).
    """
    reg = registry or get_registry()
    for key, value in values.items():
        if isinstance(value, (int, float)):
            reg.gauge(f"{prefix}.{key}", labels).set(value)
