"""Data-augmentation transforms for NCHW image batches.

The paper's training recipe uses the standard CIFAR augmentation (random
crop with 4-pixel padding and random horizontal flip).  Transforms here are
pure functions of ``(batch, rng)`` so they compose with
:class:`repro.data.DataLoader`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "random_horizontal_flip",
    "random_crop",
    "normalize",
    "add_gaussian_noise",
    "compose",
    "standard_cifar_augmentation",
]

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def random_horizontal_flip(p: float = 0.5) -> Transform:
    """Flip each image left-right with probability ``p``."""

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = batch.copy()
        flips = rng.random(len(batch)) < p
        out[flips] = out[flips, :, :, ::-1]
        return out

    return apply


def random_crop(padding: int = 4) -> Transform:
    """Pad by ``padding`` pixels (reflect) and crop back to the original size."""

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, c, h, w = batch.shape
        padded = np.pad(batch, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="reflect")
        out = np.empty_like(batch)
        offsets_h = rng.integers(0, 2 * padding + 1, size=n)
        offsets_w = rng.integers(0, 2 * padding + 1, size=n)
        for i in range(n):
            oh, ow = offsets_h[i], offsets_w[i]
            out[i] = padded[i, :, oh : oh + h, ow : ow + w]
        return out

    return apply


def normalize(mean: Sequence[float], std: Sequence[float]) -> Transform:
    """Channel-wise normalization ``(x - mean) / std``."""
    mean_arr = np.asarray(mean, dtype=np.float64).reshape(1, -1, 1, 1)
    std_arr = np.asarray(std, dtype=np.float64).reshape(1, -1, 1, 1)

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (batch - mean_arr) / std_arr

    return apply


def add_gaussian_noise(sigma: float = 0.01) -> Transform:
    """Add white Gaussian noise (used by robustness ablation benches)."""

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.clip(batch + rng.normal(0.0, sigma, size=batch.shape), 0.0, 1.0)

    return apply


def compose(*transforms: Transform) -> Transform:
    """Chain transforms left to right."""

    def apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in transforms:
            batch = transform(batch, rng)
        return batch

    return apply


def standard_cifar_augmentation(padding: int = 4, flip_p: float = 0.5) -> Transform:
    """The augmentation pipeline used for CIFAR training in the paper."""
    return compose(random_crop(padding), random_horizontal_flip(flip_p))
