"""Synthetic stand-ins for the paper's image datasets.

The paper evaluates on CIFAR-10, CIFAR-100, SVHN and Tiny ImageNet.  None of
these can be downloaded in this offline environment, so we generate
class-structured synthetic image datasets with the same tensor shapes and
class counts.  The generators are designed to preserve the properties the
paper's mechanisms depend on:

* **class-conditional signal** — each class has a smooth spatial prototype
  (random low-frequency pattern), so a classifier can learn the task and an
  attacker has a decision boundary to push examples across;
* **shared features between similar classes** — classes are arranged on a
  ring and neighbouring classes share a fraction of their prototype.  This
  reproduces the "cats look like dogs" structure behind the confusion
  tendency analysis (Table 5) and the shared-feature discussion in §3.3;
* **nuisance noise** — per-example additive noise and a class-independent
  distractor pattern give the ``I(X, T)`` compression term something to
  remove, which is what the information-plane experiment (Figure 5) shows.

Images are float arrays in ``[0, 1]`` with shape ``(N, 3, size, size)``,
exactly like normalized CIFAR tensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "SyntheticImageDataset",
    "make_dataset",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "synthetic_svhn",
    "synthetic_tiny_imagenet",
    "DATASET_REGISTRY",
    "CIFAR10_CLASS_NAMES",
]

# CIFAR-10 class names, used by the Table 5 confusion-tendency bench.
CIFAR10_CLASS_NAMES = [
    "plane", "car", "bird", "cat", "deer", "dog", "frog", "horse", "ship", "truck",
]


@dataclass
class SyntheticImageDataset:
    """A train/test split of synthetic images.

    Attributes
    ----------
    x_train, x_test:
        Float arrays of shape ``(N, channels, size, size)`` in ``[0, 1]``.
    y_train, y_test:
        Integer label arrays.
    num_classes:
        Number of classes.
    class_names:
        Human-readable class names (defaults to ``class_0`` ...).
    prototypes:
        The underlying class prototypes, kept for analysis / debugging.
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int
    image_size: int
    channels: int = 3
    name: str = "synthetic"
    class_names: Tuple[str, ...] = ()
    prototypes: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not self.class_names:
            self.class_names = tuple(f"class_{i}" for i in range(self.num_classes))

    def __len__(self) -> int:
        return len(self.x_train)

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return (self.channels, self.image_size, self.image_size)

    def subset(self, n_train: int, n_test: Optional[int] = None) -> "SyntheticImageDataset":
        """Return a smaller copy with the first ``n_train`` / ``n_test`` examples."""
        n_test = n_test if n_test is not None else min(n_train, len(self.x_test))
        return SyntheticImageDataset(
            x_train=self.x_train[:n_train],
            y_train=self.y_train[:n_train],
            x_test=self.x_test[:n_test],
            y_test=self.y_test[:n_test],
            num_classes=self.num_classes,
            image_size=self.image_size,
            channels=self.channels,
            name=self.name,
            class_names=self.class_names,
            prototypes=self.prototypes,
        )


def _smooth_random_field(rng: np.random.Generator, channels: int, size: int, smoothness: int = 4) -> np.ndarray:
    """Generate a smooth random pattern by upsampling low-resolution noise."""
    low = max(2, size // smoothness)
    coarse = rng.normal(size=(channels, low, low))
    # Bilinear-ish upsampling with np.kron then a light box blur.
    factor = size // low
    up = np.kron(coarse, np.ones((1, factor, factor)))
    if up.shape[1] < size:
        pad = size - up.shape[1]
        up = np.pad(up, ((0, 0), (0, pad), (0, pad)), mode="edge")
    up = up[:, :size, :size]
    kernel = np.ones((3, 3)) / 9.0
    blurred = np.empty_like(up)
    padded = np.pad(up, ((0, 0), (1, 1), (1, 1)), mode="edge")
    for c in range(channels):
        acc = np.zeros((size, size))
        for di in range(3):
            for dj in range(3):
                acc += kernel[di, dj] * padded[c, di : di + size, dj : dj + size]
        blurred[c] = acc
    return blurred


def make_dataset(
    num_classes: int,
    image_size: int,
    n_train: int,
    n_test: int,
    channels: int = 3,
    signal_strength: float = 1.2,
    noise_level: float = 0.35,
    shared_feature_fraction: float = 0.35,
    distractor_strength: float = 0.5,
    seed: int = 0,
    name: str = "synthetic",
    class_names: Optional[Tuple[str, ...]] = None,
) -> SyntheticImageDataset:
    """Generate a class-structured synthetic image dataset.

    Each class ``c`` has a prototype ``P_c``.  Neighbouring classes on the
    class ring share ``shared_feature_fraction`` of their prototype (a common
    component blended in), creating the cross-class similarity structure the
    paper discusses.  An example of class ``c`` is::

        x = clip(0.5 + s * P_c + d * D_i + n * eps, 0, 1)

    where ``D_i`` is a per-example distractor pattern (class-independent
    "nuisance" content that carries information about X but not about Y) and
    ``eps`` is white noise.
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    if n_train <= 0 or n_test <= 0:
        raise ValueError("n_train and n_test must be positive")
    rng = np.random.default_rng(seed)

    # Independent prototype fields plus a shared component between ring neighbours.
    base = np.stack([_smooth_random_field(rng, channels, image_size) for _ in range(num_classes)])
    shared = np.stack([_smooth_random_field(rng, channels, image_size) for _ in range(num_classes)])
    prototypes = np.empty_like(base)
    for c in range(num_classes):
        neighbour = (c + 1) % num_classes
        common = 0.5 * (shared[c] + shared[neighbour])
        prototypes[c] = (1.0 - shared_feature_fraction) * base[c] + shared_feature_fraction * common
    # Normalize prototypes to unit RMS so signal_strength is meaningful.
    rms = np.sqrt((prototypes ** 2).mean(axis=(1, 2, 3), keepdims=True))
    prototypes = prototypes / np.maximum(rms, 1e-8)

    def _generate(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=n)
        images = np.empty((n, channels, image_size, image_size))
        for i in range(n):
            distractor = _smooth_random_field(rng, channels, image_size, smoothness=2)
            noise = rng.normal(size=(channels, image_size, image_size))
            img = (
                0.5
                + 0.18 * signal_strength * prototypes[labels[i]]
                + 0.10 * distractor_strength * distractor
                + 0.10 * noise_level * noise
            )
            images[i] = np.clip(img, 0.0, 1.0)
        return images, labels

    x_train, y_train = _generate(n_train)
    x_test, y_test = _generate(n_test)
    return SyntheticImageDataset(
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        num_classes=num_classes,
        image_size=image_size,
        channels=channels,
        name=name,
        class_names=tuple(class_names) if class_names else (),
        prototypes=prototypes,
    )


def synthetic_cifar10(n_train: int = 512, n_test: int = 256, image_size: int = 32, seed: int = 0) -> SyntheticImageDataset:
    """CIFAR-10 stand-in: 10 classes, 3x32x32 images (size configurable)."""
    return make_dataset(
        num_classes=10,
        image_size=image_size,
        n_train=n_train,
        n_test=n_test,
        seed=seed,
        name="synthetic-cifar10",
        class_names=tuple(CIFAR10_CLASS_NAMES),
    )


def synthetic_cifar100(n_train: int = 512, n_test: int = 256, image_size: int = 32, seed: int = 0) -> SyntheticImageDataset:
    """CIFAR-100 stand-in: 100 classes, 3x32x32 images."""
    return make_dataset(
        num_classes=100,
        image_size=image_size,
        n_train=n_train,
        n_test=n_test,
        seed=seed,
        name="synthetic-cifar100",
    )


def synthetic_svhn(n_train: int = 512, n_test: int = 256, image_size: int = 32, seed: int = 0) -> SyntheticImageDataset:
    """SVHN stand-in: 10 classes (digits), 3x32x32 images, higher noise.

    SVHN digits have cluttered backgrounds, which is approximated with a
    stronger distractor component; this is the dataset where the paper's
    convergence experiment (Figure 4) lives.
    """
    return make_dataset(
        num_classes=10,
        image_size=image_size,
        n_train=n_train,
        n_test=n_test,
        distractor_strength=0.9,
        noise_level=0.45,
        seed=seed,
        name="synthetic-svhn",
        class_names=tuple(str(d) for d in range(10)),
    )


def synthetic_tiny_imagenet(
    n_train: int = 512, n_test: int = 256, image_size: int = 64, num_classes: int = 200, seed: int = 0
) -> SyntheticImageDataset:
    """Tiny ImageNet stand-in: 200 classes, 3x64x64 images by default."""
    return make_dataset(
        num_classes=num_classes,
        image_size=image_size,
        n_train=n_train,
        n_test=n_test,
        seed=seed,
        name="synthetic-tiny-imagenet",
    )


DATASET_REGISTRY = {
    "cifar10": synthetic_cifar10,
    "cifar100": synthetic_cifar100,
    "svhn": synthetic_svhn,
    "tiny-imagenet": synthetic_tiny_imagenet,
    # Fully parameterized generator (class count, noise levels, ...): the
    # escape hatch for bench profiles that scale the class count down.
    "synthetic": make_dataset,
}


def available_datasets() -> list:
    """Sorted dataset names accepted by :func:`build_dataset`."""
    return sorted(DATASET_REGISTRY)


def build_dataset(kind: str, **kwargs) -> SyntheticImageDataset:
    """Instantiate a dataset by registry name with validated kwargs.

    The declarative counterpart of calling the generators directly, used by
    experiment specs.  Unknown names or keyword arguments raise ``KeyError``
    / ``TypeError`` messages listing the accepted values.  (The first
    parameter is called ``kind`` because the fully parameterized
    ``"synthetic"`` generator itself accepts a ``name`` keyword.)
    """
    import inspect

    key = str(kind).lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset '{kind}'; available: {available_datasets()}")
    factory = DATASET_REGISTRY[key]
    accepted = [p for p in inspect.signature(factory).parameters if p != "self"]
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        raise TypeError(
            f"dataset '{key}' does not accept parameter(s) {unknown}; accepted: {sorted(accepted)}"
        )
    return factory(**kwargs)
