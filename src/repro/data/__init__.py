"""Datasets, loaders and transforms.

Because the environment is offline, the CIFAR-10 / CIFAR-100 / SVHN /
Tiny ImageNet datasets used by the paper are replaced with class-structured
synthetic equivalents (see :mod:`repro.data.synthetic` and DESIGN.md for the
substitution rationale).
"""

from .loaders import ArrayDataset, DataLoader
from .synthetic import (
    CIFAR10_CLASS_NAMES,
    DATASET_REGISTRY,
    SyntheticImageDataset,
    available_datasets,
    build_dataset,
    make_dataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_svhn,
    synthetic_tiny_imagenet,
)
from .transforms import (
    add_gaussian_noise,
    compose,
    normalize,
    random_crop,
    random_horizontal_flip,
    standard_cifar_augmentation,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "SyntheticImageDataset",
    "make_dataset",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "synthetic_svhn",
    "synthetic_tiny_imagenet",
    "DATASET_REGISTRY",
    "CIFAR10_CLASS_NAMES",
    "available_datasets",
    "build_dataset",
    "random_horizontal_flip",
    "random_crop",
    "normalize",
    "add_gaussian_noise",
    "compose",
    "standard_cifar_augmentation",
]
