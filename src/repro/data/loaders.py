"""Mini-batch iteration over (images, labels) arrays.

``DataLoader`` mirrors the small part of ``torch.utils.data.DataLoader`` the
training loops need: shuffling per epoch, optional transforms applied per
batch, and drop-last semantics.  Batches are plain ``(numpy images, numpy
labels)`` tuples; the trainer wraps images into :class:`repro.nn.Tensor`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np

__all__ = ["DataLoader", "ArrayDataset"]

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class ArrayDataset:
    """A simple dataset over parallel image/label arrays."""

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if len(images) != len(labels):
            raise ValueError(f"images ({len(images)}) and labels ({len(labels)}) differ in length")
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]


class DataLoader:
    """Iterate over a dataset in shuffled mini-batches.

    Parameters
    ----------
    dataset:
        An :class:`ArrayDataset` or any object with ``images`` / ``labels``
        arrays.
    batch_size:
        Mini-batch size (the paper uses 100).
    shuffle:
        Reshuffle example order at the start of every epoch.
    transform:
        Optional callable ``(batch_images, rng) -> batch_images`` applied to
        each batch (data augmentation).
    drop_last:
        Drop the final incomplete batch.  HSIC estimates are more stable on
        equally sized batches, so the trainer enables this by default.
    seed:
        Seed for the shuffling / augmentation RNG.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 100,
        shuffle: bool = True,
        transform: Optional[Transform] = None,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset if isinstance(dataset, ArrayDataset) else ArrayDataset(dataset.images, dataset.labels)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            images = self.dataset.images[idx]
            labels = self.dataset.labels[idx]
            if self.transform is not None:
                images = self.transform(images, self._rng)
            yield images, labels
