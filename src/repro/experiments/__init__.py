"""Declarative experiments: specs, a content-addressed store, a grid runner.

The paper's results are grids — sweeps over (model x loss strategy x attack
suite x seed).  This subsystem makes every grid cell a declarative,
hashable :class:`ExperimentSpec`, trains each spec **at most once ever** via
the content-addressed :class:`ArtifactStore`, and executes whole grids with
:func:`run_grid` (multiprocessing fan-out, resumable, deterministic).

Quickstart::

    from repro.attacks import AttackSpec
    from repro.experiments import ExperimentSpec, run_grid

    specs = [
        ExperimentSpec(
            dataset="cifar10",
            dataset_params={"n_train": 300, "n_test": 120, "image_size": 16, "seed": 0},
            model="smallcnn",
            model_params={"image_size": 16, "seed": 0},
            loss=loss,
            epochs=3,
            attacks=[AttackSpec("pgd", dict(steps=5)), AttackSpec("fgsm")],
            eval_examples=60,
            name=loss,
        )
        for loss in ("ce", "pgd")
    ]
    grid = run_grid(specs, workers=2)
    for report in grid.reports():
        print(report.as_row())

Rerunning the same grid performs zero training: every spec is served from
the store (``.repro-artifacts`` by default; override with the
``REPRO_ARTIFACTS`` environment variable).  The ``python -m
repro.experiments`` CLI runs, inspects, lists and clears stored artifacts.
"""

from .runner import ExperimentResult, ExperimentRunner, GridResult, run_grid
from .spec import DEFAULT_OPTIMIZER, ExperimentSpec, ExperimentSpecError, load_specs
from .store import ArtifactStore, default_store_root

__all__ = [
    "ArtifactStore",
    "DEFAULT_OPTIMIZER",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "ExperimentSpecError",
    "GridResult",
    "default_store_root",
    "load_specs",
    "run_grid",
]
