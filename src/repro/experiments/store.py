"""Content-addressed on-disk artifact store for experiments.

Artifacts are addressed by the spec hashes defined in :mod:`.spec`:

* ``models/<h[:2]>/<training_hash>/`` — one trained model: ``checkpoint.npz``
  (weights + metadata, including the Eq. (3) channel mask, which is *not*
  part of the state dict), ``train.json`` (the training recipe, history and
  timing).
* ``reports/<h[:2]>/<content_hash>/`` — one evaluation: ``experiment.json``
  (the full spec, the deterministic robustness report, and engine telemetry).
* ``traces/<k[:2]>/<key>/`` — one serialized compile capture
  (``trace.json`` + ``trace.npz``, see :mod:`repro.compile.trace_cache`),
  shared by every grid worker whose plan signature matches.

Writes are atomic: artifacts are assembled in a temporary directory and
renamed into place, so parallel grid workers can share one store and a
killed run never leaves a half-written artifact behind.  Reads treat any
unreadable/corrupt artifact as a cache miss and quarantine it (the directory
is removed) so the runner falls back to recomputing.

The default root is ``$REPRO_ARTIFACTS`` or ``.repro-artifacts`` in the
working directory; delete the directory (or run
``python -m repro.experiments clear``) to drop every cached artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..models import build_model
from ..models.base import ImageClassifier
from ..utils.serialization import load_checkpoint, save_checkpoint
from .spec import ExperimentSpec

__all__ = ["ArtifactStore", "DEFAULT_STORE_ENV", "default_store_root"]

DEFAULT_STORE_ENV = "REPRO_ARTIFACTS"
CHECKPOINT_NAME = "checkpoint.npz"
TRAIN_RECORD_NAME = "train.json"
REPORT_NAME = "experiment.json"
SERVE_REPORT_NAME = "robustness.json"
RUN_RECORD_NAME = "record.json"
TRACE_MANIFEST_NAME = "trace.json"
TRACE_ARRAYS_NAME = "trace.npz"


def default_store_root() -> Path:
    """The store root: ``$REPRO_ARTIFACTS`` or ``.repro-artifacts`` in cwd."""
    return Path(os.environ.get(DEFAULT_STORE_ENV) or ".repro-artifacts")


def _read_json(path: Path) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _write_json(path: Path, payload: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")


class ArtifactStore:
    """Content-addressed cache of trained checkpoints and robustness reports."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"

    # -- layout ------------------------------------------------------------------
    def model_dir(self, training_hash: str) -> Path:
        return self.root / "models" / training_hash[:2] / training_hash

    def report_dir(self, content_hash: str) -> Path:
        return self.root / "reports" / content_hash[:2] / content_hash

    def serve_report_dir(self, key: str) -> Path:
        return self.root / "serve" / key[:2] / key

    def run_dir(self, run_id: str) -> Path:
        return self.root / "runs" / run_id[:2] / run_id

    def trace_dir(self, key: str) -> Path:
        return self.root / "traces" / key[:2] / key

    def _publish(self, build_dir: Path, final_dir: Path) -> Path:
        """Atomically move a fully assembled artifact directory into place."""
        final_dir.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(build_dir, final_dir)
        except OSError:
            # Another worker published the same artifact first; theirs is
            # byte-equivalent (content-addressed), keep it and drop ours.
            shutil.rmtree(build_dir, ignore_errors=True)
        return final_dir

    def _build_dir(self) -> Path:
        tmp = self.root / "tmp" / f"{os.getpid()}-{uuid.uuid4().hex[:12]}"
        tmp.mkdir(parents=True, exist_ok=True)
        return tmp

    def _quarantine(self, path: Path) -> None:
        shutil.rmtree(path, ignore_errors=True)

    # -- models ------------------------------------------------------------------
    def has_model(self, spec: ExperimentSpec) -> bool:
        directory = self.model_dir(spec.training_hash)
        return (directory / CHECKPOINT_NAME).exists() and (directory / TRAIN_RECORD_NAME).exists()

    def save_model(
        self,
        spec: ExperimentSpec,
        model: ImageClassifier,
        history: Optional[Dict[str, Any]] = None,
        timing: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist a trained model under the spec's training hash."""
        training_hash = spec.training_hash
        build_dir = self._build_dir()
        metadata = {
            "training_hash": training_hash,
            "model": spec.model,
            "model_params": spec.model_kwargs,
            "num_classes": int(model.num_classes),
            "channel_mask": (
                np.asarray(model.channel_mask, dtype=float).tolist()
                if model.channel_mask is not None
                else None
            ),
        }
        save_checkpoint(model, build_dir / CHECKPOINT_NAME, metadata=metadata)
        _write_json(
            build_dir / TRAIN_RECORD_NAME,
            {
                "training_hash": training_hash,
                "spec": spec.training_dict(),
                "history": history,
                "timing": timing or {},
                "created": time.time(),
            },
        )
        return self._publish(build_dir, self.model_dir(training_hash))

    def _restore_model(
        self,
        directory: Path,
        fallback_name: Optional[str] = None,
        fallback_kwargs: Optional[Dict[str, Any]] = None,
    ) -> Optional[ImageClassifier]:
        """Rebuild the model stored in ``directory``; quarantine on corruption."""
        checkpoint = directory / CHECKPOINT_NAME
        if not checkpoint.exists():
            return None
        try:
            state, metadata = load_checkpoint(checkpoint)
            metadata = metadata or {}
            kwargs = dict(metadata.get("model_params") or fallback_kwargs or {})
            kwargs.pop("num_classes", None)
            model = build_model(
                metadata.get("model", fallback_name),
                num_classes=int(metadata["num_classes"]),
                **kwargs,
            )
            model.load_state_dict(state)
            mask = metadata.get("channel_mask")
            if mask is not None:
                model.set_channel_mask(np.asarray(mask, dtype=np.float64))
            model.eval()
            return model
        except Exception:
            # Partial/corrupt artifact: drop it so the runner recomputes.
            self._quarantine(directory)
            return None

    def load_model(self, spec: ExperimentSpec) -> Optional[ImageClassifier]:
        """Rebuild the trained model for a spec, or ``None`` on miss/corruption."""
        return self._restore_model(
            self.model_dir(spec.training_hash),
            fallback_name=spec.model,
            fallback_kwargs=spec.model_kwargs,
        )

    def load_model_by_hash(self, training_hash: str) -> Optional[ImageClassifier]:
        """Rebuild a stored model from its (full) training hash alone.

        The serve layer resolves checkpoints by hash — no
        :class:`ExperimentSpec` in hand — so this path reconstructs the
        model purely from the checkpoint metadata.
        """
        return self._restore_model(self.model_dir(training_hash))

    def resolve_model_hash(self, prefix: str) -> Optional[str]:
        """Expand a training-hash prefix to the unique stored full hash.

        Returns ``None`` when no stored model matches; raises ``ValueError``
        when the prefix is ambiguous (so a serve request never silently
        picks one of several checkpoints).
        """
        matches = [h for h in self.list_model_hashes() if h.startswith(prefix)]
        if not matches:
            return None
        if len(matches) > 1:
            raise ValueError(
                f"model hash prefix '{prefix}' is ambiguous: {sorted(matches)}"
            )
        return matches[0]

    def list_model_hashes(self) -> List[str]:
        """Training hashes of every stored checkpoint."""
        return [digest for digest, _ in self._iter_artifacts("models", CHECKPOINT_NAME)]

    def load_train_record(self, spec: ExperimentSpec) -> Optional[Dict[str, Any]]:
        path = self.model_dir(spec.training_hash) / TRAIN_RECORD_NAME
        if not path.exists():
            return None
        try:
            return _read_json(path)
        except Exception:
            return None

    # -- reports -----------------------------------------------------------------
    def has_report(self, spec: ExperimentSpec) -> bool:
        return (self.report_dir(spec.content_hash) / REPORT_NAME).exists()

    def save_report(self, spec: ExperimentSpec, payload: Dict[str, Any]) -> Path:
        """Persist an evaluation record under the spec's content hash.

        ``payload`` must carry at least a deterministic ``report`` section;
        the spec and hashes are added so every artifact is self-describing.
        """
        record = dict(payload)
        record["spec"] = spec.as_dict()
        record["content_hash"] = spec.content_hash
        record["training_hash"] = spec.training_hash
        record.setdefault("created", time.time())
        build_dir = self._build_dir()
        _write_json(build_dir / REPORT_NAME, record)
        return self._publish(build_dir, self.report_dir(spec.content_hash))

    def load_report(self, spec: ExperimentSpec) -> Optional[Dict[str, Any]]:
        """Load the evaluation record for a spec, or ``None`` on miss/corruption."""
        directory = self.report_dir(spec.content_hash)
        path = directory / REPORT_NAME
        if not path.exists():
            return None
        try:
            record = _read_json(path)
            if "report" not in record:
                raise KeyError("report")
            return record
        except Exception:
            self._quarantine(directory)
            return None

    # -- serve-side robustness reports -------------------------------------------
    # Read-through cache for the robustness endpoint of :mod:`repro.serve`:
    # keys are content digests over (checkpoint training hash, attack suite,
    # evaluation options, data digest), so a repeated robustness request on
    # an unchanged checkpoint is a store hit, not a re-evaluation.
    def has_serve_report(self, key: str) -> bool:
        return (self.serve_report_dir(key) / SERVE_REPORT_NAME).exists()

    def save_serve_report(self, key: str, payload: Dict[str, Any]) -> Path:
        """Persist a served robustness report under its request digest."""
        record = dict(payload)
        record["key"] = key
        record.setdefault("created", time.time())
        build_dir = self._build_dir()
        _write_json(build_dir / SERVE_REPORT_NAME, record)
        return self._publish(build_dir, self.serve_report_dir(key))

    def load_serve_report(self, key: str) -> Optional[Dict[str, Any]]:
        """Load a served robustness report, or ``None`` on miss/corruption."""
        directory = self.serve_report_dir(key)
        path = directory / SERVE_REPORT_NAME
        if not path.exists():
            return None
        try:
            record = _read_json(path)
            if "report" not in record:
                raise KeyError("report")
            return record
        except Exception:
            self._quarantine(directory)
            return None

    # -- captured compile traces ---------------------------------------------------
    # Serialized capture_forward graphs (see :mod:`repro.compile.trace_cache`),
    # keyed by the plan-signature digest.  Grid workers training the same
    # architecture share one stored trace per signature: the first worker to
    # capture it publishes ``trace.json`` + ``trace.npz``, every later worker
    # deserializes instead of re-tracing.
    def has_trace(self, key: str) -> bool:
        return (self.trace_dir(key) / TRACE_MANIFEST_NAME).exists()

    def save_trace(
        self, key: str, manifest: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> Path:
        """Persist one serialized capture trace under its signature digest."""
        build_dir = self._build_dir()
        _write_json(build_dir / TRACE_MANIFEST_NAME, manifest)
        np.savez(build_dir / TRACE_ARRAYS_NAME, **arrays)
        return self._publish(build_dir, self.trace_dir(key))

    def load_trace(self, key: str) -> Optional[Tuple[Dict[str, Any], Dict[str, np.ndarray]]]:
        """Load ``(manifest, arrays)`` for a trace, or ``None`` on miss/corruption."""
        directory = self.trace_dir(key)
        manifest_path = directory / TRACE_MANIFEST_NAME
        if not manifest_path.exists():
            return None
        try:
            manifest = _read_json(manifest_path)
            arrays: Dict[str, np.ndarray] = {}
            arrays_path = directory / TRACE_ARRAYS_NAME
            if arrays_path.exists():
                with np.load(arrays_path, allow_pickle=False) as data:
                    arrays = {name: data[name] for name in data.files}
            return manifest, arrays
        except Exception:
            self._quarantine(directory)
            return None

    # -- run records (repro.obs observatory) -------------------------------------
    # One record per training run / grid invocation / serve session (see
    # :mod:`repro.obs.records`).  Content-addressed like everything else:
    # the id is the sha256 of the canonical record JSON, so re-saving the
    # identical record is a no-op publish.
    def save_run_record(self, record: Dict[str, Any]) -> str:
        """Persist one JSON-safe RunRecord; returns its run id."""
        canonical = json.dumps(record, sort_keys=True)
        run_id = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        stored = dict(record)
        stored["run_id"] = run_id
        build_dir = self._build_dir()
        _write_json(build_dir / RUN_RECORD_NAME, stored)
        self._publish(build_dir, self.run_dir(run_id))
        return run_id

    def load_run_record(self, run_id: str) -> Optional[Dict[str, Any]]:
        """Load a RunRecord by full id, or ``None`` on miss/corruption."""
        directory = self.run_dir(run_id)
        path = directory / RUN_RECORD_NAME
        if not path.exists():
            return None
        try:
            return _read_json(path)
        except Exception:
            self._quarantine(directory)
            return None

    def list_run_ids(self) -> List[str]:
        return [digest for digest, _ in self._iter_artifacts("runs", RUN_RECORD_NAME)]

    def resolve_run_id(self, prefix: str) -> Optional[str]:
        """Expand a run-id prefix; ``ValueError`` when ambiguous."""
        matches = [r for r in self.list_run_ids() if r.startswith(prefix)]
        if not matches:
            return None
        if len(matches) > 1:
            raise ValueError(
                f"run id prefix '{prefix}' is ambiguous: {sorted(matches)}"
            )
        return matches[0]

    def list_run_records(self) -> List[Dict[str, Any]]:
        """Every readable RunRecord, oldest first (corrupt ones quarantined)."""
        records: List[Dict[str, Any]] = []
        for digest, path in self._iter_artifacts("runs", RUN_RECORD_NAME):
            try:
                record = _read_json(path)
            except Exception:
                self._quarantine(path.parent)
                continue
            record.setdefault("run_id", digest)
            records.append(record)
        records.sort(key=lambda r: (r.get("created") or 0, r.get("run_id")))
        return records

    # -- maintenance -------------------------------------------------------------
    def _iter_artifacts(self, kind: str, filename: str) -> Iterator[Tuple[str, Path]]:
        base = self.root / kind
        if not base.exists():
            return
        for shard in sorted(base.iterdir()):
            if not shard.is_dir():
                continue
            for directory in sorted(shard.iterdir()):
                if (directory / filename).exists():
                    yield directory.name, directory / filename

    def manifest(self) -> Dict[str, Any]:
        """Summaries of every stored artifact (for CLI listing / CI upload)."""
        models: List[Dict[str, Any]] = []
        for digest, path in self._iter_artifacts("models", TRAIN_RECORD_NAME):
            try:
                record = _read_json(path)
            except Exception:
                models.append({"training_hash": digest, "corrupt": True})
                continue
            spec = record.get("spec", {})
            models.append(
                {
                    "training_hash": digest,
                    "dataset": spec.get("dataset", {}).get("name"),
                    "model": spec.get("model", {}).get("name"),
                    "loss": spec.get("loss", {}).get("name"),
                    "ibrar": spec.get("ibrar") is not None,
                    "epochs": spec.get("epochs"),
                    "seed": spec.get("seed"),
                    "created": record.get("created"),
                }
            )
        reports: List[Dict[str, Any]] = []
        for digest, path in self._iter_artifacts("reports", REPORT_NAME):
            try:
                record = _read_json(path)
            except Exception:
                reports.append({"content_hash": digest, "corrupt": True})
                continue
            report = record.get("report", {})
            reports.append(
                {
                    "content_hash": digest,
                    "training_hash": record.get("training_hash"),
                    "name": record.get("spec", {}).get("name"),
                    "natural": report.get("natural"),
                    "worst_case": report.get("worst_case"),
                    "attacks": sorted(report.get("adversarial", {})),
                    "created": record.get("created"),
                }
            )
        return {"root": str(self.root), "models": models, "reports": reports}

    def find_report(self, prefix: str) -> Optional[Dict[str, Any]]:
        """Load a stored report by (a prefix of) its content hash.

        Unreadable matches are quarantined (like :meth:`load_report`) and the
        scan continues, so one corrupt artifact never masks a healthy one.
        """
        for digest, path in self._iter_artifacts("reports", REPORT_NAME):
            if digest.startswith(prefix):
                try:
                    return _read_json(path)
                except Exception:
                    self._quarantine(path.parent)
        return None

    def clear(self) -> int:
        """Delete every artifact; returns how many artifact directories died."""
        count = sum(1 for _ in self._iter_artifacts("models", TRAIN_RECORD_NAME))
        count += sum(1 for _ in self._iter_artifacts("reports", REPORT_NAME))
        count += sum(1 for _ in self._iter_artifacts("serve", SERVE_REPORT_NAME))
        count += sum(1 for _ in self._iter_artifacts("runs", RUN_RECORD_NAME))
        count += sum(1 for _ in self._iter_artifacts("traces", TRACE_MANIFEST_NAME))
        for kind in ("models", "reports", "serve", "runs", "traces", "tmp"):
            shutil.rmtree(self.root / kind, ignore_errors=True)
        return count
