"""Declarative experiment specs with stable content hashes.

An :class:`ExperimentSpec` is a frozen, JSON-serializable description of one
full experiment: which dataset to synthesize, which model to build, which
training loss (optionally wrapped by IB-RAR), the optimizer/schedule recipe,
how long to train, and which attack suite to evaluate under.  It carries
**no live objects** — datasets, models, losses and attacks are all referred
to by their registry names — so a spec can be hashed, stored, diffed,
shipped across process boundaries and rebuilt anywhere, mirroring
:class:`repro.attacks.AttackSpec`.

Two hashes matter:

* :attr:`ExperimentSpec.training_hash` covers only the fields that influence
  the trained weights (dataset, model, loss, IB-RAR config, optimizer,
  epochs, batch size, seed).  Checkpoints are content-addressed by this
  hash, so two specs that differ only in their *evaluation* (attack suite,
  example count) share one trained model.
* :attr:`ExperimentSpec.content_hash` additionally covers the evaluation
  fields.  Robustness reports are addressed by this hash.

The display ``name`` is excluded from both hashes: relabeling a table row
never retrains a model.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from ..attacks.engine import AttackSpec, coerce_spec
from ..core.config import IBRARConfig
from ..nn import get_default_dtype
from ..training.specs import LossSpec, coerce_loss_spec

__all__ = ["ExperimentSpec", "ExperimentSpecError", "DEFAULT_OPTIMIZER", "load_specs"]


class ExperimentSpecError(ValueError):
    """Malformed experiment spec (bad field values or unknown keys)."""


#: The paper's optimizer recipe: SGD + StepLR (Section 4 setup).
DEFAULT_OPTIMIZER: Dict[str, float] = {
    "lr": 0.01,
    "momentum": 0.9,
    "weight_decay": 1e-2,
    "step_size": 20,
    "gamma": 0.2,
}

_OPTIMIZER_KEYS = frozenset(DEFAULT_OPTIMIZER)


def _canonical_json(value: Any, what: str) -> str:
    """Normalize a mapping (or JSON object string) to canonical JSON."""
    if value is None:
        value = {}
    if isinstance(value, str):
        value = json.loads(value) if value else {}
    if not isinstance(value, Mapping):
        raise ExperimentSpecError(f"{what} must be a mapping, got {value!r}")
    try:
        return json.dumps(dict(value), sort_keys=True)
    except TypeError as error:
        raise ExperimentSpecError(f"{what} is not JSON-serializable: {error}") from None


def _hash(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ExperimentSpec:
    """A frozen description of one (train -> evaluate) experiment.

    Parameters
    ----------
    dataset:
        Dataset registry name (``repro.data.DATASET_REGISTRY``).
    model:
        Model registry name (``repro.models.MODEL_REGISTRY``).
    loss:
        Base training loss: a :class:`~repro.training.LossSpec`, a registry
        name string, a spec dict, or a constructed strategy.
    ibrar:
        ``None`` for plain training, or an :class:`IBRARConfig` (or its
        ``to_dict()`` form) to wrap the base loss with the IB-RAR defense.
    dataset_params / model_params:
        Keyword arguments for the registry factories, JSON-canonicalized.
    optimizer:
        SGD + StepLR knobs (``lr``, ``momentum``, ``weight_decay``,
        ``step_size``, ``gamma``); missing keys take the paper defaults.
    epochs / batch_size / seed:
        Training length, mini-batch size and the single base seed from which
        every per-component seed is derived (:func:`repro.utils.derive_seeds`).
    attacks:
        Evaluation suite as :class:`~repro.attacks.AttackSpec` entries
        (anything ``coerce_spec`` accepts).  Empty means natural-accuracy
        evaluation only.
    eval_examples:
        How many test examples to evaluate on (``None`` = all).
    eval_batch_size:
        Attack/prediction batch size during evaluation.
    eval_compile:
        Run the evaluation through :mod:`repro.compile` static plans (with
        automatic eager fallback).  When enabled it joins the content hash
        (compiled and eager evaluations are separate cache entries, so a
        cached eager report is never silently served for a compiled request
        or vice versa); when disabled the key is omitted from the hashed
        payload, so pre-existing specs keep their hashes and cached reports.
    train_compile:
        Run *training* through compiled plans (``Trainer(compile=True)``:
        training-mode forwards, full parameter-gradient backward, fused
        in-place optimizer).  Compiled and eager training produce
        numerically close but not bitwise-identical weights, so when
        enabled the flag joins the **training hash** (separate checkpoint
        cache entries); when disabled it is omitted from the hashed
        payload, so every pre-existing spec keeps its training hash and
        cached checkpoints.
    provider:
        Kernel-provider name for compiled plans
        (:mod:`repro.compile.backends`): ``"numpy"`` (default), ``"threaded"``,
        or ``"numba"`` when available.  Applied through a ``use_provider``
        scope around training and evaluation, so it only matters for specs
        that compile.  Like ``train_compile``, it joins the hashed payloads
        only when non-default, keeping every pre-existing spec hash (and
        cached checkpoint/report) stable.
    name:
        Display label for tables; **excluded** from both content hashes.
    """

    dataset: str
    model: str
    loss: Any = "ce"
    ibrar: Any = None
    dataset_params: Any = "{}"
    model_params: Any = "{}"
    optimizer: Any = "{}"
    epochs: int = 10
    batch_size: int = 100
    seed: int = 0
    attacks: Tuple[AttackSpec, ...] = ()
    eval_examples: Optional[int] = None
    eval_batch_size: int = 64
    eval_early_exit: bool = True
    eval_cascade: bool = False
    eval_compile: bool = False
    train_compile: bool = False
    provider: str = "numpy"
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "dataset", str(self.dataset).lower())
        object.__setattr__(self, "model", str(self.model).lower())
        object.__setattr__(self, "loss", coerce_loss_spec(self.loss))
        ibrar = self.ibrar
        if isinstance(ibrar, IBRARConfig):
            ibrar = ibrar.to_dict()
        if ibrar is not None:
            # Validate through the config class so bad fields fail at spec
            # construction, not at training time in a worker process.
            config = ibrar if isinstance(ibrar, Mapping) else json.loads(ibrar)
            ibrar = _canonical_json(IBRARConfig.from_dict(dict(config)).to_dict(), "ibrar")
        object.__setattr__(self, "ibrar", ibrar)
        object.__setattr__(
            self, "dataset_params", _canonical_json(self.dataset_params, "dataset_params")
        )
        object.__setattr__(self, "model_params", _canonical_json(self.model_params, "model_params"))
        optimizer = json.loads(_canonical_json(self.optimizer, "optimizer"))
        unknown = sorted(set(optimizer) - _OPTIMIZER_KEYS)
        if unknown:
            raise ExperimentSpecError(
                f"unknown optimizer key(s) {unknown}; accepted: {sorted(_OPTIMIZER_KEYS)}"
            )
        merged = dict(DEFAULT_OPTIMIZER)
        merged.update(optimizer)
        object.__setattr__(self, "optimizer", json.dumps(merged, sort_keys=True))
        if self.epochs < 1:
            raise ExperimentSpecError("epochs must be at least 1")
        if self.batch_size < 1 or self.eval_batch_size < 1:
            raise ExperimentSpecError("batch sizes must be positive")
        if self.eval_examples is not None and self.eval_examples < 1:
            raise ExperimentSpecError("eval_examples must be positive (or None for all)")
        attacks = self.attacks
        if isinstance(attacks, (AttackSpec, str, Mapping)):
            attacks = (attacks,)
        object.__setattr__(self, "attacks", tuple(coerce_spec(a) for a in attacks))
        object.__setattr__(self, "provider", str(self.provider).lower() or "numpy")
        object.__setattr__(self, "name", str(self.name))

    # -- accessors ---------------------------------------------------------------
    @property
    def dataset_kwargs(self) -> Dict[str, Any]:
        return json.loads(self.dataset_params)

    @property
    def model_kwargs(self) -> Dict[str, Any]:
        return json.loads(self.model_params)

    @property
    def optimizer_kwargs(self) -> Dict[str, Any]:
        return json.loads(self.optimizer)

    @property
    def ibrar_config(self) -> Optional[IBRARConfig]:
        if self.ibrar is None:
            return None
        return IBRARConfig.from_dict(json.loads(self.ibrar))

    @property
    def label(self) -> str:
        """Display name, falling back to a compact auto-generated one."""
        if self.name:
            return self.name
        suffix = " (IB-RAR)" if self.ibrar is not None else ""
        return f"{self.loss.name}/{self.model}/{self.dataset}{suffix}"

    def with_(self, **updates: Any) -> "ExperimentSpec":
        """Return a copy with some fields replaced (``dataclasses.replace``)."""
        return replace(self, **updates)

    # -- hashing -----------------------------------------------------------------
    def training_dict(self) -> Dict[str, Any]:
        """The fields that determine the trained weights, JSON-ready."""
        payload = {
            "dataset": {"name": self.dataset, "params": self.dataset_kwargs},
            "model": {"name": self.model, "params": self.model_kwargs},
            "loss": self.loss.as_dict(),
            "ibrar": json.loads(self.ibrar) if self.ibrar is not None else None,
            "optimizer": self.optimizer_kwargs,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "seed": self.seed,
        }
        # The ambient default dtype (repro.nn.set_default_dtype) changes the
        # trained weights, so it must separate cache entries; omitted for
        # float64 so every pre-existing hash stays stable.
        dtype = str(get_default_dtype())
        if dtype != "float64":
            payload["dtype"] = dtype
        # Same pattern for compiled training: the key joins the payload only
        # when enabled, keeping every eager-trained hash (and checkpoint)
        # exactly where it was.
        if self.train_compile:
            payload["train_compile"] = True
        # Non-default kernel providers may reorder float reductions, so they
        # separate checkpoint/report cache entries; the default is omitted so
        # pre-existing hashes stay stable.
        if self.provider != "numpy":
            payload["provider"] = self.provider
        # The cached-Gram HSIC fast path (PR 4) changed the HSIC estimator's
        # floating-point evaluation order, i.e. the training trajectory of
        # every HSIC-regularized spec.  Version the estimator into those
        # specs' hashes so stale pre-fast-path checkpoints are recomputed
        # instead of silently served next to fresh ones; HSIC-free specs
        # keep their original hashes.
        if self.ibrar is not None or self.loss.name.startswith("ib-rar"):
            payload["hsic"] = "cached-gram-v2"
        # Counter-based dropout (PR 10) replaced the stateful-generator masks
        # with a pure function of (seed, layer id, step), changing every
        # dropout-bearing spec's training trajectory.  Version the scheme into
        # those hashes so stale generator-era checkpoints are recomputed;
        # dropout-free specs keep their original hashes.
        if self.model_kwargs.get("dropout"):
            payload["dropout_rng"] = "counter-v1"
        return payload

    def eval_dict(self) -> Dict[str, Any]:
        """The fields that determine the evaluation, JSON-ready."""
        payload = {
            "attacks": [a.as_dict() for a in self.attacks],
            "examples": self.eval_examples,
            "batch_size": self.eval_batch_size,
            "early_exit": bool(self.eval_early_exit),
            "cascade": bool(self.eval_cascade),
        }
        # Omitted when False so every pre-existing spec (and its cached
        # report in the artifact store) keeps its content hash.
        if self.eval_compile:
            payload["compile"] = True
        return payload

    @property
    def training_hash(self) -> str:
        """Content hash of the training recipe (checkpoint address)."""
        return _hash(self.training_dict())

    @property
    def content_hash(self) -> str:
        """Content hash of the full experiment (report address)."""
        return _hash({"train": self.training_dict(), "eval": self.eval_dict()})

    # -- serialization -----------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        data = self.training_dict()
        data["eval"] = self.eval_dict()
        data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        # "dtype", "hsic" and "dropout_rng" are derived annotations that
        # as_dict() emits (ambient dtype; HSIC-estimator and dropout-RNG
        # scheme versions) — accepted on input, never stored as fields.
        known = {"dataset", "model", "loss", "ibrar", "optimizer", "epochs", "batch_size", "seed", "dtype", "hsic", "dropout_rng", "train_compile", "provider", "eval", "name"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentSpecError(
                f"unknown experiment spec key(s) {unknown}; accepted: {sorted(known)}"
            )
        for key in ("dataset", "model"):
            if key not in data:
                raise ExperimentSpecError(f"experiment spec dict needs a '{key}' key")
        # ``as_dict`` emits "dtype" for non-float64 ambient dtypes.  The
        # ambient dtype is process state, not a spec field, so a spec can
        # only be revived faithfully in a session whose dtype matches —
        # otherwise its hashes (and cache addresses) would silently change.
        spec_dtype = data.get("dtype", "float64")
        ambient = str(get_default_dtype())
        if str(spec_dtype) != ambient:
            raise ExperimentSpecError(
                f"spec was produced under default dtype '{spec_dtype}' but the current "
                f"session uses '{ambient}'; call repro.nn.set_default_dtype({spec_dtype!r}) "
                "before loading it"
            )

        def _named(entry: Union[str, Mapping[str, Any]], what: str) -> Tuple[str, Dict[str, Any]]:
            if isinstance(entry, str):
                return entry, {}
            if isinstance(entry, Mapping) and "name" in entry:
                return entry["name"], dict(entry.get("params", {}))
            raise ExperimentSpecError(f"{what} must be a name or a {{name, params}} dict: {entry!r}")

        dataset, dataset_params = _named(data["dataset"], "dataset")
        model, model_params = _named(data["model"], "model")
        eval_section = dict(data.get("eval", {}))
        eval_known = {"attacks", "examples", "batch_size", "early_exit", "cascade", "compile"}
        eval_unknown = sorted(set(eval_section) - eval_known)
        if eval_unknown:
            raise ExperimentSpecError(
                f"unknown eval key(s) {eval_unknown}; accepted: {sorted(eval_known)}"
            )
        return cls(
            dataset=dataset,
            model=model,
            loss=data.get("loss", "ce"),
            ibrar=data.get("ibrar"),
            dataset_params=dataset_params,
            model_params=model_params,
            optimizer=data.get("optimizer", {}),
            epochs=data.get("epochs", 10),
            batch_size=data.get("batch_size", 100),
            seed=data.get("seed", 0),
            attacks=tuple(eval_section.get("attacks", ())),
            eval_examples=eval_section.get("examples"),
            eval_batch_size=eval_section.get("batch_size", 64),
            eval_early_exit=eval_section.get("early_exit", True),
            eval_cascade=eval_section.get("cascade", False),
            eval_compile=eval_section.get("compile", False),
            train_compile=data.get("train_compile", False),
            provider=data.get("provider", "numpy"),
            name=data.get("name", ""),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        ibrar = " +ibrar" if self.ibrar is not None else ""
        return (
            f"ExperimentSpec({self.label!r}: {self.loss.name}{ibrar} on "
            f"{self.model}/{self.dataset}, epochs={self.epochs}, seed={self.seed}, "
            f"attacks={len(self.attacks)}, hash={self.content_hash[:12]})"
        )


def load_specs(source: Union[str, Mapping[str, Any], Iterable]) -> Tuple[ExperimentSpec, ...]:
    """Load one or many specs from a JSON text / dict / iterable of either."""
    if isinstance(source, str):
        source = json.loads(source)
    if isinstance(source, Mapping):
        return (ExperimentSpec.from_dict(source),)
    return tuple(
        entry if isinstance(entry, ExperimentSpec) else ExperimentSpec.from_dict(entry)
        for entry in source
    )
