"""Execute experiment specs: train -> evaluate -> persist, serially or in parallel.

:class:`ExperimentRunner` runs one :class:`~repro.experiments.ExperimentSpec`
end to end against an :class:`~repro.experiments.ArtifactStore`:

1. if the store already holds a report for the spec's content hash, it is
   served as-is — **zero** forward passes;
2. else, if it holds a checkpoint for the spec's training hash, the model is
   rebuilt from disk and only the evaluation runs;
3. else the model is trained (with per-spec RNG isolation: every seed is
   derived from ``spec.seed`` via :func:`repro.utils.derive_seeds`), the
   checkpoint is stored, and the evaluation runs through the
   :class:`~repro.attacks.AttackEngine`.

:func:`run_grid` fans a list of specs out over ``multiprocessing`` workers.
Workers share the store (writes are atomic), completed hashes are skipped on
re-runs (resumability), and because every run is fully determined by its
spec, a parallel grid produces byte-identical reports to a serial one.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..attacks.engine import AttackEngine, EngineResult, ForwardPassCounter
from ..compile.backends import use_provider
from ..compile.trace_cache import use_trace_store
from ..core.ibrar import IBRAR
from ..data.loaders import ArrayDataset, DataLoader
from ..data.synthetic import SyntheticImageDataset, build_dataset
from ..evaluation.robustness import RobustnessReport
from ..models import build_model
from ..models.base import ImageClassifier
from ..nn.optim import SGD, StepLR
from ..obs import records as _records, trace as _trace
from ..training.trainer import Trainer
from ..utils.rng import derive_seeds, seed_everything
from .spec import ExperimentSpec
from .store import ArtifactStore

__all__ = ["ExperimentResult", "ExperimentRunner", "GridResult", "run_grid"]


# Datasets are deterministic functions of (name, params); memoize per process
# so a grid whose specs share a dataset synthesizes it once.
_DATASET_MEMO: Dict[Tuple[str, str], SyntheticImageDataset] = {}


def _memoized_dataset(name: str, params_json: str) -> SyntheticImageDataset:
    key = (name, params_json)
    if key not in _DATASET_MEMO:
        _DATASET_MEMO[key] = build_dataset(name, **json.loads(params_json))
    return _DATASET_MEMO[key]


@dataclass
class ExperimentResult:
    """Everything one :meth:`ExperimentRunner.run` produces."""

    spec: ExperimentSpec
    #: deterministic robustness numbers: method / natural / adversarial /
    #: worst_case — byte-stable across runs, processes and worker counts.
    report: Dict[str, Any]
    #: full engine output (per-attack telemetry, timings); ``None`` when the
    #: stored record predates telemetry.
    engine: Optional[Dict[str, Any]] = None
    history: Optional[Dict[str, Any]] = None
    from_cache: bool = False
    model_from_cache: bool = False
    seconds: float = 0.0
    train_seconds: float = 0.0
    train_forward_examples: int = 0

    @property
    def content_hash(self) -> str:
        return self.spec.content_hash

    def robustness_report(self) -> RobustnessReport:
        """The bench-facing view, with telemetry revived when available."""
        return RobustnessReport(
            method=self.report.get("method", self.spec.label),
            natural=self.report["natural"],
            adversarial=dict(self.report.get("adversarial", {})),
            worst_case=self.report.get("worst_case"),
            result=EngineResult.from_dict(self.engine) if self.engine else None,
        )

    def report_json(self) -> str:
        """Canonical JSON of the deterministic report (for equality checks)."""
        return json.dumps(
            {"hash": self.content_hash, "report": self.report}, sort_keys=True
        )


class ExperimentRunner:
    """Run specs end to end against a content-addressed artifact store."""

    def __init__(self, store: Union[ArtifactStore, str, None] = None, verbose: bool = False) -> None:
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self.verbose = verbose

    # -- builders ----------------------------------------------------------------
    def dataset_for(self, spec: ExperimentSpec) -> SyntheticImageDataset:
        """Build (or fetch the memoized) dataset described by the spec."""
        params = dict(spec.dataset_kwargs)
        params.setdefault("seed", derive_seeds(spec.seed, "data")["data"])
        return _memoized_dataset(spec.dataset, json.dumps(params, sort_keys=True))

    def model_for(self, spec: ExperimentSpec, num_classes: int) -> ImageClassifier:
        """Build the fresh (untrained) model described by the spec."""
        kwargs = dict(spec.model_kwargs)
        kwargs.pop("num_classes", None)
        kwargs.setdefault("seed", derive_seeds(spec.seed, "model")["model"])
        return build_model(spec.model, num_classes=num_classes, **kwargs)

    # -- training ----------------------------------------------------------------
    def train(
        self,
        spec: ExperimentSpec,
        dataset: Optional[SyntheticImageDataset] = None,
        strategy: Optional[Any] = None,
        model: Optional[ImageClassifier] = None,
    ):
        """Train the spec's model from scratch (no cache interaction).

        Returns ``(model, history_dict, timing)`` where ``timing`` counts the
        wall time and the forward passes the training issued.

        ``dataset``, ``strategy`` and ``model`` override the spec-described
        objects — the escape hatch for callers holding live objects the spec
        cannot express (e.g. the VIB/HBaR baseline losses).  Overridden runs
        must not be persisted under the spec's hashes; the cached paths
        (:meth:`run`, the grid runner) never pass overrides.
        """
        dataset = dataset if dataset is not None else self.dataset_for(spec)
        # Isolate this run from any global-RNG consumer, so results are
        # identical whether the spec runs alone, mid-grid, or in a worker.
        # The loader (like the dataset and model seeds that default from the
        # spec seed) uses spec.seed directly — the convention every bench
        # used before the runner existed, kept so trajectories match.
        seed_everything(derive_seeds(spec.seed, "global")["global"])
        loader_seed = spec.seed
        if model is None:
            model = self.model_for(spec, num_classes=dataset.num_classes)
        if strategy is None:
            strategy = spec.loss.build()
        optim = spec.optimizer_kwargs
        config = spec.ibrar_config
        start = time.perf_counter()
        # Identify any run record produced inside this call (Trainer.fit
        # under REPRO_RUNS) by the spec that caused it.
        annotation = _records.annotate(
            spec_name=spec.name,
            training_hash=spec.training_hash,
            content_hash=spec.content_hash,
        )
        # Scope the spec's kernel provider over the whole fit: every plan the
        # compiled trainer (or IB-RAR's internal trainer) builds resolves it
        # from the thread-local scope, no constructor plumbing needed.  The
        # default is pinned too — the thread-local scope outranks
        # REPRO_PROVIDER, so the environment cannot select a non-reference
        # provider for a run whose training_hash is the numpy hash.
        provider_scope = use_provider(spec.provider)
        # Route capture traces through the shared store: grid workers training
        # the same architecture deserialize one published trace per plan
        # signature instead of each re-tracing it (repro.compile.trace_cache).
        trace_scope = use_trace_store(self.store)
        with annotation, provider_scope, trace_scope, ForwardPassCounter(model) as counter:
            if config is not None:
                ibrar = IBRAR(
                    model,
                    config,
                    base_loss=strategy,
                    lr=optim["lr"],
                    momentum=optim["momentum"],
                    weight_decay=optim["weight_decay"],
                    step_size=int(optim["step_size"]),
                    gamma=optim["gamma"],
                    compile=spec.train_compile,
                )
                result = ibrar.fit(
                    dataset.x_train,
                    dataset.y_train,
                    epochs=spec.epochs,
                    batch_size=spec.batch_size,
                    seed=loader_seed,
                )
                history = result.history
            else:
                optimizer = SGD(
                    model.parameters(),
                    lr=optim["lr"],
                    momentum=optim["momentum"],
                    weight_decay=optim["weight_decay"],
                )
                trainer = Trainer(
                    model,
                    strategy,
                    optimizer=optimizer,
                    scheduler=StepLR(optimizer, step_size=int(optim["step_size"]), gamma=optim["gamma"]),
                    compile=spec.train_compile,
                )
                loader = DataLoader(
                    ArrayDataset(dataset.x_train, dataset.y_train),
                    batch_size=spec.batch_size,
                    shuffle=True,
                    drop_last=True,
                    seed=loader_seed,
                )
                history = trainer.fit(loader, epochs=spec.epochs)
        model.eval()
        # ForwardPassCounter instruments the eager forward funnel, which
        # compiled plan replays bypass entirely; TrainingCompileStats counts
        # those replays the same way (one call per plan forward), so the sum
        # reports consistent totals for eager and train_compile runs alike.
        compile_stats = history.compile_stats or {}
        timing = {
            "train_seconds": time.perf_counter() - start,
            "train_forward_calls": counter.calls
            + int(compile_stats.get("compiled_forward_calls", 0)),
            "train_forward_examples": counter.examples
            + int(compile_stats.get("compiled_forward_examples", 0)),
        }
        return model, history.as_dict(), timing

    def trained_model(self, spec: ExperimentSpec):
        """The spec's trained model, training-and-persisting on a store miss.

        Returns ``(model, from_cache, history_dict, timing)`` — the single
        checkpoint-resolution path shared by :meth:`run` and the benches'
        spec-based ``get_or_train``.
        """
        model = self.store.load_model(spec)
        if model is not None:
            record = self.store.load_train_record(spec) or {}
            timing = {"train_seconds": 0.0, "train_forward_calls": 0, "train_forward_examples": 0}
            return model, True, record.get("history"), timing
        if self.verbose:
            print(f"[experiments] training {spec!r}")
        model, history, timing = self.train(spec)
        self.store.save_model(spec, model, history=history, timing=timing)
        return model, False, history, timing

    # -- evaluation --------------------------------------------------------------
    def evaluate(
        self, spec: ExperimentSpec, model: ImageClassifier, dataset: SyntheticImageDataset
    ) -> EngineResult:
        """Run the spec's attack suite against a trained model."""
        limit = spec.eval_examples if spec.eval_examples is not None else len(dataset.x_test)
        images = dataset.x_test[:limit]
        labels = dataset.y_test[:limit]
        engine = AttackEngine(
            spec.attacks,
            batch_size=spec.eval_batch_size,
            early_exit=spec.eval_early_exit,
            cascade=spec.eval_cascade,
            compile=spec.eval_compile,
        )
        # Pinned even at the default so REPRO_PROVIDER cannot skew a run
        # whose hashes say "numpy" (see :meth:`train`).
        with use_provider(spec.provider):
            return engine.run(model, images, labels, method_name=spec.label)

    # -- the end-to-end unit -----------------------------------------------------
    def run(self, spec: ExperimentSpec, force: bool = False) -> ExperimentResult:
        """Train (or load) and evaluate (or load) one spec."""
        start = time.perf_counter()
        if force:
            self.store._quarantine(self.store.report_dir(spec.content_hash))
            self.store._quarantine(self.store.model_dir(spec.training_hash))
        record = self.store.load_report(spec)
        if record is not None:
            train_record = self.store.load_train_record(spec) or {}
            report = dict(record["report"])
            # The stored report carries the label of whichever spec first
            # computed it; the name is not part of the content hash, so a
            # relabeled row must show its *current* label without retraining.
            report["method"] = spec.label
            return ExperimentResult(
                spec=spec,
                report=report,
                engine=record.get("engine"),
                history=train_record.get("history"),
                from_cache=True,
                model_from_cache=True,
                seconds=time.perf_counter() - start,
            )

        model, model_from_cache, history, timing = self.trained_model(spec)
        result = self.evaluate(spec, model, self.dataset_for(spec))
        report = {
            "method": spec.label,
            "natural": result.natural,
            "adversarial": dict(result.adversarial),
            "worst_case": result.worst_case,
        }
        self.store.save_report(
            spec,
            {
                "report": report,
                "engine": result.as_dict(),
                "timing": dict(timing, eval_seconds=result.total_seconds),
            },
        )
        return ExperimentResult(
            spec=spec,
            report=report,
            engine=result.as_dict(),
            history=history,
            from_cache=False,
            model_from_cache=model_from_cache,
            seconds=time.perf_counter() - start,
            train_seconds=timing["train_seconds"],
            train_forward_examples=timing["train_forward_examples"],
        )


# --------------------------------------------------------------------------- #
# grid execution
# --------------------------------------------------------------------------- #
@dataclass
class GridResult:
    """Outcome of one :func:`run_grid` invocation."""

    results: List[ExperimentResult]
    seconds: float
    workers: int
    #: content hashes actually computed during *this* invocation (misses).
    computed: List[str] = field(default_factory=list)
    #: per-computed-spec timing stats reported by the executing process.
    stats: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def cached(self) -> int:
        """How many specs were served straight from the artifact store."""
        return len(self.results) - len(self.computed)

    @property
    def train_forward_examples(self) -> int:
        """Training forward passes issued by this invocation (0 = all cached)."""
        return sum(s.get("train_forward_examples", 0) for s in self.stats)

    def reports(self) -> List[RobustnessReport]:
        return [r.robustness_report() for r in self.results]

    def report_json(self) -> str:
        """Canonical JSON of every deterministic report, in input order.

        Byte-identical across serial and parallel executions of the same
        grid, and across cached and fresh invocations.
        """
        payload = [
            {"hash": r.content_hash, "name": r.spec.name, "report": r.report}
            for r in self.results
        ]
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def summary(self) -> Dict[str, Any]:
        """Aggregate timing/caching info (the CI grid artifact)."""
        return {
            "specs": len(self.results),
            "computed": len(self.computed),
            "cached": self.cached,
            "workers": self.workers,
            "seconds": round(self.seconds, 6),
            "train_forward_examples": self.train_forward_examples,
            "stats": self.stats,
        }


def _result_stats(result: ExperimentResult) -> Dict[str, Any]:
    """The per-spec stats entry reported by both serial and worker execution."""
    return {
        "hash": result.content_hash,
        "name": result.spec.name,
        "seconds": result.seconds,
        "train_seconds": result.train_seconds,
        "train_forward_examples": result.train_forward_examples,
        "model_from_cache": result.model_from_cache,
        "from_cache": result.from_cache,
    }


def _worker_run(payload: Tuple[str, str, Optional[Dict[str, str]]]) -> Dict[str, Any]:
    """Top-level (picklable) grid worker: run one spec against the shared store.

    The third payload element is an optional :func:`repro.obs.trace.carrier`
    from the parent process; attaching it re-enables tracing onto the
    parent's sink (the carrier includes the JSONL path, and appends are
    atomic per line) so a grid run stays one trace tree across processes.
    """
    from .. import obs as _obs

    spec_json, store_root, trace_parent = payload
    spec = ExperimentSpec.from_json(spec_json)
    runner = ExperimentRunner(store=ArtifactStore(store_root))
    with _trace.attach(trace_parent):
        try:
            with _trace.span(
                "grid.worker",
                {"spec": spec.content_hash} if _trace.enabled() else None,
            ):
                return _result_stats(runner.run(spec))
        finally:
            # Pool workers die via os._exit (no atexit): flush profiled
            # plans and this process's metrics before the work is dropped.
            _obs.flush()


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows)
        return multiprocessing.get_context("spawn")


def run_grid(
    specs: Sequence[ExperimentSpec],
    workers: int = 1,
    store: Union[ArtifactStore, str, None] = None,
    force: bool = False,
    runner: Optional[ExperimentRunner] = None,
) -> GridResult:
    """Run a list of specs, fanning cache misses out over worker processes.

    * duplicate specs (same content hash) are computed once;
    * specs whose reports are already stored are skipped entirely — rerunning
      an interrupted grid resumes where it stopped;
    * every result is collected *from the store*, so the reports are
      byte-identical no matter how many workers computed them.
    """
    specs = [s if isinstance(s, ExperimentSpec) else ExperimentSpec.from_dict(s) for s in specs]
    if runner is None:
        runner = ExperimentRunner(store=store)
    start = time.perf_counter()
    # The grid owns a store, so it always leaves a RunRecord behind — the
    # durable "what did this invocation do" artifact rendered by
    # ``python -m repro.obs runs list|diff``.
    window = _records.RunWindow("grid", label=f"grid[{len(specs)}]")

    with window:
        unique: Dict[str, ExperimentSpec] = {}
        for spec in specs:
            unique.setdefault(spec.content_hash, spec)
        if force:
            for spec in unique.values():
                runner.store._quarantine(runner.store.report_dir(spec.content_hash))
                runner.store._quarantine(runner.store.model_dir(spec.training_hash))
        # Pending = specs whose stored report does not *load* (not merely "a
        # file exists"): corrupt reports are quarantined here and rescheduled
        # into the waves, instead of surfacing as surprise recomputes during
        # collection.
        pending = [s for h, s in unique.items() if runner.store.load_report(s) is None]

        # Schedule in two waves so specs sharing a *training* recipe (e.g. the
        # same model re-evaluated under different suites) never train the same
        # checkpoint concurrently: the first wave holds one spec per training
        # hash, the second wave finds those checkpoints already in the store.
        first_wave: List[ExperimentSpec] = []
        second_wave: List[ExperimentSpec] = []
        seen_training: set = set()
        for spec in pending:
            if spec.training_hash in seen_training:
                second_wave.append(spec)
            else:
                seen_training.add(spec.training_hash)
                first_wave.append(spec)

        def _run_wave(wave: List[ExperimentSpec]) -> List[Dict[str, Any]]:
            if not wave:
                return []
            if workers > 1 and len(wave) > 1:
                parent = _trace.carrier()
                payloads = [(s.to_json(), str(runner.store.root), parent) for s in wave]
                context = _pool_context()
                with context.Pool(processes=min(workers, len(wave))) as pool:
                    return pool.map(_worker_run, payloads)
            return [_result_stats(runner.run(spec)) for spec in wave]

        stats: List[Dict[str, Any]] = _run_wave(first_wave) + _run_wave(second_wave)

        results = [runner.run(spec) for spec in specs]

    result = GridResult(
        results=results,
        seconds=time.perf_counter() - start,
        workers=workers,
        computed=[s.content_hash for s in pending],
        stats=stats,
    )
    try:
        _records.save_record(
            window.build(
                summary=result.summary(),
                specs=[
                    {
                        "name": s.name,
                        "content_hash": s.content_hash,
                        "training_hash": s.training_hash,
                    }
                    for s in specs
                ],
            ),
            store=runner.store,
        )
    except OSError:
        pass  # recording must never fail the grid
    return result
