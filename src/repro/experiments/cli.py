"""``python -m repro.experiments`` — run and inspect experiment grids.

Subcommands
-----------
``run SPEC.json [...]``
    Run one or more specs (each file holds a spec object or a list of spec
    objects) through the grid runner.  ``--workers N`` fans cache misses out
    over processes; completed specs are always served from the artifact
    store.  ``--report`` / ``--timing`` write the deterministic grid report
    and the timing/caching summary as JSON.
``inspect SPEC.json | HASH``
    Show a spec's hashes and cache status, or look a stored report up by
    (a prefix of) its content hash.
``list``
    Print the artifact-store manifest (``--json`` for machine-readable).
``clear``
    Delete every stored artifact (``--yes`` to skip the prompt).

All subcommands accept ``--store DIR`` (default: ``$REPRO_ARTIFACTS`` or
``.repro-artifacts``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..evaluation.robustness import format_table
from .runner import ExperimentRunner, run_grid
from .spec import ExperimentSpec, load_specs
from .store import ArtifactStore

__all__ = ["main"]


def _store(args: argparse.Namespace) -> ArtifactStore:
    return ArtifactStore(args.store)


def _load_spec_files(paths: List[str]) -> List[ExperimentSpec]:
    specs: List[ExperimentSpec] = []
    for path in paths:
        text = Path(path).read_text(encoding="utf-8")
        specs.extend(load_specs(text))
    return specs


def _cmd_run(args: argparse.Namespace) -> int:
    specs = _load_spec_files(args.specs)
    if not specs:
        print("no specs found", file=sys.stderr)
        return 2
    if getattr(args, "train_compile", False):
        # Note: train_compile joins the training hash, so this runs (and
        # caches) compiled-training checkpoints alongside any eager ones.
        specs = [spec.with_(train_compile=True) for spec in specs]
    store = _store(args)
    grid = run_grid(specs, workers=args.workers, store=store, force=args.force)
    attack_order = []
    for result in grid.results:
        for name in result.report.get("adversarial", {}):
            if name not in attack_order:
                attack_order.append(name)
    print(format_table(grid.reports(), attack_order=attack_order))
    print(
        f"\n{len(grid.results)} spec(s): {len(grid.computed)} computed, "
        f"{grid.cached} from cache ({store.root}) in {grid.seconds:.2f}s "
        f"with {grid.workers} worker(s)"
    )
    if args.report:
        Path(args.report).write_text(grid.report_json(), encoding="utf-8")
        print(f"grid report written to {args.report}")
    if args.timing:
        Path(args.timing).write_text(
            json.dumps(grid.summary(), sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        print(f"timing summary written to {args.timing}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    store = _store(args)
    target = args.target
    if Path(target).exists():
        specs = _load_spec_files([target])
        for spec in specs:
            print(spec.to_json(indent=2))
            print(f"content_hash:  {spec.content_hash}")
            print(f"training_hash: {spec.training_hash}")
            print(f"report cached:     {store.has_report(spec)}")
            print(f"checkpoint cached: {store.has_model(spec)}")
        return 0
    record = store.find_report(target)
    if record is None:
        print(f"no stored report matches hash prefix '{target}'", file=sys.stderr)
        return 1
    print(json.dumps(record, sort_keys=True, indent=2))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    manifest = _store(args).manifest()
    if args.json:
        print(json.dumps(manifest, sort_keys=True, indent=2))
        return 0
    print(f"artifact store: {manifest['root']}")
    print(f"models ({len(manifest['models'])}):")
    for entry in manifest["models"]:
        if entry.get("corrupt"):
            print(f"  {entry['training_hash'][:12]}  <corrupt>")
            continue
        ibrar = " +ibrar" if entry.get("ibrar") else ""
        print(
            f"  {entry['training_hash'][:12]}  {entry.get('loss')}{ibrar} on "
            f"{entry.get('model')}/{entry.get('dataset')}  "
            f"epochs={entry.get('epochs')} seed={entry.get('seed')}"
        )
    print(f"reports ({len(manifest['reports'])}):")
    for entry in manifest["reports"]:
        if entry.get("corrupt"):
            print(f"  {entry['content_hash'][:12]}  <corrupt>")
            continue
        natural = entry.get("natural")
        shown = f"{natural * 100:.2f}%" if natural is not None else "-"
        print(
            f"  {entry['content_hash'][:12]}  {entry.get('name') or '(unnamed)'}  "
            f"natural={shown}  attacks={','.join(entry.get('attacks', [])) or '-'}"
        )
    return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    store = _store(args)
    if not args.yes:
        answer = input(f"delete every artifact under {store.root}? [y/N] ")
        if answer.strip().lower() not in ("y", "yes"):
            print("aborted")
            return 1
    count = store.clear()
    print(f"removed {count} artifact(s) from {store.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run and inspect declarative experiment grids.",
    )
    store_help = "artifact store root (default: $REPRO_ARTIFACTS or .repro-artifacts)"
    parser.add_argument("--store", default=None, help=store_help)
    # ``--store`` is also accepted after the subcommand; SUPPRESS keeps the
    # subparser from clobbering a value given before it.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--store", default=argparse.SUPPRESS, help=store_help)
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", parents=[common], help="run spec file(s) through the grid runner"
    )
    run_parser.add_argument("specs", nargs="+", help="JSON files (spec object or list)")
    run_parser.add_argument("--workers", type=int, default=1, help="worker processes")
    run_parser.add_argument("--force", action="store_true", help="recompute even if cached")
    run_parser.add_argument("--report", default=None, help="write the grid report JSON here")
    run_parser.add_argument("--timing", default=None, help="write the timing summary JSON here")
    run_parser.add_argument(
        "--train-compile",
        dest="train_compile",
        action="store_true",
        help="train through compiled plans (separate training-hash cache entries)",
    )
    run_parser.set_defaults(func=_cmd_run)

    inspect_parser = sub.add_parser(
        "inspect", parents=[common], help="inspect a spec file or stored hash"
    )
    inspect_parser.add_argument("target", help="spec JSON path, or a content-hash prefix")
    inspect_parser.set_defaults(func=_cmd_inspect)

    list_parser = sub.add_parser("list", parents=[common], help="print the artifact-store manifest")
    list_parser.add_argument("--json", action="store_true", help="machine-readable output")
    list_parser.set_defaults(func=_cmd_list)

    clear_parser = sub.add_parser("clear", parents=[common], help="delete every stored artifact")
    clear_parser.add_argument("--yes", action="store_true", help="do not prompt")
    clear_parser.set_defaults(func=_cmd_clear)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
