"""Saving and loading model checkpoints as ``.npz`` archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from ..nn import Module

__all__ = ["save_checkpoint", "load_checkpoint", "load_state_into"]

PathLike = Union[str, Path]


def save_checkpoint(model: Module, path: PathLike, metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Serialize a model's state dict (plus optional JSON metadata) to ``path``.

    The archive stores every parameter/buffer under its dotted name and the
    metadata dict (if any) under the reserved key ``__metadata__``.  Returns
    the path actually written: ``np.savez`` appends ``.npz`` when the name
    lacks it, so the returned path always carries the suffix and exists.
    """
    path = Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    arrays: Dict[str, np.ndarray] = {key: np.asarray(value) for key, value in state.items()}
    if metadata is not None:
        encoded = json.dumps(metadata).encode("utf-8")
        arrays["__metadata__"] = np.frombuffer(encoded, dtype=np.uint8).copy()
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint(path: PathLike) -> tuple[Dict[str, np.ndarray], Optional[Dict[str, Any]]]:
    """Load ``(state_dict, metadata)`` from an ``.npz`` checkpoint."""
    path = Path(path)
    if not path.exists():
        # np.savez appends .npz if missing; mirror that behaviour on load.
        alternative = path.with_suffix(path.suffix + ".npz")
        if alternative.exists():
            path = alternative
        else:
            raise FileNotFoundError(path)
    with np.load(path, allow_pickle=False) as archive:
        state = {key: archive[key] for key in archive.files if key != "__metadata__"}
        metadata = None
        if "__metadata__" in archive.files:
            raw = archive["__metadata__"].tobytes().decode("utf-8")
            # An empty payload (e.g. a zero-length array from an older writer)
            # round-trips as an empty metadata dict rather than a JSON error.
            metadata = json.loads(raw) if raw else {}
    return state, metadata


def load_state_into(model: Module, path: PathLike) -> Optional[Dict[str, Any]]:
    """Load a checkpoint into ``model`` in place; returns the stored metadata."""
    state, metadata = load_checkpoint(path)
    model.load_state_dict(state)
    return metadata
