"""Shared utilities: seeding, logging, checkpoint serialization."""

from .logging import Timer, get_logger, log_section
from .rng import derive_seeds, generator, seed_everything
from .serialization import load_checkpoint, load_state_into, save_checkpoint

__all__ = [
    "seed_everything",
    "derive_seeds",
    "generator",
    "get_logger",
    "log_section",
    "Timer",
    "save_checkpoint",
    "load_checkpoint",
    "load_state_into",
]
