"""Lightweight experiment logging used by examples and benches."""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["get_logger", "log_section", "Timer"]

_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"


def get_logger(name: str = "repro", level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger writing to stderr (idempotent).

    The level is applied only on first configuration, so a later
    ``get_logger(name)`` call with the default level does not clobber a
    level the application (or a test) set explicitly.
    """
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        logger.setLevel(level)
    return logger


@contextmanager
def log_section(title: str, logger: Optional[logging.Logger] = None) -> Iterator[None]:
    """Log the start/end (with wall time) of an experiment section.

    When obs tracing is active the section also records a ``section.<title>``
    span, so bench phases land in the same trace tree as executor spans.
    """
    from ..obs import trace as _trace

    logger = logger or get_logger()
    logger.info("=== %s ===", title)
    start = time.perf_counter()
    with _trace.span("section." + title):
        yield
    logger.info("=== %s done in %.2fs ===", title, time.perf_counter() - start)


class Timer:
    """Simple wall-clock timer usable as a context manager."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None
