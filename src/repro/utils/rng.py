"""Deterministic seeding helpers.

All stochastic components (weight init, data generation, loaders, attacks)
take explicit seeds or ``numpy.random.Generator`` objects; these helpers
provide a single place to derive them from one experiment seed so runs are
reproducible end to end.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["seed_everything", "derive_seeds", "generator"]


def seed_everything(seed: int) -> None:
    """Seed NumPy's legacy global RNG (some third-party code may rely on it)."""
    np.random.seed(seed)


def generator(seed: int) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for the given seed."""
    return np.random.default_rng(seed)


def derive_seeds(base_seed: int, *names: str) -> Dict[str, int]:
    """Derive stable per-component seeds from a base seed and component names.

    Example::

        seeds = derive_seeds(0, "model", "data", "attack")
        model = VGG16(seed=seeds["model"])
    """
    seeds: Dict[str, int] = {}
    sequence = np.random.SeedSequence(base_seed)
    children = sequence.spawn(len(names))
    for name, child in zip(names, children):
        seeds[name] = int(child.generate_state(1)[0] % (2 ** 31 - 1))
    return seeds
