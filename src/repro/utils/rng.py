"""Deterministic seeding helpers.

All stochastic components (weight init, data generation, loaders, attacks)
take explicit seeds or ``numpy.random.Generator`` objects; these helpers
provide a single place to derive them from one experiment seed so runs are
reproducible end to end.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["seed_everything", "derive_seeds", "generator"]


def seed_everything(seed: int) -> None:
    """Seed NumPy's legacy global RNG (some third-party code may rely on it)."""
    np.random.seed(seed)


def generator(seed: int) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for the given seed."""
    return np.random.default_rng(seed)


def derive_seeds(base_seed: int, *names: str) -> Dict[str, int]:
    """Derive stable per-component seeds from a base seed and component names.

    Each seed depends on the *name* itself (hashed into the seed-sequence
    entropy), not on the name's position in the call, so
    ``derive_seeds(0, "data")["data"]`` equals the ``"data"`` entry of any
    larger call and never collides with ``derive_seeds(0, "model")["model"]``.

    Example::

        seeds = derive_seeds(0, "model", "data", "attack")
        model = VGG16(seed=seeds["model"])
    """
    seeds: Dict[str, int] = {}
    for name in names:
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        entropy = int.from_bytes(digest[:8], "little")
        sequence = np.random.SeedSequence([int(base_seed), entropy])
        seeds[name] = int(sequence.generate_state(1)[0] % (2 ** 31 - 1))
    return seeds
