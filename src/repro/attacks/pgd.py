"""Projected Gradient Descent attack (Madry et al., 2018).

PGD is both the paper's main evaluation attack and the inner maximization of
the PGD adversarial-training benchmark.  Paper defaults: eps = 8/255,
step size alpha = 2/255, 10 steps, random start inside the eps-ball.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Attack, LossFn
from ..compile.kernels import linf_step
from ..models.base import ImageClassifier

__all__ = ["PGD"]


class PGD(Attack):
    """Iterative L_inf attack with projection onto the eps-ball."""

    name = "pgd"

    def __init__(
        self,
        model: ImageClassifier,
        eps: float = 8.0 / 255.0,
        alpha: float = 2.0 / 255.0,
        steps: int = 10,
        random_start: bool = True,
        clip_min: float = 0.0,
        clip_max: float = 1.0,
        loss_fn: Optional[LossFn] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(model, eps=eps, clip_min=clip_min, clip_max=clip_max, loss_fn=loss_fn)
        if steps < 1:
            raise ValueError("PGD needs at least one step")
        self.alpha = alpha
        self.steps = steps
        self.random_start = random_start
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def _generate(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        adversarial = images.copy()
        if self.random_start and self.eps > 0:
            adversarial = adversarial + self._rng.uniform(-self.eps, self.eps, size=images.shape)
            adversarial = np.clip(adversarial, self.clip_min, self.clip_max)
        # The fused step writes into ping-pong buffers (the gradient may be a
        # plan-owned array the next query overwrites, so it never aliases).
        buffers = (np.empty_like(images), np.empty_like(images))
        for step in range(self.steps):
            gradient, _ = self._input_gradient(adversarial, labels)
            adversarial = linf_step(
                adversarial,
                gradient,
                self.alpha,
                images,
                self.eps,
                self.clip_min,
                self.clip_max,
                out=buffers[step % 2],
            )
        return adversarial
