"""Carlini & Wagner attack (Carlini & Wagner, 2017).

The paper evaluates with the Torchattacks ``CW`` implementation (L2 attack,
``steps = 200`` by default, swept from 10 to 50 steps in Figure 2b).  This
module reproduces that formulation: the perturbation is optimized in tanh
space with Adam, minimizing

    || x_adv - x ||_2^2  +  c * f(x_adv),
    f(x_adv) = max( Z_y - max_{i != y} Z_i, -kappa )

for an untargeted attack, where ``Z`` are the logits.  The best (lowest
distortion) adversarial example found over the optimization is returned; if
no misclassification is found, the final iterate is returned, matching the
Torchattacks behaviour of always returning a perturbed image.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Tensor
from ..models.base import ImageClassifier
from .base import Attack

__all__ = ["CW"]


def _atanh(x: np.ndarray) -> np.ndarray:
    return 0.5 * np.log((1 + x) / (1 - x))


class CW(Attack):
    """L2 Carlini-Wagner attack optimized with Adam in tanh space."""

    name = "cw"

    def __init__(
        self,
        model: ImageClassifier,
        c: float = 1.0,
        kappa: float = 0.0,
        steps: int = 200,
        lr: float = 0.01,
        clip_min: float = 0.0,
        clip_max: float = 1.0,
    ) -> None:
        # eps is unused by the L2 formulation but kept for the common interface.
        super().__init__(model, eps=0.0, clip_min=clip_min, clip_max=clip_max)
        if steps < 1:
            raise ValueError("CW needs at least one optimization step")
        self.c = c
        self.kappa = kappa
        self.steps = steps
        self.lr = lr

    def _generate(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        n = images.shape[0]
        span = self.clip_max - self.clip_min
        # Map images into tanh space; the 0.999999 margin avoids infinities.
        scaled = (images - self.clip_min) / span * 2.0 - 1.0
        w = _atanh(np.clip(scaled, -0.999999, 0.999999))

        best_adv = images.copy()
        best_l2 = np.full(n, np.inf)

        # Adam state for the perturbation variable.
        m = np.zeros_like(w)
        v = np.zeros_like(w)
        beta1, beta2, adam_eps = 0.9, 0.999, 1e-8

        one_hot = np.zeros((n, self.model.num_classes))
        one_hot[np.arange(n), labels] = 1.0

        for step in range(1, self.steps + 1):
            w_tensor = Tensor(w, requires_grad=True)
            adv = (w_tensor.tanh() + 1.0) * (span / 2.0) + self.clip_min
            logits = self.model.forward(adv)

            real = (logits * Tensor(one_hot)).sum(axis=1)
            other = (logits + Tensor(one_hot * (-1e4))).max(axis=1)
            # Untargeted: push the true-class logit below the best other logit.
            f_term = (real - other + self.kappa).maximum(0.0)
            l2 = ((adv - Tensor(images)) ** 2).sum(axis=(1, 2, 3))
            loss = (l2 + f_term * self.c).sum()
            loss.backward()
            gradient = w_tensor.grad

            # Track the best adversarial examples so far.
            adv_np = adv.data
            predictions = np.argmax(logits.data, axis=1)
            l2_np = ((adv_np - images) ** 2).sum(axis=(1, 2, 3))
            improved = (predictions != labels) & (l2_np < best_l2)
            best_l2[improved] = l2_np[improved]
            best_adv[improved] = adv_np[improved]

            m = beta1 * m + (1 - beta1) * gradient
            v = beta2 * v + (1 - beta2) * gradient * gradient
            m_hat = m / (1 - beta1 ** step)
            v_hat = v / (1 - beta2 ** step)
            w = w - self.lr * m_hat / (np.sqrt(v_hat) + adam_eps)

        # Examples never misclassified fall back to the final iterate.
        final_adv = (np.tanh(w) + 1.0) * (span / 2.0) + self.clip_min
        never_successful = np.isinf(best_l2)
        best_adv[never_successful] = final_adv[never_successful]
        return np.clip(best_adv, self.clip_min, self.clip_max)
