"""Fast Adaptive Boundary attack (Croce & Hein, 2020).

FAB searches for a minimal-norm perturbation by repeatedly projecting onto a
linearization of the closest decision boundary and biasing the iterate back
toward the original image.  The full FAB algorithm alternates a projection on
the intersection of the linearized boundary with the input box and an
extrapolation step; this implementation follows that scheme for the L_inf
norm with the standard simplifications used in lightweight re-implementations:

1. at each step, linearize ``f_k(x) = Z_k(x) - Z_y(x)`` for every class
   ``k != y`` and pick the class whose boundary is closest in the scaled
   L_inf metric;
2. project the current iterate onto that hyperplane (minimal L_inf step) and
   take a slightly overshooting step (``eta``) toward it;
3. bias the iterate back toward the original image with weight ``beta``
   (FAB's backward step), keeping the perturbation small;
4. finally, clip into the eps-ball / valid range, as the paper evaluates FAB
   at the same eps as the other attacks.

The attack is gradient-based and white-box, like the original.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..models.base import ImageClassifier
from .base import Attack

__all__ = ["FAB"]


class FAB(Attack):
    """Minimal-distortion boundary attack, evaluated inside an L_inf eps-ball."""

    name = "fab"

    def __init__(
        self,
        model: ImageClassifier,
        eps: float = 8.0 / 255.0,
        steps: int = 10,
        eta: float = 1.05,
        beta: float = 0.9,
        clip_min: float = 0.0,
        clip_max: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(model, eps=eps, clip_min=clip_min, clip_max=clip_max)
        if steps < 1:
            raise ValueError("FAB needs at least one step")
        self.steps = steps
        self.eta = eta
        self.beta = beta
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def _logits_and_full_jacobian(self, images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Logits and per-class input gradients, via one backward pass per class.

        Returns ``(logits, jacobian)`` with ``jacobian`` of shape
        ``(num_classes, N, C, H, W)``.
        """
        num_classes = self.model.num_classes
        n = images.shape[0]
        jacobian = np.zeros((num_classes,) + images.shape)
        logits_out = None
        for class_index in range(num_classes):
            x = Tensor(images, requires_grad=True)
            logits = self.model.forward(x)
            mask = np.zeros_like(logits.data)
            mask[:, class_index] = 1.0
            (logits * Tensor(mask)).sum().backward()
            jacobian[class_index] = x.grad
            logits_out = logits.data
        return logits_out, jacobian

    def _generate(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        n = images.shape[0]
        adversarial = images.copy()
        best = images.copy()
        best_distance = np.full(n, np.inf)

        for _ in range(self.steps):
            logits, jacobian = self._logits_and_full_jacobian(adversarial)
            predictions = np.argmax(logits, axis=1)

            # Record currently-misclassified iterates with the smallest distortion.
            distances = np.abs(adversarial - images).reshape(n, -1).max(axis=1)
            improved = (predictions != labels) & (distances < best_distance)
            best_distance[improved] = distances[improved]
            best[improved] = adversarial[improved]

            flat_dim = int(np.prod(images.shape[1:]))
            for i in range(n):
                y = labels[i]
                # Difference functions f_k = Z_k - Z_y, linearized at the iterate.
                margins = logits[i] - logits[i, y]
                gradients = jacobian[:, i] - jacobian[y, i]
                grad_l1 = np.abs(gradients).reshape(self.model.num_classes, -1).sum(axis=1)
                grad_l1[y] = np.inf
                # Distance to each linearized boundary in the L_inf metric
                # is |f_k| / ||grad f_k||_1.
                with np.errstate(divide="ignore", invalid="ignore"):
                    boundary_distance = np.abs(margins) / np.maximum(grad_l1, 1e-12)
                boundary_distance[y] = np.inf
                target = int(np.argmin(boundary_distance))

                g = gradients[target].reshape(-1)
                f_val = margins[target]
                denom = max(np.abs(g).sum(), 1e-12)
                # Minimal L_inf projection onto the hyperplane f + g . delta = 0
                # moves every coordinate by the same magnitude along sign(g).
                step_size = max(-f_val, 0.0) / denom if f_val < 0 else (-f_val) / denom
                delta = self.eta * step_size * np.sign(g)
                candidate = adversarial[i].reshape(-1) + delta

                # Backward step: bias toward the original image (FAB's beta step).
                original = images[i].reshape(-1)
                candidate = self.beta * candidate + (1.0 - self.beta) * original
                adversarial[i] = candidate.reshape(images.shape[1:])

            adversarial = self._project(adversarial, images)

        # Final bookkeeping with the last iterate.
        logits_final = self.model.forward(Tensor(adversarial)).data
        predictions = np.argmax(logits_final, axis=1)
        distances = np.abs(adversarial - images).reshape(n, -1).max(axis=1)
        improved = (predictions != labels) & (distances < best_distance)
        best[improved] = adversarial[improved]
        still_clean = np.isinf(best_distance) & ~improved
        best[still_clean] = adversarial[still_clean]
        return self._project(best, images)
