"""Fast Gradient Sign Method (Goodfellow et al., 2015)."""

from __future__ import annotations

import numpy as np

from .base import Attack

__all__ = ["FGSM"]


class FGSM(Attack):
    """Single-step L_inf attack: ``x_adv = clip(x + eps * sign(grad))``."""

    name = "fgsm"

    def _generate(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        gradient, _ = self._input_gradient(images, labels)
        adversarial = images + self.eps * np.sign(gradient)
        return self._project(adversarial, images)
