"""Fast Gradient Sign Method (Goodfellow et al., 2015)."""

from __future__ import annotations

import numpy as np

from .base import Attack
from ..compile.kernels import linf_step

__all__ = ["FGSM"]


class FGSM(Attack):
    """Single-step L_inf attack: ``x_adv = clip(x + eps * sign(grad))``."""

    name = "fgsm"

    def _generate(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        gradient, _ = self._input_gradient(images, labels)
        return linf_step(
            images, gradient, self.eps, images, self.eps, self.clip_min, self.clip_max
        )
