"""Composable attack engine: specs, suites, batched early-exit evaluation.

This module decouples *what an attack is* from *which model it runs against*:

* :class:`AttackSpec` — a frozen, serializable description of an attack
  (registry name + hyperparameters, **no model**).  A spec can be built
  against any model via :meth:`AttackSpec.build`, and every constructed
  :class:`~repro.attacks.base.Attack` can be turned back into a spec via
  ``attack.spec()``.  Suites become plain lists of specs that are reusable
  across every model in a table row.
* :class:`AttackEngine` — runs a suite of specs (or pre-built attacks)
  against one model with *batched early exit*: the clean forward pass is
  computed once and shared, examples the model already misclassifies are
  dropped from every attack batch, and (in cascade mode) examples fooled by
  an earlier attack are dropped from later ones.  Per-attack wall time and
  model-forward-pass counts are recorded as telemetry.
* :class:`EnsembleAttack` — an AutoAttack-style worst-case composition: an
  ``Attack`` built from multiple specs that keeps, per example, the
  perturbation achieving the lowest true-class margin.  Registered in the
  attack registry as ``"ensemble"``.

Early exit issues strictly fewer model forward passes than the legacy
per-attack loop.  For attacks that perturb each example independently of its
batch (every deterministic attack here — FGSM, PGD without random start,
NIFGSM, MIFGSM, CW, FAB, DeepFool) the accuracy numbers are *identical*:
skipped examples are counted as misclassified, which is what the attack
would conclude anyway.  Attacks that draw batch-shaped randomness (PGD with
``random_start=True``) see different draws once batches shrink, so their
numbers are statistically equivalent rather than bitwise equal; pass
``early_exit=False`` when bitwise reproduction of the legacy loop matters
for a stochastic suite.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..nn import Tensor, no_grad
from ..models.base import ImageClassifier, predict_batched as _predict_batched
from ..obs import trace as _trace
from ..obs.registry import get_registry
from .base import Attack, AttackConfigError

__all__ = [
    "AttackSpec",
    "AttackEngine",
    "AttackTelemetry",
    "EngineResult",
    "EnsembleAttack",
    "ForwardPassCounter",
    "format_telemetry",
    "paper_suite_specs",
]


# --------------------------------------------------------------------------- #
# AttackSpec
# --------------------------------------------------------------------------- #
def _freeze_value(value: Any) -> Any:
    """Normalize a hyperparameter value into a hashable, comparable form."""
    if isinstance(value, AttackSpec):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return tuple(_freeze_value(v) for v in value.tolist())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if isinstance(value, Mapping):
        if set(value) >= {"name"} and set(value) <= {"name", "params"}:
            return AttackSpec.from_dict(value)
        raise AttackConfigError(f"mapping hyperparameter values are not supported: {value!r}")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise AttackConfigError(
        f"hyperparameter value {value!r} of type {type(value).__name__} is not "
        "serializable; add the parameter to the attack's `spec_exclude`"
    )


def _jsonable(value: Any) -> Any:
    if isinstance(value, AttackSpec):
        return value.as_dict()
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def _revive(value: Any) -> Any:
    if isinstance(value, Mapping):
        return AttackSpec.from_dict(value)
    if isinstance(value, list):
        return tuple(_revive(v) for v in value)
    return value


@dataclass(frozen=True)
class AttackSpec:
    """A frozen, model-free description of an attack.

    Parameters
    ----------
    name:
        Registry name (``"pgd"``, ``"cw"``, ``"ensemble"``, ...).
    params:
        Hyperparameters as a mapping (or an iterable of ``(key, value)``
        pairs); normalized to a sorted tuple of pairs so specs are hashable
        and comparable.  Values may be scalars, strings, ``None``, nested
        sequences, or other :class:`AttackSpec` objects (the ensemble case).
    """

    name: str
    params: Any = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name).lower())
        raw = self.params
        if isinstance(raw, Mapping):
            items = raw.items()
        else:
            items = tuple(raw)
        frozen = tuple(sorted((str(key), _freeze_value(value)) for key, value in items))
        object.__setattr__(self, "params", frozen)

    # -- accessors ---------------------------------------------------------------
    @property
    def kwargs(self) -> Dict[str, Any]:
        """Hyperparameters as a plain keyword dict (build-ready)."""
        return dict(self.params)

    def get(self, key: str, default: Any = None) -> Any:
        return self.kwargs.get(key, default)

    def with_params(self, **updates: Any) -> "AttackSpec":
        """Return a new spec with some hyperparameters replaced/added."""
        merged = self.kwargs
        merged.update(updates)
        return AttackSpec(self.name, merged)

    # -- model binding -----------------------------------------------------------
    def build(self, model: ImageClassifier, **overrides: Any) -> Attack:
        """Instantiate this attack against ``model`` (strict kwarg checking)."""
        from . import build_attack

        kwargs = self.kwargs
        kwargs.update(overrides)
        return build_attack(self.name, model, **kwargs)

    @classmethod
    def from_attack(cls, attack: Attack) -> "AttackSpec":
        """Recover the spec of a constructed attack (``attack.spec()``)."""
        return cls(attack.name, attack.hyperparameters())

    # -- serialization -----------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": {k: _jsonable(v) for k, v in self.params}}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AttackSpec":
        return cls(data["name"], {k: _revive(v) for k, v in dict(data.get("params", {})).items()})

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AttackSpec":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"AttackSpec({self.name!r}, {inner})" if inner else f"AttackSpec({self.name!r})"


def coerce_spec(entry: Union["AttackSpec", Attack, str, Mapping[str, Any]]) -> "AttackSpec":
    """Turn a spec / attack / registry name / dict into an :class:`AttackSpec`."""
    if isinstance(entry, AttackSpec):
        return entry
    if isinstance(entry, Attack):
        return entry.spec()
    if isinstance(entry, str):
        return AttackSpec(entry)
    if isinstance(entry, Mapping):
        return AttackSpec.from_dict(entry)
    raise AttackConfigError(f"cannot interpret {entry!r} as an attack spec")


def paper_suite_specs(
    eps: float = 8.0 / 255.0,
    alpha: float = 2.0 / 255.0,
    pgd_steps: int = 10,
    cw_steps: int = 20,
    seed: int = 0,
) -> List[AttackSpec]:
    """The five evaluation attacks of Tables 1-2 as model-free specs.

    ``cw_steps`` defaults to 20 (the paper uses 200); benches raise it when a
    longer optimization is affordable.
    """
    return [
        AttackSpec("pgd", dict(eps=eps, alpha=alpha, steps=pgd_steps, seed=seed)),
        AttackSpec("cw", dict(steps=cw_steps)),
        AttackSpec("fgsm", dict(eps=eps)),
        AttackSpec("fab", dict(eps=eps, steps=pgd_steps, seed=seed)),
        AttackSpec("nifgsm", dict(eps=eps, alpha=alpha, steps=pgd_steps)),
    ]


# --------------------------------------------------------------------------- #
# telemetry
# --------------------------------------------------------------------------- #
class ForwardPassCounter:
    """Count model forward passes (calls and examples) while installed.

    Instruments ``model.forward_with_hidden`` — the single funnel through
    which every forward pass of an :class:`ImageClassifier` flows — via an
    instance attribute, restored on exit.  Re-entrant ``with`` blocks keep a
    single running tally.
    """

    def __init__(self, model: ImageClassifier) -> None:
        self.model = model
        self.calls = 0
        self.examples = 0
        self._depth = 0
        #: instance-level forward_with_hidden that was installed before this
        #: counter (e.g. an enclosing counter's wrapper); restored on exit.
        self._previous = None

    def snapshot(self) -> Tuple[int, int]:
        return self.calls, self.examples

    def __enter__(self) -> "ForwardPassCounter":
        if self._depth == 0:
            self._previous = self.model.__dict__.get("forward_with_hidden")
            original = self.model.forward_with_hidden

            def counted(x: Tensor):
                self.calls += 1
                self.examples += int(np.shape(x.data if isinstance(x, Tensor) else x)[0])
                return original(x)

            self.model.forward_with_hidden = counted
        self._depth += 1
        return self

    def __exit__(self, *exc_info) -> None:
        self._depth -= 1
        if self._depth == 0:
            if self._previous is not None:
                self.model.forward_with_hidden = self._previous
            else:
                self.model.__dict__.pop("forward_with_hidden", None)
            self._previous = None


@dataclass
class AttackTelemetry:
    """Per-attack accounting recorded by :class:`AttackEngine`.

    ``forward_calls`` / ``forward_examples`` count *eager* model passes
    (including eager fallbacks inside a compiled run); the ``compiled_*``
    fields count static-plan replays, and ``compiled_fallbacks`` how often a
    compiled run had to fall back to eager (unseen shapes past the plan
    budget, unsupported losses).
    """

    name: str
    examples_attacked: int
    examples_skipped: int
    forward_calls: int
    forward_examples: int
    seconds: float
    accuracy: float
    compiled_forward_calls: int = 0
    compiled_grad_calls: int = 0
    compiled_fallbacks: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "examples_attacked": self.examples_attacked,
            "examples_skipped": self.examples_skipped,
            "forward_calls": self.forward_calls,
            "forward_examples": self.forward_examples,
            "seconds": round(self.seconds, 6),
            "accuracy": self.accuracy,
            "compiled_forward_calls": self.compiled_forward_calls,
            "compiled_grad_calls": self.compiled_grad_calls,
            "compiled_fallbacks": self.compiled_fallbacks,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AttackTelemetry":
        kwargs = {k: data[k] for k in (
            "name", "examples_attacked", "examples_skipped",
            "forward_calls", "forward_examples", "seconds", "accuracy",
        )}
        for key in ("compiled_forward_calls", "compiled_grad_calls", "compiled_fallbacks"):
            kwargs[key] = data.get(key, 0)
        return cls(**kwargs)

    def publish(self) -> "AttackTelemetry":
        """Mirror this record onto the shared obs registry (``attack.*``).

        Counters accumulate across runs, labeled per attack; ``accuracy``
        lands as a gauge (latest run wins).  The engine calls this for
        every record it appends, so a registry snapshot always carries the
        same numbers the per-run telemetry list does.
        """
        registry = get_registry()
        labels = {"attack": self.name}
        registry.counter("attack.runs", labels).inc()
        registry.counter("attack.examples_attacked", labels).inc(self.examples_attacked)
        registry.counter("attack.examples_skipped", labels).inc(self.examples_skipped)
        registry.counter("attack.forward_calls", labels).inc(self.forward_calls)
        registry.counter("attack.forward_examples", labels).inc(self.forward_examples)
        registry.counter("attack.seconds", labels).inc(self.seconds)
        registry.counter("attack.compiled_forward_calls", labels).inc(
            self.compiled_forward_calls
        )
        registry.counter("attack.compiled_grad_calls", labels).inc(
            self.compiled_grad_calls
        )
        registry.counter("attack.compiled_fallbacks", labels).inc(
            self.compiled_fallbacks
        )
        registry.gauge("attack.accuracy", labels).set(self.accuracy)
        return self


@dataclass
class EngineResult:
    """Everything one :meth:`AttackEngine.run` produces."""

    method: str
    natural: float
    adversarial: "OrderedDict[str, float]"
    worst_case: float
    telemetry: List[AttackTelemetry] = field(default_factory=list)
    early_exit: bool = True
    cascade: bool = False
    #: whether this run executed through a compiled plan (``compile=True``
    #: and the model captured successfully).
    compiled: bool = False
    #: capture/planning failure message when ``compile=True`` fell back.
    compile_error: Optional[str] = None
    #: per-example survival mask after the whole suite (clean-correct AND
    #: unfooled by every attack) — the worst-case ensemble outcome.
    survivors: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def total_forward_calls(self) -> int:
        return sum(t.forward_calls for t in self.telemetry)

    @property
    def total_forward_examples(self) -> int:
        return sum(t.forward_examples for t in self.telemetry)

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.telemetry)

    def mean_adversarial(self) -> float:
        if not self.adversarial:
            return 0.0
        return float(np.mean(list(self.adversarial.values())))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "natural": self.natural,
            "adversarial": dict(self.adversarial),
            "worst_case": self.worst_case,
            "early_exit": self.early_exit,
            "cascade": self.cascade,
            "compiled": self.compiled,
            "compile_error": self.compile_error,
            "total_forward_calls": self.total_forward_calls,
            "total_forward_examples": self.total_forward_examples,
            "total_seconds": round(self.total_seconds, 6),
            "telemetry": [t.as_dict() for t in self.telemetry],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineResult":
        """Rebuild a result from :meth:`as_dict` output.

        The per-example ``survivors`` mask is not serialized, so it comes
        back as ``None``; the aggregate ``total_*`` values are recomputed
        from the revived telemetry.
        """
        return cls(
            method=data["method"],
            natural=data["natural"],
            adversarial=OrderedDict(data.get("adversarial", {})),
            worst_case=data["worst_case"],
            telemetry=[AttackTelemetry.from_dict(t) for t in data.get("telemetry", [])],
            early_exit=data.get("early_exit", True),
            cascade=data.get("cascade", False),
            compiled=data.get("compiled", False),
            compile_error=data.get("compile_error"),
        )


def format_telemetry(result: EngineResult) -> str:
    """Render an engine result's telemetry as an aligned text table."""
    header = ["Attack", "Attacked", "Skipped", "Forwards", "Fwd-examples", "Seconds", "Acc %"]
    rows = [header]
    for t in result.telemetry:
        rows.append(
            [
                t.name,
                str(t.examples_attacked),
                str(t.examples_skipped),
                str(t.forward_calls),
                str(t.forward_examples),
                f"{t.seconds:.3f}",
                f"{t.accuracy * 100:.2f}",
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows]
    lines.insert(1, "-" * (sum(widths) + 2 * (len(widths) - 1)))
    lines.append(
        f"worst-case (ensemble) accuracy: {result.worst_case * 100:.2f}%  "
        f"— {result.total_forward_examples} forward-examples total"
    )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# AttackEngine
# --------------------------------------------------------------------------- #
SuiteLike = Union[
    None,
    Sequence[Union[AttackSpec, Attack, str, Mapping[str, Any]]],
    Mapping[str, Union[AttackSpec, Attack]],
]


def normalize_suite(suite: SuiteLike) -> "OrderedDict[str, Union[AttackSpec, Attack]]":
    """Normalize any accepted suite shape into an ordered name -> entry map.

    Accepts ``None`` (the paper suite), a mapping of name to spec/attack, or a
    sequence of specs / attacks / registry names / spec dicts.  Duplicate
    names are disambiguated with ``#2``, ``#3``, ... suffixes.
    """
    if suite is None:
        suite = paper_suite_specs()
    if isinstance(suite, Mapping):
        return OrderedDict(
            (str(name), entry if isinstance(entry, Attack) else coerce_spec(entry))
            for name, entry in suite.items()
        )
    normalized: "OrderedDict[str, Union[AttackSpec, Attack]]" = OrderedDict()
    for entry in suite:
        if not isinstance(entry, Attack):
            entry = coerce_spec(entry)
        name = entry.name
        if name in normalized:
            index = 2
            while f"{name}#{index}" in normalized:
                index += 1
            name = f"{name}#{index}"
        normalized[name] = entry
    return normalized


class AttackEngine:
    """Run a suite of attack specs against a model, sharing work across attacks.

    Parameters
    ----------
    suite:
        Anything :func:`normalize_suite` accepts: ``None`` (the paper's five
        attacks), a list of :class:`AttackSpec` (the idiomatic shape — specs
        are model-free and reusable across every model in a table), a mapping
        of name to spec, or legacy mappings/lists of pre-built attacks.
    batch_size:
        Attack and prediction batch size.
    early_exit:
        Drop examples the model misclassifies *on clean inputs* from every
        attack batch (they are counted as misclassified, which is what the
        attack would conclude).  Issues strictly fewer forward passes than
        the legacy per-attack loop with identical accuracies for
        per-example-deterministic attacks; attacks drawing batch-shaped
        randomness (random-start PGD) get different draws on the smaller
        batches, so their numbers match statistically, not bitwise.
    cascade:
        Additionally drop examples *fooled by an earlier attack* from later
        attack batches (AutoAttack-style worst-case evaluation).  Per-attack
        accuracies then become cumulative ("accuracy after attacks so far"),
        ending at the worst-case ensemble accuracy; use this mode when only
        the worst-case number matters and speed does.
    compile:
        Capture the model into a static, buffer-pooled execution plan
        (:mod:`repro.compile`) once per :meth:`run` and drive predictions and
        the PGD-family gradient loop through it.  Falls back to eager
        execution — per batch for unseen shapes, wholesale when the model
        cannot be captured — so results are produced either way;
        ``EngineResult.compiled`` / ``compile_error`` report what happened
        and the telemetry counts compiled vs eager passes.
    compile_options:
        Extra keyword arguments for :func:`repro.compile.compile_model`
        (``fold_bn``, ``max_plans``, ...).
    """

    def __init__(
        self,
        suite: SuiteLike = None,
        batch_size: int = 64,
        early_exit: bool = True,
        cascade: bool = False,
        compile: bool = False,
        compile_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.suite = normalize_suite(suite)
        self.batch_size = batch_size
        self.early_exit = bool(early_exit) or bool(cascade)
        self.cascade = bool(cascade)
        self.compile = bool(compile)
        self.compile_options = dict(compile_options or {})

    def _resolve(self, entry: Union[AttackSpec, Attack], model: ImageClassifier) -> Attack:
        if isinstance(entry, AttackSpec):
            return entry.build(model)
        if entry.model is not model:
            raise AttackConfigError(
                f"attack {entry!r} is bound to a different model; pass an AttackSpec "
                "(attack.spec()) to run a suite against arbitrary models"
            )
        return entry

    def _compile_model(self, model: ImageClassifier, images: np.ndarray):
        """Best-effort model capture; returns ``(compiled_or_None, error_or_None)``."""
        if not self.compile or not len(images):
            return None, None
        from ..compile import CompileError, compile_model

        was_training = model.training
        model.eval()
        try:
            return compile_model(model, images[: self.batch_size], **self.compile_options), None
        except CompileError as error:
            return None, str(error)
        finally:
            model.train(was_training)

    def run(
        self,
        model: ImageClassifier,
        images: np.ndarray,
        labels: np.ndarray,
        method_name: str = "model",
    ) -> EngineResult:
        """Evaluate ``model`` on ``images`` under every attack in the suite."""
        from ..nn import get_default_dtype

        images = np.asarray(images, dtype=get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if len(images) != len(labels):
            raise ValueError("images and labels must have the same batch size")
        n = len(images)
        compiled, compile_error = self._compile_model(model, images)

        def predict(batch_images: np.ndarray) -> np.ndarray:
            if compiled is None:
                return _predict_batched(model, batch_images, self.batch_size)
            parts = [
                compiled.predict(batch_images[start : start + self.batch_size])
                for start in range(0, len(batch_images), self.batch_size)
            ]
            return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

        def compiled_snapshot() -> Tuple[int, int, int]:
            return compiled.stats.snapshot() if compiled is not None else (0, 0, 0)

        counter = ForwardPassCounter(model)
        telemetry: List[AttackTelemetry] = []
        # Evaluation semantics are eval-mode everywhere (predictions and
        # attacks both force it); pinning the mode for the whole run keeps
        # the compiled fast path live between batches.
        was_training = model.training
        model.eval()
        try:
            return self._run_pinned(
                model, images, labels, method_name, counter, telemetry,
                compiled, compile_error, predict, compiled_snapshot, n,
            )
        finally:
            model.train(was_training)
            # Pre-built suite attacks outlive the run; never leave this
            # run's plan (a weight snapshot) wired into them.
            for entry in self.suite.values():
                if isinstance(entry, Attack):
                    entry.use_compiled(None)

    def _run_pinned(
        self,
        model: ImageClassifier,
        images: np.ndarray,
        labels: np.ndarray,
        method_name: str,
        counter: ForwardPassCounter,
        telemetry: List[AttackTelemetry],
        compiled,
        compile_error,
        predict,
        compiled_snapshot,
        n: int,
    ) -> EngineResult:
        with counter:
            start_time = time.perf_counter()
            compiled_before = compiled_snapshot()
            with _trace.span(
                "attack.clean", {"examples": n} if _trace.enabled() else None
            ):
                clean_predictions = predict(images)
            clean_correct = clean_predictions == labels
            natural = float(clean_correct.mean()) if n else 0.0
            compiled_after = compiled_snapshot()
            telemetry.append(
                AttackTelemetry(
                    name="clean",
                    examples_attacked=n,
                    examples_skipped=0,
                    forward_calls=counter.calls,
                    forward_examples=counter.examples,
                    seconds=time.perf_counter() - start_time,
                    accuracy=natural,
                    compiled_forward_calls=compiled_after[0] - compiled_before[0],
                    compiled_grad_calls=compiled_after[1] - compiled_before[1],
                    compiled_fallbacks=compiled_after[2] - compiled_before[2],
                ).publish()
            )

            alive = clean_correct.copy()
            adversarial: "OrderedDict[str, float]" = OrderedDict()
            for name, entry in self.suite.items():
                attack = self._resolve(entry, model)
                # Always (re)install — None clears any plan a previous run
                # left behind; run()'s finally clears pre-built attacks
                # again once this run is over.
                attack.use_compiled(compiled)
                if self.cascade:
                    active = alive
                elif self.early_exit:
                    active = clean_correct
                else:
                    active = np.ones(n, dtype=bool)
                indices = np.flatnonzero(active)
                survived = np.zeros(n, dtype=bool)
                calls_before, examples_before = counter.snapshot()
                compiled_before = compiled_snapshot()
                attack_start = time.perf_counter()
                with _trace.span(
                    "attack." + name,
                    {"examples": int(len(indices))} if _trace.enabled() else None,
                ):
                    for batch_start in range(0, len(indices), self.batch_size):
                        batch = indices[batch_start : batch_start + self.batch_size]
                        adversarial_batch = attack.attack(images[batch], labels[batch])
                        predictions = predict(adversarial_batch)
                        survived[batch] = predictions == labels[batch]
                alive = alive & survived
                accuracy = float(alive.mean() if self.cascade else survived.mean()) if n else 0.0
                adversarial[name] = accuracy
                calls_after, examples_after = counter.snapshot()
                compiled_after = compiled_snapshot()
                telemetry.append(
                    AttackTelemetry(
                        name=name,
                        examples_attacked=len(indices),
                        examples_skipped=n - len(indices),
                        forward_calls=calls_after - calls_before,
                        forward_examples=examples_after - examples_before,
                        seconds=time.perf_counter() - attack_start,
                        accuracy=accuracy,
                        compiled_forward_calls=compiled_after[0] - compiled_before[0],
                        compiled_grad_calls=compiled_after[1] - compiled_before[1],
                        compiled_fallbacks=compiled_after[2] - compiled_before[2],
                    ).publish()
                )
        return EngineResult(
            method=method_name,
            natural=natural,
            adversarial=adversarial,
            worst_case=float(alive.mean()) if n else 0.0,
            telemetry=telemetry,
            early_exit=self.early_exit,
            cascade=self.cascade,
            compiled=compiled is not None,
            compile_error=compile_error,
            survivors=alive,
        )


# --------------------------------------------------------------------------- #
# worst-case ensemble attack
# --------------------------------------------------------------------------- #
class EnsembleAttack(Attack):
    """Worst-case composition of several attacks (AutoAttack-style).

    Runs each sub-attack (built fresh from its spec, so the ensemble is
    reusable and picklable at the spec level) and keeps, per example, the
    perturbation achieving the **lowest true-class margin**
    ``Z_y - max_{k != y} Z_k``.  With ``cascade=True`` (the default, matching
    AutoAttack) examples already fooled by an earlier sub-attack are dropped
    from later sub-attack batches.

    Each sub-attack enforces its own perturbation constraint (the paper's
    suite mixes L_inf attacks with the L2 CW attack); the ensemble does not
    re-project their outputs.
    """

    name = "ensemble"

    def __init__(
        self,
        model: ImageClassifier,
        specs: Optional[Iterable[Union[AttackSpec, str, Mapping[str, Any]]]] = None,
        cascade: bool = True,
        eps: float = 8.0 / 255.0,
        clip_min: float = 0.0,
        clip_max: float = 1.0,
    ) -> None:
        super().__init__(model, eps=eps, clip_min=clip_min, clip_max=clip_max)
        entries = list(specs) if specs is not None else paper_suite_specs(eps=eps)
        if not entries:
            raise AttackConfigError("an ensemble needs at least one sub-attack spec")
        self.specs = tuple(coerce_spec(entry) for entry in entries)
        self.cascade = bool(cascade)

    def _margins(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """True-class margin per example (negative means misclassified)."""
        if self._compiled is not None:
            logits = self._compiled(images)
        else:
            with no_grad():
                logits = self.model.forward(Tensor(images)).data
        true_logit = logits[np.arange(len(labels)), labels]
        masked = logits.copy()
        masked[np.arange(len(labels)), labels] = -np.inf
        return true_logit - masked.max(axis=1)

    def _generate(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        best = images.copy()
        best_margin = self._margins(images, labels)
        for spec in self.specs:
            if self.cascade:
                indices = np.flatnonzero(best_margin > 0.0)
                if indices.size == 0:
                    break
            else:
                indices = np.arange(len(images))
            sub_attack = spec.build(self.model)
            if self._compiled is not None:
                sub_attack.use_compiled(self._compiled)
            candidates = sub_attack.attack(images[indices], labels[indices])
            margins = self._margins(candidates, labels[indices])
            improved = margins < best_margin[indices]
            best[indices[improved]] = candidates[improved]
            best_margin[indices[improved]] = margins[improved]
        return best
