"""White-box adversarial attacks used by the paper's evaluation.

PGD, FGSM, CW, FAB and NIFGSM (the Tables 1-2 attack suite) plus the
adaptive IB-aware attack of Section A.2.  All attacks share the
``attack(images, labels)`` interface defined by :class:`Attack`.
"""

from .adaptive import AdaptiveIBAttack, make_ib_loss_fn
from .base import Attack
from .cw import CW
from .deepfool import DeepFool
from .fab import FAB
from .fgsm import FGSM
from .mifgsm import MIFGSM
from .nifgsm import NIFGSM
from .pgd import PGD

__all__ = [
    "Attack",
    "FGSM",
    "PGD",
    "CW",
    "FAB",
    "NIFGSM",
    "MIFGSM",
    "DeepFool",
    "AdaptiveIBAttack",
    "make_ib_loss_fn",
    "ATTACK_REGISTRY",
    "build_attack",
]

ATTACK_REGISTRY = {
    "fgsm": FGSM,
    "pgd": PGD,
    "cw": CW,
    "fab": FAB,
    "nifgsm": NIFGSM,
    "mifgsm": MIFGSM,
    "deepfool": DeepFool,
    "adaptive-ib": AdaptiveIBAttack,
}


def build_attack(name: str, model, **kwargs) -> Attack:
    """Instantiate an attack by name with the paper's defaults."""
    key = name.lower()
    if key not in ATTACK_REGISTRY:
        raise KeyError(f"unknown attack '{name}'; available: {sorted(ATTACK_REGISTRY)}")
    return ATTACK_REGISTRY[key](model, **kwargs)
