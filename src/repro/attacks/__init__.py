"""White-box adversarial attacks used by the paper's evaluation.

PGD, FGSM, CW, FAB and NIFGSM (the Tables 1-2 attack suite), the adaptive
IB-aware attack of Section A.2, the MIFGSM/DeepFool extensions, and the
worst-case :class:`EnsembleAttack` composition.  All attacks share the
``attack(images, labels)`` interface defined by :class:`Attack`.

The composable layer lives in :mod:`repro.attacks.engine`:

* an attack *configuration* is an :class:`AttackSpec` — registry name plus
  hyperparameters, no model.  ``spec.build(model)`` instantiates it against
  any classifier, and ``attack.spec()`` round-trips a constructed attack
  back through ``ATTACK_REGISTRY``;
* suites are lists of specs, reusable across every model in a table row;
* :class:`AttackEngine` runs a suite against one model with batched
  early-exit (the clean forward pass is shared, already-misclassified
  examples are dropped from attack batches) and per-attack telemetry.

Use :func:`build_attack` to construct attacks by name; it validates
hyperparameter names against the attack's constructor and raises
:class:`AttackConfigError` (instead of a bare ``TypeError``) on a mismatch.
"""

from .adaptive import AdaptiveIBAttack, make_ib_loss_fn
from .base import Attack, AttackConfigError
from .cw import CW
from .deepfool import DeepFool
from .fab import FAB
from .fgsm import FGSM
from .mifgsm import MIFGSM
from .nifgsm import NIFGSM
from .pgd import PGD

__all__ = [
    "Attack",
    "AttackConfigError",
    "FGSM",
    "PGD",
    "CW",
    "FAB",
    "NIFGSM",
    "MIFGSM",
    "DeepFool",
    "AdaptiveIBAttack",
    "EnsembleAttack",
    "make_ib_loss_fn",
    "ATTACK_REGISTRY",
    "AttackSpec",
    "AttackEngine",
    "AttackTelemetry",
    "EngineResult",
    "ForwardPassCounter",
    "available_attacks",
    "build_attack",
    "format_telemetry",
    "normalize_suite",
    "paper_suite_specs",
]

ATTACK_REGISTRY = {
    "fgsm": FGSM,
    "pgd": PGD,
    "cw": CW,
    "fab": FAB,
    "nifgsm": NIFGSM,
    "mifgsm": MIFGSM,
    "deepfool": DeepFool,
    "adaptive-ib": AdaptiveIBAttack,
}


def available_attacks() -> list:
    """Return the sorted list of attack names accepted by :func:`build_attack`."""
    return sorted(ATTACK_REGISTRY)


def build_attack(name: str, model, strict: bool = True, **kwargs) -> Attack:
    """Instantiate an attack by name with the paper's defaults.

    Hyperparameter names are validated against the attack's constructor:
    unknown ones raise :class:`AttackConfigError` naming the attack and the
    accepted hyperparameters (e.g. passing ``eps`` to the L2 ``CW`` attack).
    With ``strict=False`` unknown hyperparameters are silently dropped
    instead, which lets shared suite defaults fan out across heterogeneous
    attacks.
    """
    key = name.lower()
    if key not in ATTACK_REGISTRY:
        raise KeyError(f"unknown attack '{name}'; available: {available_attacks()}")
    attack_cls = ATTACK_REGISTRY[key]
    accepted = attack_cls.accepted_hyperparameters()
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        if strict:
            raise AttackConfigError(
                f"attack '{key}' ({attack_cls.__name__}) does not accept "
                f"hyperparameter(s) {unknown}; accepted: {sorted(accepted)}"
            )
        kwargs = {k: v for k, v in kwargs.items() if k in accepted}
    return attack_cls(model, **kwargs)


# The engine imports build_attack lazily, and EnsembleAttack builds its
# sub-attacks through the registry, so it is imported (and registered) last.
from .engine import (  # noqa: E402
    AttackEngine,
    AttackSpec,
    AttackTelemetry,
    EngineResult,
    EnsembleAttack,
    ForwardPassCounter,
    format_telemetry,
    normalize_suite,
    paper_suite_specs,
)

ATTACK_REGISTRY["ensemble"] = EnsembleAttack
