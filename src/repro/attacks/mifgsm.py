"""Momentum Iterative FGSM (Dong et al., 2018).

Not part of the paper's headline attack suite, but NIFGSM (which the paper
does use) is the Nesterov extension of this attack, and robustness studies
routinely report both.  Provided as an extension so downstream users can
evaluate IB-RAR under the full momentum-attack family.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..compile.kernels import linf_step
from ..models.base import ImageClassifier
from .base import Attack, LossFn

__all__ = ["MIFGSM"]


class MIFGSM(Attack):
    """Momentum iterative FGSM (L_inf) with L1-normalized gradient accumulation."""

    name = "mifgsm"

    def __init__(
        self,
        model: ImageClassifier,
        eps: float = 8.0 / 255.0,
        alpha: float = 2.0 / 255.0,
        steps: int = 10,
        decay: float = 1.0,
        clip_min: float = 0.0,
        clip_max: float = 1.0,
        loss_fn: Optional[LossFn] = None,
    ) -> None:
        super().__init__(model, eps=eps, clip_min=clip_min, clip_max=clip_max, loss_fn=loss_fn)
        if steps < 1:
            raise ValueError("MIFGSM needs at least one step")
        self.alpha = alpha
        self.steps = steps
        self.decay = decay

    def _generate(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        adversarial = images.copy()
        momentum = np.zeros_like(images)
        buffers = (np.empty_like(images), np.empty_like(images))
        for step in range(self.steps):
            gradient, _ = self._input_gradient(adversarial, labels)
            l1 = np.abs(gradient).sum(axis=tuple(range(1, gradient.ndim)), keepdims=True)
            momentum = self.decay * momentum + gradient / np.maximum(l1, 1e-12)
            adversarial = linf_step(
                adversarial, momentum, self.alpha, images,
                self.eps, self.clip_min, self.clip_max, out=buffers[step % 2],
            )
        return adversarial
