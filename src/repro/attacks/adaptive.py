"""Adaptive white-box attack against IB-RAR (Section A.2 of the paper).

The adversary knows the defense: instead of maximizing plain cross-entropy,
it runs PGD on the *full IB-RAR objective* of Eq. (1),

    L = L_CE + alpha * sum_l HSIC(X, T_l) - beta * sum_l HSIC(Y, T_l),

so the perturbation simultaneously increases the classification loss and
fights the information-bottleneck regularizers.  The paper evaluates this
attack at 10 and 100 steps (Table 6).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import Tensor
from ..nn import functional as F
from ..ib.hsic import gaussian_kernel, linear_kernel, normalized_hsic
from ..models.base import ImageClassifier
from .base import LossFn
from .pgd import PGD

__all__ = ["AdaptiveIBAttack", "make_ib_loss_fn"]


def make_ib_loss_fn(
    alpha: float,
    beta: float,
    num_classes: int,
    layers: Optional[Sequence[str]] = None,
    sigma: Optional[float] = None,
) -> LossFn:
    """Build the Eq. (1) loss as an attack objective.

    ``layers`` restricts the HSIC sums to a subset of hidden layers (the
    robust layers when attacking IB-RAR(rob)); ``None`` uses every hidden
    layer the model exposes.
    """

    def loss_fn(model: ImageClassifier, x: Tensor, labels: np.ndarray) -> Tensor:
        logits, hidden = model.forward_with_hidden(x)
        loss = F.cross_entropy(logits, labels)
        selected = layers if layers is not None else list(hidden.keys())
        input_kernel = gaussian_kernel(x.detach(), sigma=sigma)
        label_kernel = linear_kernel(Tensor(F.one_hot(labels, num_classes)))
        for name in selected:
            if name not in hidden:
                continue
            layer_kernel = gaussian_kernel(hidden[name], sigma=sigma)
            loss = loss + normalized_hsic(layer_kernel, input_kernel) * alpha
            loss = loss - normalized_hsic(layer_kernel, label_kernel) * beta
        return loss

    return loss_fn


class AdaptiveIBAttack(PGD):
    """PGD that ascends the IB-RAR training objective instead of plain CE."""

    name = "adaptive-ib"

    def __init__(
        self,
        model: ImageClassifier,
        alpha_ib: float = 1.0,
        beta_ib: float = 0.1,
        layers: Optional[Sequence[str]] = None,
        eps: float = 8.0 / 255.0,
        alpha: float = 2.0 / 255.0,
        steps: int = 10,
        random_start: bool = True,
        clip_min: float = 0.0,
        clip_max: float = 1.0,
        sigma: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        loss_fn = make_ib_loss_fn(
            alpha=alpha_ib,
            beta=beta_ib,
            num_classes=model.num_classes,
            layers=layers,
            sigma=sigma,
        )
        super().__init__(
            model,
            eps=eps,
            alpha=alpha,
            steps=steps,
            random_start=random_start,
            clip_min=clip_min,
            clip_max=clip_max,
            loss_fn=loss_fn,
            seed=seed,
        )
        self.alpha_ib = alpha_ib
        self.beta_ib = beta_ib
        self.layers = tuple(layers) if layers is not None else None
        self.sigma = sigma
