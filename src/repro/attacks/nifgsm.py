"""Nesterov Iterative FGSM (Lin et al., 2020).

NIFGSM augments iterative FGSM with Nesterov-accelerated momentum: the
gradient is evaluated at a look-ahead point ``x + alpha * mu * g`` and the
momentum accumulator uses L1-normalized gradients.  Used as one of the five
evaluation attacks in Tables 1-2 and swept over steps in Figure 2(c).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Attack, LossFn
from ..compile.kernels import linf_step, lookahead_point
from ..models.base import ImageClassifier

__all__ = ["NIFGSM"]


class NIFGSM(Attack):
    """Nesterov-accelerated momentum iterative FGSM (L_inf)."""

    name = "nifgsm"

    def __init__(
        self,
        model: ImageClassifier,
        eps: float = 8.0 / 255.0,
        alpha: float = 2.0 / 255.0,
        steps: int = 10,
        decay: float = 1.0,
        clip_min: float = 0.0,
        clip_max: float = 1.0,
        loss_fn: Optional[LossFn] = None,
    ) -> None:
        super().__init__(model, eps=eps, clip_min=clip_min, clip_max=clip_max, loss_fn=loss_fn)
        if steps < 1:
            raise ValueError("NIFGSM needs at least one step")
        self.alpha = alpha
        self.steps = steps
        self.decay = decay

    def _generate(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        adversarial = images.copy()
        momentum = np.zeros_like(images)
        lookahead = np.empty_like(images)
        buffers = (np.empty_like(images), np.empty_like(images))
        for step in range(self.steps):
            lookahead_point(
                adversarial, momentum, self.alpha * self.decay,
                self.clip_min, self.clip_max, out=lookahead,
            )
            gradient, _ = self._input_gradient(lookahead, labels)
            l1 = np.abs(gradient).sum(axis=tuple(range(1, gradient.ndim)), keepdims=True)
            momentum = self.decay * momentum + gradient / np.maximum(l1, 1e-12)
            adversarial = linf_step(
                adversarial, momentum, self.alpha, images,
                self.eps, self.clip_min, self.clip_max, out=buffers[step % 2],
            )
        return adversarial
