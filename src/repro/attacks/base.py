"""Common infrastructure for white-box adversarial attacks.

Every attack follows the Torchattacks convention the paper uses: it is
constructed with a model and its hyperparameters and exposes
``attack(images, labels) -> adversarial_images`` on NumPy arrays.  Images are
assumed to live in ``[0, 1]`` (the paper's eps = 8/255 and step = 2/255 are
expressed in that range).  Gradients are obtained from the autograd engine.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..nn import Tensor, get_default_dtype
from ..nn import functional as F
from ..models.base import ImageClassifier

__all__ = ["Attack", "AttackConfigError", "LossFn"]


class AttackConfigError(TypeError):
    """Raised when an attack is configured with hyperparameters it does not accept.

    Subclasses :class:`TypeError` (what a bad constructor call would raise)
    but carries an actionable message naming the attack and the accepted
    hyperparameters.
    """

# A loss function receives (model, x_tensor, labels) and returns a scalar Tensor.
LossFn = Callable[[ImageClassifier, Tensor, np.ndarray], Tensor]


def _default_loss(model: ImageClassifier, x: Tensor, labels: np.ndarray) -> Tensor:
    return F.cross_entropy(model.forward(x), labels)


class Attack:
    """Base class for white-box attacks.

    Parameters
    ----------
    model:
        The classifier under attack.  It is switched to ``eval`` mode for the
        duration of the attack and restored afterwards.
    eps:
        Maximum L_inf perturbation (paper default 8/255).
    clip_min, clip_max:
        Valid input range.
    loss_fn:
        Loss whose gradient drives the attack; defaults to cross-entropy.
        The adaptive attack of Section A.2 passes the full IB-RAR loss here.
    """

    name = "attack"

    #: constructor parameters that are *not* part of the serializable spec
    #: (``loss_fn`` is an arbitrary callable; attacks that need a custom loss,
    #: like the adaptive IB attack, rebuild it from their own hyperparameters).
    spec_exclude: Tuple[str, ...] = ("loss_fn",)

    def __init__(
        self,
        model: ImageClassifier,
        eps: float = 8.0 / 255.0,
        clip_min: float = 0.0,
        clip_max: float = 1.0,
        loss_fn: Optional[LossFn] = None,
    ) -> None:
        if eps < 0:
            raise ValueError("eps must be non-negative")
        self.model = model
        self.eps = eps
        self.clip_min = clip_min
        self.clip_max = clip_max
        self.loss_fn = loss_fn or _default_loss
        #: optional :class:`repro.compile.CompiledModel` driving the attack's
        #: gradient queries through a static plan.  Installed via
        #: :meth:`use_compiled` (the engine does this for ``compile=True``
        #: runs); only honoured while the loss is the default cross-entropy,
        #: since that is the loss the compiled plan fuses.
        self._compiled = None

    def use_compiled(self, compiled) -> "Attack":
        """Route default-loss gradient queries through a compiled plan."""
        self._compiled = compiled
        return self

    # -- helpers ---------------------------------------------------------------
    def _input_gradient(self, images: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, float]:
        """Gradient of the attack loss with respect to the input batch.

        When a compiled plan is installed (and the attack drives the default
        cross-entropy loss), the fused ``value_and_grad`` replays the static
        plan instead of building an autograd graph; the returned gradient is
        plan-owned, so consume it before the next compiled call.
        """
        if self._compiled is not None and self.loss_fn is _default_loss:
            loss, gradient = self._compiled.value_and_grad(images, labels)
            return gradient, loss
        x = Tensor(images, requires_grad=True)
        loss = self.loss_fn(self.model, x, labels)
        loss.backward()
        if x.grad is None:
            raise RuntimeError("attack loss produced no input gradient")
        return x.grad, float(loss.item())

    def _logits_and_gradients_per_class(
        self, images: np.ndarray, class_indices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Logit values and input gradients of one selected logit per example.

        Used by the decision-boundary attacks (FAB).  ``class_indices`` picks,
        for each example, the logit whose gradient is needed.
        """
        x = Tensor(images, requires_grad=True)
        logits = self.model.forward(x)
        n = images.shape[0]
        mask = np.zeros_like(logits.data)
        mask[np.arange(n), class_indices] = 1.0
        selected = (logits * Tensor(mask)).sum()
        selected.backward()
        return logits.data.copy(), x.grad.copy()

    def _project(self, adversarial: np.ndarray, original: np.ndarray) -> np.ndarray:
        """Project onto the L_inf ball around ``original`` and the valid range."""
        delta = np.clip(adversarial - original, -self.eps, self.eps)
        return np.clip(original + delta, self.clip_min, self.clip_max)

    # -- public API --------------------------------------------------------------
    def attack(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Return adversarial versions of ``images`` (same shape/dtype)."""
        images = np.asarray(images, dtype=get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if len(images) != len(labels):
            raise ValueError("images and labels must have the same batch size")
        was_training = self.model.training
        self.model.eval()
        try:
            adversarial = self._generate(images, labels)
        finally:
            self.model.train(was_training)
        return adversarial

    __call__ = attack

    def _generate(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- spec support -------------------------------------------------------------
    @classmethod
    def accepted_hyperparameters(cls) -> Tuple[str, ...]:
        """Constructor parameter names (excluding ``self`` and ``model``)."""
        signature = inspect.signature(cls.__init__)
        names = []
        for name, parameter in signature.parameters.items():
            if name in ("self", "model"):
                continue
            if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
                continue
            names.append(name)
        return tuple(names)

    def hyperparameters(self) -> Dict[str, Any]:
        """The constructor hyperparameters of this attack, read back from it.

        Every attack stores each constructor argument under the same name, so
        the spec round-trip ``AttackSpec.from_attack(a).build(model)`` yields
        an attack with identical hyperparameters.  Parameters listed in
        ``spec_exclude`` (non-serializable callables) are omitted.
        """
        params: Dict[str, Any] = {}
        for name in self.accepted_hyperparameters():
            if name in self.spec_exclude:
                continue
            if not hasattr(self, name):
                raise AttributeError(
                    f"{type(self).__name__} does not store its '{name}' hyperparameter; "
                    "store it in __init__ (or add it to spec_exclude) to support specs"
                )
            params[name] = getattr(self, name)
        return params

    def spec(self):
        """Return the model-free :class:`~repro.attacks.engine.AttackSpec`."""
        from .engine import AttackSpec

        return AttackSpec.from_attack(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(eps={self.eps:.4f})"
