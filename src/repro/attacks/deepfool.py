"""DeepFool (Moosavi-Dezfooli et al., 2016) — minimal L2 perturbation attack.

An extension beyond the paper's suite: DeepFool estimates the smallest
perturbation that crosses the nearest linearized decision boundary, which
makes it a useful diagnostic for how far IB-RAR pushes class boundaries apart
(the Figure 3 discussion).  The returned examples are additionally projected
into the shared L_inf eps-ball so accuracies are comparable with the other
attacks.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, no_grad
from ..models.base import ImageClassifier
from .base import Attack

__all__ = ["DeepFool"]


class DeepFool(Attack):
    """Iterative minimal-perturbation attack using per-class linearization."""

    name = "deepfool"

    def __init__(
        self,
        model: ImageClassifier,
        eps: float = 8.0 / 255.0,
        steps: int = 10,
        overshoot: float = 0.02,
        clip_min: float = 0.0,
        clip_max: float = 1.0,
    ) -> None:
        super().__init__(model, eps=eps, clip_min=clip_min, clip_max=clip_max)
        if steps < 1:
            raise ValueError("DeepFool needs at least one step")
        self.steps = steps
        self.overshoot = overshoot

    def _class_gradients(self, image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Logits and per-class input gradients for a single image."""
        num_classes = self.model.num_classes
        gradients = np.zeros((num_classes,) + image.shape)
        logits_out = None
        for class_index in range(num_classes):
            x = Tensor(image[None], requires_grad=True)
            logits = self.model.forward(x)
            mask = np.zeros_like(logits.data)
            mask[:, class_index] = 1.0
            (logits * Tensor(mask)).sum().backward()
            gradients[class_index] = x.grad[0]
            logits_out = logits.data[0]
        return logits_out, gradients

    def _generate(self, images: np.ndarray, labels: np.ndarray) -> np.ndarray:
        adversarial = images.copy()
        for i in range(len(images)):
            current = images[i].copy()
            original_label = labels[i]
            for _ in range(self.steps):
                with no_grad():
                    prediction = self.model.predict(Tensor(current[None]))[0]
                if prediction != original_label:
                    break
                logits, gradients = self._class_gradients(current)
                margins = logits - logits[original_label]
                gradient_diffs = gradients - gradients[original_label]
                norms = np.sqrt((gradient_diffs.reshape(len(margins), -1) ** 2).sum(axis=1))
                norms[original_label] = np.inf
                with np.errstate(divide="ignore", invalid="ignore"):
                    distances = np.abs(margins) / np.maximum(norms, 1e-12)
                distances[original_label] = np.inf
                target = int(np.argmin(distances))
                step = (
                    (np.abs(margins[target]) + 1e-6)
                    / max(norms[target] ** 2, 1e-12)
                    * gradient_diffs[target]
                )
                current = current + (1.0 + self.overshoot) * step
                current = np.clip(current, self.clip_min, self.clip_max)
            adversarial[i] = current
        return self._project(adversarial, images)
