"""Evaluation harness: clean/adversarial accuracy and multi-attack reports.

The multi-attack path runs on :class:`repro.attacks.engine.AttackEngine`:
suites are lists of model-free :class:`~repro.attacks.engine.AttackSpec`
objects, the clean forward pass is shared, and already-misclassified
examples are dropped from attack batches (early exit).
"""

from .metrics import accuracy, adversarial_accuracy, attack_success_rate, clean_accuracy
from .robustness import (
    PAPER_ATTACK_ORDER,
    RobustnessReport,
    evaluate_robustness,
    format_table,
    paper_attack_suite,
    paper_attack_suite_specs,
)

__all__ = [
    "accuracy",
    "clean_accuracy",
    "adversarial_accuracy",
    "attack_success_rate",
    "RobustnessReport",
    "evaluate_robustness",
    "paper_attack_suite",
    "paper_attack_suite_specs",
    "format_table",
    "PAPER_ATTACK_ORDER",
]
