"""Evaluation harness: clean/adversarial accuracy and multi-attack reports."""

from .metrics import accuracy, adversarial_accuracy, attack_success_rate, clean_accuracy
from .robustness import (
    PAPER_ATTACK_ORDER,
    RobustnessReport,
    evaluate_robustness,
    format_table,
    paper_attack_suite,
)

__all__ = [
    "accuracy",
    "clean_accuracy",
    "adversarial_accuracy",
    "attack_success_rate",
    "RobustnessReport",
    "evaluate_robustness",
    "paper_attack_suite",
    "format_table",
    "PAPER_ATTACK_ORDER",
]
