"""Multi-attack robustness evaluation harness.

Produces the row format of Tables 1-2: natural accuracy plus adversarial
accuracy under each attack in the paper's suite (PGD, CW, FGSM, FAB, NIFGSM),
for one or many trained models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..attacks import CW, FAB, FGSM, NIFGSM, PGD, Attack
from ..models.base import ImageClassifier
from .metrics import adversarial_accuracy, clean_accuracy

__all__ = ["RobustnessReport", "evaluate_robustness", "paper_attack_suite", "format_table"]

# Attack order used in the paper's tables.
PAPER_ATTACK_ORDER = ("pgd", "cw", "fgsm", "fab", "nifgsm")


def paper_attack_suite(
    model: ImageClassifier,
    eps: float = 8.0 / 255.0,
    alpha: float = 2.0 / 255.0,
    pgd_steps: int = 10,
    cw_steps: int = 20,
    seed: int = 0,
) -> Dict[str, Attack]:
    """The five evaluation attacks of Tables 1-2 with the paper's parameters.

    ``cw_steps`` defaults to 20 (the paper uses 200); benches raise it when a
    longer optimization is affordable.
    """
    return {
        "pgd": PGD(model, eps=eps, alpha=alpha, steps=pgd_steps, seed=seed),
        "cw": CW(model, steps=cw_steps),
        "fgsm": FGSM(model, eps=eps),
        "fab": FAB(model, eps=eps, steps=pgd_steps, seed=seed),
        "nifgsm": NIFGSM(model, eps=eps, alpha=alpha, steps=pgd_steps),
    }


@dataclass
class RobustnessReport:
    """Natural accuracy plus per-attack adversarial accuracy for one model."""

    method: str
    natural: float
    adversarial: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, float]:
        row = {"method": self.method, "natural": round(self.natural * 100, 2)}
        row.update({name: round(value * 100, 2) for name, value in self.adversarial.items()})
        return row

    def mean_adversarial(self) -> float:
        if not self.adversarial:
            return 0.0
        return float(np.mean(list(self.adversarial.values())))


def evaluate_robustness(
    model: ImageClassifier,
    images: np.ndarray,
    labels: np.ndarray,
    attacks: Optional[Mapping[str, Attack]] = None,
    method_name: str = "model",
    batch_size: int = 64,
) -> RobustnessReport:
    """Evaluate one model against a suite of attacks (defaults to the paper's)."""
    attacks = dict(attacks) if attacks is not None else paper_attack_suite(model)
    natural = clean_accuracy(model, images, labels, batch_size=batch_size)
    adversarial: Dict[str, float] = {}
    for name, attack in attacks.items():
        adversarial[name] = adversarial_accuracy(model, attack, images, labels, batch_size=batch_size)
    return RobustnessReport(method=method_name, natural=natural, adversarial=adversarial)


def format_table(reports: Sequence[RobustnessReport], attack_order: Iterable[str] = PAPER_ATTACK_ORDER) -> str:
    """Render reports as an aligned text table (the bench output format)."""
    attack_names = [a for a in attack_order if any(a in r.adversarial for r in reports)]
    header = ["Method", "Natural"] + [name.upper() for name in attack_names]
    rows: List[List[str]] = [header]
    for report in reports:
        row = [report.method, f"{report.natural * 100:6.2f}"]
        for name in attack_names:
            value = report.adversarial.get(name)
            row.append(f"{value * 100:6.2f}" if value is not None else "   -  ")
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)
