"""Multi-attack robustness evaluation harness.

Produces the row format of Tables 1-2: natural accuracy plus adversarial
accuracy under each attack in the paper's suite (PGD, CW, FGSM, FAB, NIFGSM),
for one or many trained models.

Since the engine redesign this module is a thin veneer over
:mod:`repro.attacks.engine`:

* the paper's suite is a list of model-free :class:`AttackSpec` objects
  (:func:`paper_attack_suite_specs`) — build it once and reuse it for every
  model in a table row;
* :func:`evaluate_robustness` feeds the suite through an
  :class:`~repro.attacks.engine.AttackEngine`, which computes the clean
  forward pass once, drops already-misclassified examples from every attack
  batch (*early exit* — strictly fewer forward passes; accuracies identical
  for deterministic attacks, statistically equivalent for random-start
  ones), and records per-attack timing / forward-pass telemetry on the
  returned report;
* :func:`paper_attack_suite` remains as a compatibility shim that binds the
  spec suite to one model, for callers that still want ``Attack`` instances.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..attacks import Attack, AttackSpec, paper_suite_specs
from ..attacks.engine import AttackEngine, EngineResult, SuiteLike
from ..models.base import ImageClassifier

__all__ = [
    "RobustnessReport",
    "evaluate_robustness",
    "paper_attack_suite",
    "paper_attack_suite_specs",
    "format_table",
]

# Attack order used in the paper's tables.
PAPER_ATTACK_ORDER = ("pgd", "cw", "fgsm", "fab", "nifgsm")


# The suite defaults (eps = 8/255, alpha = 2/255, pgd_steps = 10, cw_steps = 20,
# seed = 0) are defined once, in repro.attacks.engine.paper_suite_specs.
paper_attack_suite_specs = paper_suite_specs


def paper_attack_suite(model: ImageClassifier, **suite_kwargs) -> Dict[str, Attack]:
    """Compatibility shim: the paper suite bound to one model.

    Accepts the :func:`paper_attack_suite_specs` keyword arguments (``eps``,
    ``alpha``, ``pgd_steps``, ``cw_steps``, ``seed``).  New code should
    prefer the spec suite, which does not bind a model and is reusable
    across a whole table.
    """
    return OrderedDict(
        (spec.name, spec.build(model)) for spec in paper_attack_suite_specs(**suite_kwargs)
    )


@dataclass
class RobustnessReport:
    """Natural accuracy plus per-attack adversarial accuracy for one model."""

    method: str
    natural: float
    adversarial: Dict[str, float] = field(default_factory=dict)
    #: worst-case (ensemble) accuracy: fraction of examples no attack fooled.
    worst_case: Optional[float] = None
    #: full engine output (telemetry, per-example survivors) when available.
    result: Optional[EngineResult] = field(default=None, repr=False, compare=False)

    def as_row(self) -> Dict[str, float]:
        row = {"method": self.method, "natural": round(self.natural * 100, 2)}
        row.update({name: round(value * 100, 2) for name, value in self.adversarial.items()})
        return row

    def mean_adversarial(self) -> float:
        if not self.adversarial:
            return 0.0
        return float(np.mean(list(self.adversarial.values())))


def evaluate_robustness(
    model: ImageClassifier,
    images: np.ndarray,
    labels: np.ndarray,
    attacks: SuiteLike = None,
    method_name: str = "model",
    batch_size: int = 64,
    early_exit: bool = True,
    cascade: bool = False,
    compile: bool = False,
    engine: Optional[AttackEngine] = None,
) -> RobustnessReport:
    """Evaluate one model against a suite of attacks (defaults to the paper's).

    ``attacks`` accepts the same shapes as the engine: a list of
    :class:`AttackSpec` (preferred — model-free and reusable), a mapping of
    name to spec, or a legacy mapping of name to pre-built ``Attack``.  Pass
    ``engine`` to reuse a fully configured :class:`AttackEngine` instead.
    ``compile=True`` runs predictions and the PGD-family gradient loops
    through a static execution plan (:mod:`repro.compile`), falling back to
    eager execution whenever the model or a batch shape cannot be planned.
    """
    if engine is None:
        engine = AttackEngine(
            attacks,
            batch_size=batch_size,
            early_exit=early_exit,
            cascade=cascade,
            compile=compile,
        )
    result = engine.run(model, images, labels, method_name=method_name)
    return RobustnessReport(
        method=method_name,
        natural=result.natural,
        adversarial=dict(result.adversarial),
        worst_case=result.worst_case,
        result=result,
    )


def format_table(reports: Sequence[RobustnessReport], attack_order: Iterable[str] = PAPER_ATTACK_ORDER) -> str:
    """Render reports as an aligned text table (the bench output format)."""
    attack_names = [a for a in attack_order if any(a in r.adversarial for r in reports)]
    header = ["Method", "Natural"] + [name.upper() for name in attack_names]
    rows: List[List[str]] = [header]
    for report in reports:
        row = [report.method, f"{report.natural * 100:6.2f}"]
        for name in attack_names:
            value = report.adversarial.get(name)
            row.append(f"{value * 100:6.2f}" if value is not None else "   -  ")
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)
