"""Accuracy metrics for clean and adversarial evaluation."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..models.base import ImageClassifier, predict_batched as _batched_predict

__all__ = ["accuracy", "clean_accuracy", "adversarial_accuracy", "attack_success_rate"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of matching entries between two integer arrays."""
    predictions = np.asarray(predictions).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same length")
    if predictions.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def clean_accuracy(model: ImageClassifier, images: np.ndarray, labels: np.ndarray, batch_size: int = 128) -> float:
    """Top-1 accuracy on unperturbed inputs ("Natural" columns in Tables 1-2)."""
    return accuracy(_batched_predict(model, images, batch_size), labels)


def adversarial_accuracy(
    model: ImageClassifier,
    attack,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 64,
) -> float:
    """Top-1 accuracy after perturbing ``images`` with ``attack``."""
    correct = 0
    total = 0
    labels = np.asarray(labels).reshape(-1)
    for start in range(0, len(images), batch_size):
        batch = images[start : start + batch_size]
        batch_labels = labels[start : start + batch_size]
        adversarial = attack.attack(batch, batch_labels)
        predictions = _batched_predict(model, adversarial, batch_size)
        correct += int((predictions == batch_labels).sum())
        total += len(batch_labels)
    return correct / max(total, 1)


def attack_success_rate(
    model: ImageClassifier,
    attack,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 64,
) -> float:
    """Fraction of originally-correct examples the attack flips."""
    labels = np.asarray(labels).reshape(-1)
    clean_predictions = _batched_predict(model, images, batch_size)
    correct_mask = clean_predictions == labels
    if not correct_mask.any():
        return 0.0
    eligible_images = images[correct_mask]
    eligible_labels = labels[correct_mask]
    flipped = 0
    for start in range(0, len(eligible_images), batch_size):
        batch = eligible_images[start : start + batch_size]
        batch_labels = eligible_labels[start : start + batch_size]
        adversarial = attack.attack(batch, batch_labels)
        predictions = _batched_predict(model, adversarial, batch_size)
        flipped += int((predictions != batch_labels).sum())
    return flipped / int(correct_mask.sum())
