"""Shared infrastructure for the paper-reproduction benches.

Every bench regenerates one table or figure of the paper.  Because the
substrate is a NumPy CPU simulator rather than the authors' GPU testbed, the
benches run a *scaled-down profile* by default: the same architectures-shape
(a small CNN with the VGG-style block/FC structure, or width-scaled VGG /
ResNet / WRN), synthetic CIFAR-like data, few epochs.  The profile can be
raised via the ``REPRO_BENCH_PROFILE`` environment variable:

* ``tiny``  (default) — minutes on a laptop CPU; orderings/shape only.
* ``small`` — width-scaled VGG16/ResNet18 at 32x32, more data and epochs.
* ``paper`` — full-width models, 60 epochs, paper attack steps (only
  meaningful on substantial hardware; provided for completeness).

Since the ``repro.experiments`` subsystem, a bench row is an
:class:`~repro.experiments.ExperimentSpec` built by :func:`bench_experiment`
and executed by :func:`run_experiments` / :func:`get_or_train` against a
**persistent content-addressed artifact store** (``.repro-artifacts`` by
default, override with ``REPRO_ARTIFACTS``).  A spec is trained at most once
*ever* — across benches, pytest sessions, examples and CI — and two specs
that share a training recipe (e.g. a Table 1 row re-evaluated by Table 6
under a different suite) share one checkpoint.  ``REPRO_BENCH_WORKERS``
fans grid cache misses out over processes.

The legacy helpers (``train_model`` / ``train_ibrar`` with live strategy
objects, ``get_or_train(key, builder)``) remain for benches whose losses
have no declarative spec (VIB, HBaR); they now delegate to the experiment
runner's training path but cache only within the pytest session.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.attacks import AttackSpec
from repro.core import IBRARConfig
from repro.evaluation import RobustnessReport, paper_attack_suite_specs
from repro.data import SyntheticImageDataset, build_dataset
from repro.experiments import (
    ArtifactStore,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    run_grid,
)
from repro.models import ImageClassifier, build_model
from repro.training import LossSpec, LossStrategy, coerce_loss_spec

__all__ = [
    "BenchProfile",
    "get_profile",
    "bench_dataset",
    "bench_dataset_spec",
    "bench_model",
    "bench_model_spec",
    "bench_experiment",
    "bench_store",
    "bench_runner",
    "bench_suite_specs",
    "run_experiments",
    "train_model",
    "train_ibrar",
    "get_or_train",
    "paper_rows_header",
    "record_bench_timings",
]


@dataclass(frozen=True)
class BenchProfile:
    """Scale knobs for a bench run."""

    name: str
    image_size: int
    n_train: int
    n_test: int
    eval_examples: int
    epochs: int
    batch_size: int
    attack_steps: int
    cw_steps: int
    at_steps: int          # inner PGD steps for adversarial training
    lr: float
    model_kind: str        # "smallcnn" | "vgg16" | ...
    width_multiplier: float


_PROFILES: Dict[str, BenchProfile] = {
    "tiny": BenchProfile(
        name="tiny",
        image_size=16,
        n_train=300,
        n_test=120,
        eval_examples=60,
        epochs=3,
        batch_size=50,
        attack_steps=5,
        cw_steps=15,
        at_steps=3,
        lr=0.05,
        model_kind="smallcnn",
        width_multiplier=1.0,
    ),
    "small": BenchProfile(
        name="small",
        image_size=32,
        n_train=2000,
        n_test=500,
        eval_examples=200,
        epochs=10,
        batch_size=100,
        attack_steps=10,
        cw_steps=50,
        at_steps=7,
        lr=0.01,
        model_kind="vgg16",
        width_multiplier=0.25,
    ),
    "paper": BenchProfile(
        name="paper",
        image_size=32,
        n_train=50000,
        n_test=10000,
        eval_examples=10000,
        epochs=60,
        batch_size=100,
        attack_steps=10,
        cw_steps=200,
        at_steps=10,
        lr=0.01,
        model_kind="vgg16",
        width_multiplier=1.0,
    ),
}


def get_profile() -> BenchProfile:
    """Read the active profile from ``REPRO_BENCH_PROFILE`` (default: tiny)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "tiny").lower()
    if name not in _PROFILES:
        raise KeyError(f"unknown bench profile '{name}'; choose from {sorted(_PROFILES)}")
    return _PROFILES[name]


# --------------------------------------------------------------------------- #
# the shared store / runner
# --------------------------------------------------------------------------- #
_STORE: Optional[ArtifactStore] = None
_RUNNER: Optional[ExperimentRunner] = None


def bench_store() -> ArtifactStore:
    """The artifact store shared by every bench (persistent across sessions)."""
    global _STORE
    if _STORE is None:
        _STORE = ArtifactStore()
    return _STORE


def bench_runner() -> ExperimentRunner:
    """The experiment runner shared by every bench."""
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = ExperimentRunner(store=bench_store())
    return _RUNNER


def bench_workers() -> int:
    """Grid worker count from ``REPRO_BENCH_WORKERS`` (default: serial)."""
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


# --------------------------------------------------------------------------- #
# declarative dataset / model / experiment builders
# --------------------------------------------------------------------------- #
_DATASET_CACHE: Dict[Tuple[str, str], SyntheticImageDataset] = {}


def bench_dataset_spec(kind: str = "cifar10", seed: int = 0, **overrides) -> Tuple[str, Dict[str, Any]]:
    """The ``(registry name, params)`` pair describing a bench dataset.

    ``overrides`` replace profile-derived sizes (e.g. the Table 2 tiny
    profile shrinks ``n_train``/``n_test``).
    """
    profile = get_profile()
    base = dict(
        n_train=profile.n_train, n_test=profile.n_test, image_size=profile.image_size, seed=seed
    )
    if kind in ("cifar10", "svhn"):
        name, params = kind, base
    elif kind == "cifar100":
        name = "synthetic"
        params = dict(
            base, num_classes=20 if profile.name == "tiny" else 100, name="synthetic-cifar100"
        )
    elif kind == "tiny-imagenet":
        name = "synthetic"
        params = dict(
            base,
            num_classes=20 if profile.name == "tiny" else 200,
            image_size=max(profile.image_size, 16),
            name="synthetic-tiny-imagenet",
        )
    else:
        raise KeyError(f"unknown bench dataset '{kind}'")
    params.update(overrides)
    return name, params


def bench_dataset(kind: str = "cifar10", seed: int = 0, **overrides) -> SyntheticImageDataset:
    """Synthetic dataset for the active profile, cached per (kind, params)."""
    name, params = bench_dataset_spec(kind, seed=seed, **overrides)
    key = (name, json.dumps(params, sort_keys=True))
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = build_dataset(name, **params)
    return _DATASET_CACHE[key]


def bench_model_spec(kind: Optional[str] = None, seed: int = 0) -> Tuple[str, Dict[str, Any]]:
    """The ``(registry name, params)`` pair describing a bench model."""
    profile = get_profile()
    kind = kind or profile.model_kind
    if kind == "smallcnn":
        return "smallcnn", dict(
            image_size=profile.image_size, base_channels=8, hidden_dim=32, seed=seed
        )
    # The tiny profile's width_multiplier refers to its default (SmallCNN)
    # model; when a bench explicitly requests one of the paper architectures
    # under the tiny profile, scale it down so the run stays CPU-tractable.
    scaled_width = 0.125 if profile.name == "tiny" else profile.width_multiplier
    if kind == "vgg16":
        return "vgg16", dict(
            image_size=profile.image_size, width_multiplier=scaled_width, seed=seed
        )
    if kind == "resnet18":
        return "resnet18", dict(width_multiplier=scaled_width, seed=seed)
    if kind == "wrn28-10":
        wrn_width = 0.05 if profile.name == "tiny" else max(profile.width_multiplier * 0.2, 0.05)
        return "wrn28-10", dict(width_multiplier=wrn_width, seed=seed)
    raise KeyError(f"unknown model kind '{kind}'")


def bench_model(num_classes: int = 10, seed: int = 0, kind: Optional[str] = None) -> ImageClassifier:
    """Fresh model of the profile's architecture kind."""
    name, params = bench_model_spec(kind, seed=seed)
    return build_model(name, num_classes=num_classes, **params)


def robust_layers_for(model: ImageClassifier) -> Tuple[str, ...]:
    """The 'last conv block + two FC layers'-style robust-layer preset for a model."""
    names = model.hidden_layer_names
    return tuple(names[-3:]) if len(names) >= 3 else tuple(names)


def bench_optimizer() -> Dict[str, float]:
    """The benches' SGD + StepLR recipe at the active profile's learning rate."""
    profile = get_profile()
    return dict(lr=profile.lr, momentum=0.9, weight_decay=1e-3, step_size=20, gamma=0.2)


def bench_experiment(
    loss: Union[str, LossSpec, LossStrategy, Mapping[str, Any]],
    dataset: str = "cifar10",
    model_kind: Optional[str] = None,
    ibrar: Optional[Union[IBRARConfig, Mapping[str, Any]]] = None,
    seed: int = 0,
    epochs: Optional[int] = None,
    batch_size: Optional[int] = None,
    attacks: Optional[Sequence[AttackSpec]] = None,
    eval_examples: Optional[int] = None,
    name: str = "",
    dataset_overrides: Optional[Mapping[str, Any]] = None,
) -> ExperimentSpec:
    """Build the :class:`ExperimentSpec` for one bench table row.

    Everything defaults to the active profile; ``attacks`` defaults to the
    paper suite at profile step counts (:func:`bench_suite_specs`).
    """
    profile = get_profile()
    ds_name, ds_params = bench_dataset_spec(dataset, seed=seed, **(dataset_overrides or {}))
    m_name, m_params = bench_model_spec(model_kind, seed=seed)
    return ExperimentSpec(
        dataset=ds_name,
        dataset_params=ds_params,
        model=m_name,
        model_params=m_params,
        loss=coerce_loss_spec(loss),
        ibrar=ibrar,
        optimizer=bench_optimizer(),
        epochs=epochs or profile.epochs,
        batch_size=batch_size or profile.batch_size,
        seed=seed,
        attacks=tuple(attacks) if attacks is not None else tuple(bench_suite_specs()),
        eval_examples=eval_examples if eval_examples is not None else profile.eval_examples,
        eval_batch_size=64,
        name=name,
    )


def run_experiments(specs: Sequence[ExperimentSpec], workers: Optional[int] = None) -> List[ExperimentResult]:
    """Run bench specs through the grid runner against the shared store."""
    grid = run_grid(
        specs, workers=workers if workers is not None else bench_workers(), runner=bench_runner()
    )
    return grid.results


# --------------------------------------------------------------------------- #
# training helpers
# --------------------------------------------------------------------------- #
_TRAINED_CACHE: Dict[str, ImageClassifier] = {}


def train_model(
    strategy: LossStrategy,
    dataset: SyntheticImageDataset,
    num_classes: int = 10,
    seed: int = 0,
    epochs: Optional[int] = None,
    model: Optional[ImageClassifier] = None,
) -> ImageClassifier:
    """Train a fresh bench model with an arbitrary (live) loss strategy.

    Delegates to :meth:`ExperimentRunner.train` with strategy/model/dataset
    overrides, so every bench trains through one code path; use spec-based
    :func:`get_or_train` / :func:`run_experiments` when the loss is
    declarative — those paths persist to the artifact store.
    """
    if num_classes != dataset.num_classes:
        raise ValueError(
            f"num_classes={num_classes} does not match the dataset's "
            f"{dataset.num_classes} classes (the model is built from the dataset)"
        )
    spec = bench_experiment("ce", seed=seed, epochs=epochs, attacks=())
    trained, _history, _timing = bench_runner().train(
        spec, dataset=dataset, strategy=strategy, model=model
    )
    return trained


def train_ibrar(
    dataset: SyntheticImageDataset,
    config: IBRARConfig,
    base_loss: Optional[LossStrategy] = None,
    num_classes: int = 10,
    seed: int = 0,
    epochs: Optional[int] = None,
) -> ImageClassifier:
    """Train a fresh bench model with the IB-RAR pipeline (Algorithm 1)."""
    if num_classes != dataset.num_classes:
        raise ValueError(
            f"num_classes={num_classes} does not match the dataset's "
            f"{dataset.num_classes} classes (the model is built from the dataset)"
        )
    spec = bench_experiment("ce", ibrar=config, seed=seed, epochs=epochs, attacks=())
    trained, _history, _timing = bench_runner().train(spec, dataset=dataset, strategy=base_loss)
    return trained


def get_or_train(
    key: Union[str, ExperimentSpec], builder: Optional[Callable[[], ImageClassifier]] = None
) -> ImageClassifier:
    """Trained model for a spec (persistent) or a legacy (key, builder) pair.

    Passing an :class:`ExperimentSpec` resolves through the artifact store:
    the checkpoint is loaded if any session ever trained this recipe,
    trained-and-stored otherwise, and memoized in-process.  The legacy
    ``(key, builder)`` form keeps a per-session cache for benches whose
    losses have no declarative spec yet.
    """
    if isinstance(key, ExperimentSpec):
        spec = key
        cache_key = f"spec:{spec.training_hash}"
        if cache_key not in _TRAINED_CACHE:
            model, _from_cache, _history, _timing = bench_runner().trained_model(spec)
            _TRAINED_CACHE[cache_key] = model
        return _TRAINED_CACHE[cache_key]
    if builder is None:
        raise TypeError("legacy get_or_train(key, builder) needs a builder callable")
    profile = get_profile()
    cache_key = f"{profile.name}:{key}"
    if cache_key not in _TRAINED_CACHE:
        _TRAINED_CACHE[cache_key] = builder()
    return _TRAINED_CACHE[cache_key]


def default_ibrar_config(model: ImageClassifier, robust_only: bool = True, **overrides) -> IBRARConfig:
    """IB-RAR config with tiny-profile-appropriate regularizer weights."""
    layers = robust_layers_for(model) if robust_only else None
    params = dict(alpha=0.05, beta=0.01, layers=layers, mask_fraction=0.1)
    params.update(overrides)
    return IBRARConfig(**params)


def bench_suite_specs(cw_steps_cap: Optional[int] = None, **overrides) -> List[AttackSpec]:
    """The paper attack suite at the active profile's step counts, as specs.

    Specs are model-free: one suite serves every model of a table, and the
    engine batches / early-exits the evaluation.  ``cw_steps_cap`` mirrors the
    per-bench reductions of the expensive CW optimization.
    """
    profile = get_profile()
    params = dict(pgd_steps=profile.attack_steps, cw_steps=profile.cw_steps)
    if cw_steps_cap is not None:
        params["cw_steps"] = min(params["cw_steps"], cw_steps_cap)
    params.update(overrides)
    return paper_attack_suite_specs(**params)


def record_bench_timings(label: str, reports: List[RobustnessReport]) -> None:
    """Append engine telemetry to ``REPRO_BENCH_TIMINGS`` (a JSON-lines file).

    The CI quick-bench job sets the environment variable and uploads the file
    as an artifact; locally the call is a no-op unless the variable is set.
    """
    path = os.environ.get("REPRO_BENCH_TIMINGS")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        for report in reports:
            if report.result is None:
                continue
            entry = {"bench": label, "profile": get_profile().name}
            entry.update(report.result.as_dict())
            entry.pop("telemetry", None)
            handle.write(json.dumps(entry, sort_keys=True) + "\n")


def adversarial_loss_specs(at_steps: Optional[int] = None) -> Dict[str, LossSpec]:
    """The three adversarial-training benchmarks as loss specs (profile steps)."""
    steps = at_steps if at_steps is not None else get_profile().at_steps
    return {
        "PGD": LossSpec("pgd", dict(steps=steps)),
        "TRADES": LossSpec("trades", dict(beta=6.0, steps=steps)),
        "MART": LossSpec("mart", dict(beta=5.0, steps=steps)),
    }


def adversarial_strategies() -> Dict[str, Callable[[], LossStrategy]]:
    """Factories for the three adversarial-training benchmarks with profile steps."""
    return {name: spec.build for name, spec in adversarial_loss_specs().items()}


def paper_rows_header(title: str) -> str:
    """Banner printed above every reproduced table/figure."""
    profile = get_profile()
    return (
        f"\n{'=' * 78}\n{title}\n"
        f"(profile: {profile.name} — synthetic data, scaled-down models; "
        f"compare shapes/orderings, not absolute numbers)\n{'=' * 78}"
    )


def training_benchmark(
    dataset,
    strategy_factory,
    epochs_timed: int = 2,
    batch_size: int = 50,
    seed: int = 0,
):
    """Eager-vs-compiled epoch timing for one training-loss strategy.

    Both trainers start from identical fresh seeded models and loader
    seeds; one warm-up epoch runs per mode (compiled plans build on their
    second batch sighting), then ``epochs_timed`` matched epochs are
    **interleaved** — so load spikes hit both modes — and the best wall
    time per mode is kept.  Returns a dict with the trainers/models (for
    trajectory assertions) and the measured seconds.
    """
    import time

    from repro.data import ArrayDataset, DataLoader
    from repro.models import SmallCNN
    from repro.nn.optim import SGD, StepLR
    from repro.training import Trainer

    def build(compile_flag: bool):
        model = SmallCNN(num_classes=10, image_size=16, seed=seed)
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-3)
        trainer = Trainer(
            model,
            strategy_factory(),
            optimizer=optimizer,
            scheduler=StepLR(optimizer),
            compile=compile_flag,
        )
        loader = DataLoader(
            ArrayDataset(dataset.x_train, dataset.y_train),
            batch_size=batch_size,
            shuffle=True,
            drop_last=True,
            seed=seed,
        )
        return model, trainer, loader

    eager_model, eager_trainer, eager_loader = build(False)
    compiled_model, compiled_trainer, compiled_loader = build(True)
    eager_trainer.fit(eager_loader, epochs=1)  # warm-up
    compiled_trainer.fit(compiled_loader, epochs=1)
    warm_allocations = compiled_trainer._compiled_trainer.pool_allocations

    eager_seconds = compiled_seconds = float("inf")
    for _ in range(epochs_timed):
        start = time.perf_counter()
        eager_trainer.fit(eager_loader, epochs=1)
        eager_seconds = min(eager_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        compiled_trainer.fit(compiled_loader, epochs=1)
        compiled_seconds = min(compiled_seconds, time.perf_counter() - start)

    return {
        "eager_model": eager_model,
        "eager_trainer": eager_trainer,
        "compiled_model": compiled_model,
        "compiled_trainer": compiled_trainer,
        "eager_seconds": eager_seconds,
        "compiled_seconds": compiled_seconds,
        "warm_allocations": warm_allocations,
        "epochs_timed": epochs_timed,
    }


def pgd_at_training_benchmark(
    dataset,
    epochs_timed: int = 2,
    pgd_steps: int = 10,
    batch_size: int = 50,
    seed: int = 0,
):
    """:func:`training_benchmark` on the paper's PGD-AT recipe (the shared
    fixture of ``benchmarks/quick_timing.py`` and
    ``tests/compile/test_speedup.py``)."""
    from repro.training.adversarial import PGDAdversarialLoss

    bench = training_benchmark(
        dataset,
        lambda: PGDAdversarialLoss(steps=pgd_steps, seed=seed),
        epochs_timed=epochs_timed,
        batch_size=batch_size,
        seed=seed,
    )
    bench["pgd_steps"] = pgd_steps
    return bench
