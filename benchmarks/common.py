"""Shared infrastructure for the paper-reproduction benches.

Every bench regenerates one table or figure of the paper.  Because the
substrate is a NumPy CPU simulator rather than the authors' GPU testbed, the
benches run a *scaled-down profile* by default: the same architectures-shape
(a small CNN with the VGG-style block/FC structure, or width-scaled VGG /
ResNet / WRN), synthetic CIFAR-like data, few epochs.  The profile can be
raised via the ``REPRO_BENCH_PROFILE`` environment variable:

* ``tiny``  (default) — minutes on a laptop CPU; orderings/shape only.
* ``small`` — width-scaled VGG16/ResNet18 at 32x32, more data and epochs.
* ``paper`` — full-width models, 60 epochs, paper attack steps (only
  meaningful on substantial hardware; provided for completeness).

Trained models are cached per (method, profile) within a pytest session so
different benches can share baselines.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.attacks import AttackSpec
from repro.core import IBRAR, IBRARConfig, MILoss
from repro.evaluation import RobustnessReport, paper_attack_suite_specs
from repro.data import ArrayDataset, DataLoader, SyntheticImageDataset, synthetic_cifar10
from repro.data.synthetic import make_dataset, synthetic_svhn
from repro.models import SmallCNN, VGG16, ResNet18, WideResNet28x10, ImageClassifier
from repro.nn.optim import SGD, StepLR
from repro.training import (
    CrossEntropyLoss,
    LossStrategy,
    MARTLoss,
    PGDAdversarialLoss,
    TRADESLoss,
    Trainer,
)

__all__ = [
    "BenchProfile",
    "get_profile",
    "bench_dataset",
    "bench_model",
    "bench_suite_specs",
    "train_model",
    "train_ibrar",
    "get_or_train",
    "paper_rows_header",
    "record_bench_timings",
]


@dataclass(frozen=True)
class BenchProfile:
    """Scale knobs for a bench run."""

    name: str
    image_size: int
    n_train: int
    n_test: int
    eval_examples: int
    epochs: int
    batch_size: int
    attack_steps: int
    cw_steps: int
    at_steps: int          # inner PGD steps for adversarial training
    lr: float
    model_kind: str        # "smallcnn" | "vgg16" | ...
    width_multiplier: float


_PROFILES: Dict[str, BenchProfile] = {
    "tiny": BenchProfile(
        name="tiny",
        image_size=16,
        n_train=300,
        n_test=120,
        eval_examples=60,
        epochs=3,
        batch_size=50,
        attack_steps=5,
        cw_steps=15,
        at_steps=3,
        lr=0.05,
        model_kind="smallcnn",
        width_multiplier=1.0,
    ),
    "small": BenchProfile(
        name="small",
        image_size=32,
        n_train=2000,
        n_test=500,
        eval_examples=200,
        epochs=10,
        batch_size=100,
        attack_steps=10,
        cw_steps=50,
        at_steps=7,
        lr=0.01,
        model_kind="vgg16",
        width_multiplier=0.25,
    ),
    "paper": BenchProfile(
        name="paper",
        image_size=32,
        n_train=50000,
        n_test=10000,
        eval_examples=10000,
        epochs=60,
        batch_size=100,
        attack_steps=10,
        cw_steps=200,
        at_steps=10,
        lr=0.01,
        model_kind="vgg16",
        width_multiplier=1.0,
    ),
}


def get_profile() -> BenchProfile:
    """Read the active profile from ``REPRO_BENCH_PROFILE`` (default: tiny)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "tiny").lower()
    if name not in _PROFILES:
        raise KeyError(f"unknown bench profile '{name}'; choose from {sorted(_PROFILES)}")
    return _PROFILES[name]


# --------------------------------------------------------------------------- #
# datasets and models
# --------------------------------------------------------------------------- #
_DATASET_CACHE: Dict[Tuple[str, str], SyntheticImageDataset] = {}
_MODEL_CACHE: Dict[Tuple[str, str], ImageClassifier] = {}


def bench_dataset(kind: str = "cifar10", seed: int = 0) -> SyntheticImageDataset:
    """Synthetic dataset for the active profile, cached per (kind, profile)."""
    profile = get_profile()
    key = (kind, profile.name)
    if key not in _DATASET_CACHE:
        if kind == "cifar10":
            ds = synthetic_cifar10(profile.n_train, profile.n_test, image_size=profile.image_size, seed=seed)
        elif kind == "svhn":
            ds = synthetic_svhn(profile.n_train, profile.n_test, image_size=profile.image_size, seed=seed)
        elif kind == "cifar100":
            ds = make_dataset(
                num_classes=20 if profile.name == "tiny" else 100,
                image_size=profile.image_size,
                n_train=profile.n_train,
                n_test=profile.n_test,
                seed=seed,
                name="synthetic-cifar100",
            )
        elif kind == "tiny-imagenet":
            ds = make_dataset(
                num_classes=20 if profile.name == "tiny" else 200,
                image_size=max(profile.image_size, 16),
                n_train=profile.n_train,
                n_test=profile.n_test,
                seed=seed,
                name="synthetic-tiny-imagenet",
            )
        else:
            raise KeyError(f"unknown bench dataset '{kind}'")
        _DATASET_CACHE[key] = ds
    return _DATASET_CACHE[key]


def bench_model(num_classes: int = 10, seed: int = 0, kind: Optional[str] = None) -> ImageClassifier:
    """Fresh model of the profile's architecture kind."""
    profile = get_profile()
    kind = kind or profile.model_kind
    if kind == "smallcnn":
        return SmallCNN(
            num_classes=num_classes,
            image_size=profile.image_size,
            base_channels=8,
            hidden_dim=32,
            seed=seed,
        )
    # The tiny profile's width_multiplier refers to its default (SmallCNN)
    # model; when a bench explicitly requests one of the paper architectures
    # under the tiny profile, scale it down so the run stays CPU-tractable.
    scaled_width = 0.125 if profile.name == "tiny" else profile.width_multiplier
    if kind == "vgg16":
        return VGG16(
            num_classes=num_classes,
            image_size=profile.image_size,
            width_multiplier=scaled_width,
            seed=seed,
        )
    if kind == "resnet18":
        return ResNet18(num_classes=num_classes, width_multiplier=scaled_width, seed=seed)
    if kind == "wrn28-10":
        wrn_width = 0.05 if profile.name == "tiny" else max(profile.width_multiplier * 0.2, 0.05)
        return WideResNet28x10(num_classes=num_classes, width_multiplier=wrn_width, seed=seed)
    raise KeyError(f"unknown model kind '{kind}'")


def robust_layers_for(model: ImageClassifier) -> Tuple[str, ...]:
    """The 'last conv block + two FC layers'-style robust-layer preset for a model."""
    names = model.hidden_layer_names
    return tuple(names[-3:]) if len(names) >= 3 else tuple(names)


# --------------------------------------------------------------------------- #
# training helpers
# --------------------------------------------------------------------------- #
def _loader(dataset: SyntheticImageDataset, profile: BenchProfile, seed: int = 0) -> DataLoader:
    return DataLoader(
        ArrayDataset(dataset.x_train, dataset.y_train),
        batch_size=profile.batch_size,
        shuffle=True,
        drop_last=True,
        seed=seed,
    )


def train_model(
    strategy: LossStrategy,
    dataset: SyntheticImageDataset,
    num_classes: int = 10,
    seed: int = 0,
    epochs: Optional[int] = None,
    model: Optional[ImageClassifier] = None,
) -> ImageClassifier:
    """Train a fresh bench model with an arbitrary loss strategy."""
    profile = get_profile()
    model = model or bench_model(num_classes=num_classes, seed=seed)
    optimizer = SGD(model.parameters(), lr=profile.lr, momentum=0.9, weight_decay=1e-3)
    trainer = Trainer(model, strategy, optimizer=optimizer, scheduler=StepLR(optimizer, step_size=20, gamma=0.2))
    trainer.fit(_loader(dataset, profile, seed), epochs=epochs or profile.epochs)
    model.eval()
    return model


def train_ibrar(
    dataset: SyntheticImageDataset,
    config: IBRARConfig,
    base_loss: Optional[LossStrategy] = None,
    num_classes: int = 10,
    seed: int = 0,
    epochs: Optional[int] = None,
) -> ImageClassifier:
    """Train a fresh bench model with the IB-RAR pipeline (Algorithm 1)."""
    profile = get_profile()
    model = bench_model(num_classes=num_classes, seed=seed)
    # Same optimizer hyperparameters as train_model() so the ± IB-RAR
    # comparison isolates the defense, not the weight decay.
    ibrar = IBRAR(
        model, config, base_loss=base_loss, lr=profile.lr, weight_decay=1e-3, step_size=20, gamma=0.2
    )
    ibrar.fit(
        dataset.x_train,
        dataset.y_train,
        epochs=epochs or profile.epochs,
        batch_size=profile.batch_size,
        seed=seed,
    )
    model.eval()
    return model


_TRAINED_CACHE: Dict[str, ImageClassifier] = {}


def get_or_train(key: str, builder: Callable[[], ImageClassifier]) -> ImageClassifier:
    """Session-level cache of trained models keyed by method name + profile."""
    profile = get_profile()
    cache_key = f"{profile.name}:{key}"
    if cache_key not in _TRAINED_CACHE:
        _TRAINED_CACHE[cache_key] = builder()
    return _TRAINED_CACHE[cache_key]


def default_ibrar_config(model: ImageClassifier, robust_only: bool = True, **overrides) -> IBRARConfig:
    """IB-RAR config with tiny-profile-appropriate regularizer weights."""
    layers = robust_layers_for(model) if robust_only else None
    params = dict(alpha=0.05, beta=0.01, layers=layers, mask_fraction=0.1)
    params.update(overrides)
    return IBRARConfig(**params)


def bench_suite_specs(cw_steps_cap: Optional[int] = None, **overrides) -> List[AttackSpec]:
    """The paper attack suite at the active profile's step counts, as specs.

    Specs are model-free: one suite serves every model of a table, and the
    engine batches / early-exits the evaluation.  ``cw_steps_cap`` mirrors the
    per-bench reductions of the expensive CW optimization.
    """
    profile = get_profile()
    params = dict(pgd_steps=profile.attack_steps, cw_steps=profile.cw_steps)
    if cw_steps_cap is not None:
        params["cw_steps"] = min(params["cw_steps"], cw_steps_cap)
    params.update(overrides)
    return paper_attack_suite_specs(**params)


def record_bench_timings(label: str, reports: List[RobustnessReport]) -> None:
    """Append engine telemetry to ``REPRO_BENCH_TIMINGS`` (a JSON-lines file).

    The CI quick-bench job sets the environment variable and uploads the file
    as an artifact; locally the call is a no-op unless the variable is set.
    """
    path = os.environ.get("REPRO_BENCH_TIMINGS")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        for report in reports:
            if report.result is None:
                continue
            entry = {"bench": label, "profile": get_profile().name}
            entry.update(report.result.as_dict())
            entry.pop("telemetry", None)
            handle.write(json.dumps(entry, sort_keys=True) + "\n")


def adversarial_strategies() -> Dict[str, Callable[[], LossStrategy]]:
    """Factories for the three adversarial-training benchmarks with profile steps."""
    profile = get_profile()
    return {
        "PGD": lambda: PGDAdversarialLoss(steps=profile.at_steps),
        "TRADES": lambda: TRADESLoss(beta=6.0, steps=profile.at_steps),
        "MART": lambda: MARTLoss(beta=5.0, steps=profile.at_steps),
    }


def paper_rows_header(title: str) -> str:
    """Banner printed above every reproduced table/figure."""
    profile = get_profile()
    return (
        f"\n{'=' * 78}\n{title}\n"
        f"(profile: {profile.name} — synthetic data, scaled-down models; "
        f"compare shapes/orderings, not absolute numbers)\n{'=' * 78}"
    )
