#!/usr/bin/env python3
"""Quick engine benchmark: legacy vs early-exit vs cascade vs compiled, as JSON.

Trains a tiny CNN on synthetic CIFAR-like data and times the paper's attack
suite under four evaluation strategies:

* ``legacy``    — the engine with early exit off (one attack after another
  over every example; identical to the pre-engine per-attack loop);
* ``early_exit`` — clean-misclassified examples dropped from attack batches;
* ``cascade``   — additionally drop examples fooled by an earlier attack
  (worst-case/AutoAttack-style evaluation);
* ``compiled``  — early exit plus ``compile=True``: predictions and the
  PGD-family gradient loops replay a static, buffer-pooled execution plan
  (:mod:`repro.compile`) instead of the dynamic autograd graph.

Writes a JSON report (accuracies, wall time, forward-pass counts, and the
eager-vs-compiled speedup) to the path given as the first argument (default:
``bench-timings.json``).  The CI quick-bench job uploads this as an artifact
and *soft-fails* on compiled-path regressions: if the compiled mode is slower
than eager early exit (< 1.0x) a GitHub warning annotation is emitted, but
the exit code stays 0.
"""

from __future__ import annotations

import json
import sys
import time

from repro.attacks import AttackEngine, paper_suite_specs
from repro.data import ArrayDataset, DataLoader, synthetic_cifar10
from repro.models import SmallCNN
from repro.nn.optim import SGD, StepLR
from repro.training import CrossEntropyLoss, Trainer


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "bench-timings.json"
    dataset = synthetic_cifar10(n_train=300, n_test=120, image_size=16, seed=0)
    model = SmallCNN(num_classes=10, image_size=16, seed=0)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-3)
    trainer = Trainer(model, CrossEntropyLoss(), optimizer=optimizer, scheduler=StepLR(optimizer))
    loader = DataLoader(
        ArrayDataset(dataset.x_train, dataset.y_train),
        batch_size=50,
        shuffle=True,
        drop_last=True,
        seed=0,
    )
    trainer.fit(loader, epochs=3)
    model.eval()

    suite = paper_suite_specs(pgd_steps=5, cw_steps=10)
    images, labels = dataset.x_test[:96], dataset.y_test[:96]
    modes = {
        "legacy": dict(early_exit=False),
        "early_exit": dict(early_exit=True),
        "cascade": dict(cascade=True),
        "compiled": dict(early_exit=True, compile=True),
    }
    report = {"suite": [spec.as_dict() for spec in suite], "eval_examples": len(images), "modes": {}}
    for mode_name, engine_kwargs in modes.items():
        engine = AttackEngine(suite, **engine_kwargs)
        start = time.perf_counter()
        result = engine.run(model, images, labels, method_name=mode_name)
        elapsed = time.perf_counter() - start
        entry = result.as_dict()
        entry["wall_seconds"] = round(elapsed, 4)
        report["modes"][mode_name] = entry
        print(
            f"{mode_name:>10}: {elapsed:6.2f}s  "
            f"{result.total_forward_examples:7d} forward-examples  "
            f"worst-case {result.worst_case * 100:.2f}%"
        )

    legacy = report["modes"]["legacy"]
    fast = report["modes"]["early_exit"]
    compiled = report["modes"]["compiled"]
    report["speedup_early_exit"] = round(legacy["wall_seconds"] / max(fast["wall_seconds"], 1e-9), 3)
    report["speedup_compiled"] = round(fast["wall_seconds"] / max(compiled["wall_seconds"], 1e-9), 3)
    report["compiled_matches_eager"] = bool(
        fast["adversarial"] == compiled["adversarial"] and fast["natural"] == compiled["natural"]
    )
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(
        f"wrote {output_path} (early-exit speedup: {report['speedup_early_exit']}x, "
        f"compiled speedup: {report['speedup_compiled']}x, "
        f"accuracies match: {report['compiled_matches_eager']})"
    )
    if not report["compiled_matches_eager"]:
        print("::warning title=compiled-mismatch::compiled accuracies differ from eager early-exit")
    if report["speedup_compiled"] < 1.0:
        # Soft failure: annotate the CI run but keep the job green.
        print(
            "::warning title=compiled-regression::compiled path slower than eager "
            f"({report['speedup_compiled']}x < 1.0x)"
        )


if __name__ == "__main__":
    main()
