#!/usr/bin/env python3
"""Quick engine benchmark: legacy vs early-exit vs cascade vs compiled, as JSON.

Trains a tiny CNN on synthetic CIFAR-like data and times the paper's attack
suite under four evaluation strategies:

* ``legacy``    — the engine with early exit off (one attack after another
  over every example; identical to the pre-engine per-attack loop);
* ``early_exit`` — clean-misclassified examples dropped from attack batches;
* ``cascade``   — additionally drop examples fooled by an earlier attack
  (worst-case/AutoAttack-style evaluation);
* ``compiled``  — early exit plus ``compile=True``: predictions and the
  PGD-family gradient loops replay a static, buffer-pooled execution plan
  (:mod:`repro.compile`) instead of the dynamic autograd graph.

Writes a JSON report (accuracies, wall time, forward-pass counts, and the
eager-vs-compiled speedup) to the path given as the first argument (default:
``bench-timings.json``), a compiled-**training** report (one PGD
adversarial-training epoch, eager vs ``Trainer(compile=True)``:
``train_speedup_compiled`` + ``train_matches_eager``) to the second
(default: ``BENCH_train.json``), a per-loss compiled-training report
(TRADES / MART / IB-RAR, whose side terms now run as in-plan nodes) to the
third (default: ``BENCH_losses.json``), and a kernel-provider matrix
(compiled eval replay throughput per registered provider — serial numpy
vs threaded vs optional numba — with the speedup over numpy) to the fourth
(default: ``BENCH_provider.json``).  The CI quick-bench job uploads all
of them as artifacts and *soft-fails* on compiled-path regressions: if a
compiled mode is slower than its eager counterpart (< 1.0x) a GitHub
warning annotation is emitted, but the exit code stays 0.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from repro.attacks import AttackEngine, paper_suite_specs
from repro.data import ArrayDataset, DataLoader, synthetic_cifar10
from repro.models import SmallCNN
from repro.nn.optim import SGD, StepLR
from repro.training import CrossEntropyLoss, Trainer


def _bench_entry(dataset, loss_name: str, bench: dict) -> dict:
    eager_state = bench["eager_model"].state_dict()
    compiled_state = bench["compiled_model"].state_dict()
    matches = bool(
        np.allclose(
            bench["eager_trainer"].history.train_loss,
            bench["compiled_trainer"].history.train_loss,
            rtol=1e-7,
        )
        and all(
            np.allclose(value, compiled_state[key], rtol=1e-6, atol=1e-9)
            for key, value in eager_state.items()
        )
    )
    eager_seconds, compiled_seconds = bench["eager_seconds"], bench["compiled_seconds"]
    return {
        "loss": loss_name,
        "epochs_timed": bench["epochs_timed"],
        "train_examples": len(dataset.x_train),
        "eager_epoch_seconds": round(eager_seconds, 4),
        "compiled_epoch_seconds": round(compiled_seconds, 4),
        "train_speedup_compiled": round(eager_seconds / max(compiled_seconds, 1e-9), 3),
        "train_matches_eager": matches,
        "compile_stats": bench["compiled_trainer"].compile_stats.as_dict(),
    }


def bench_training(dataset) -> dict:
    """Time one PGD-AT epoch eager vs compiled, from identical fresh models."""
    from common import pgd_at_training_benchmark

    bench = pgd_at_training_benchmark(dataset, epochs_timed=2, pgd_steps=10)
    entry = _bench_entry(dataset, "pgd", bench)
    entry["pgd_steps"] = bench["pgd_steps"]
    return entry


def bench_losses(dataset) -> dict:
    """Per-loss compiled-vs-eager step timings (the in-plan loss families).

    One entry per adversarial/IB loss whose side terms now build as plan
    nodes: TRADES, MART and IB-RAR (PGD base).  Same interleaved-epoch
    methodology as :func:`bench_training`.
    """
    from common import training_benchmark
    from repro.core.config import IBRARConfig
    from repro.core.losses import AdversarialMILoss
    from repro.training.adversarial import MARTLoss, PGDAdversarialLoss, TRADESLoss

    factories = {
        "trades": lambda: TRADESLoss(steps=5, seed=0),
        "mart": lambda: MARTLoss(steps=5, seed=0),
        "ibrar": lambda: AdversarialMILoss(
            IBRARConfig(alpha=0.05, beta=0.01),
            num_classes=10,
            adversarial_strategy=PGDAdversarialLoss(steps=5, seed=0),
        ),
    }
    report = {"epochs_timed": 2, "losses": {}}
    for name, factory in factories.items():
        bench = training_benchmark(dataset, factory, epochs_timed=2)
        report["losses"][name] = _bench_entry(dataset, name, bench)
    return report


def bench_providers(dataset, model, batch: int = 64, repeats: int = 20) -> dict:
    """Compiled eval replay throughput for every registered kernel provider.

    Compiles the conv-heavy eval forward once per provider, warms the plan
    (so the loop times pure kernel replays — no tracing, no allocation),
    and reports examples/sec plus the speedup over the serial ``numpy``
    reference provider.  ``matches_numpy`` checks the replayed logits
    against the numpy provider's bit-for-bit.
    """
    from repro.compile import available_providers, compile_model

    images = np.ascontiguousarray(dataset.x_test[:batch])
    report = {
        "cpu_count": os.cpu_count() or 1,
        "batch": int(len(images)),
        "repeats": int(repeats),
        "providers": {},
    }
    # numpy first: it is the reference for both timings and logits.
    names = sorted(available_providers(), key=lambda n: (n != "numpy", n))
    timings = {}
    reference_logits = None
    for name in names:
        compiled = compile_model(model, images, provider=name)
        compiled.warm([images])
        logits = np.array(compiled(images), copy=True)
        start = time.perf_counter()
        for _ in range(repeats):
            compiled(images)
        elapsed = time.perf_counter() - start
        timings[name] = elapsed
        if reference_logits is None:
            reference_logits = logits
        report["providers"][name] = {
            "seconds": round(elapsed, 4),
            "examples_per_sec": round(len(images) * repeats / max(elapsed, 1e-9), 1),
            "matches_numpy": bool(np.array_equal(logits, reference_logits)),
        }
    for name, entry in report["providers"].items():
        entry["speedup_vs_numpy"] = round(
            timings["numpy"] / max(timings[name], 1e-9), 3
        )
    return report


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "bench-timings.json"
    train_output_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_train.json"
    losses_output_path = sys.argv[3] if len(sys.argv) > 3 else "BENCH_losses.json"
    provider_output_path = sys.argv[4] if len(sys.argv) > 4 else "BENCH_provider.json"
    dataset = synthetic_cifar10(n_train=300, n_test=120, image_size=16, seed=0)
    model = SmallCNN(num_classes=10, image_size=16, seed=0)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-3)
    trainer = Trainer(model, CrossEntropyLoss(), optimizer=optimizer, scheduler=StepLR(optimizer))
    loader = DataLoader(
        ArrayDataset(dataset.x_train, dataset.y_train),
        batch_size=50,
        shuffle=True,
        drop_last=True,
        seed=0,
    )
    trainer.fit(loader, epochs=3)
    model.eval()

    suite = paper_suite_specs(pgd_steps=5, cw_steps=10)
    images, labels = dataset.x_test[:96], dataset.y_test[:96]
    modes = {
        "legacy": dict(early_exit=False),
        "early_exit": dict(early_exit=True),
        "cascade": dict(cascade=True),
        "compiled": dict(early_exit=True, compile=True),
    }
    report = {"suite": [spec.as_dict() for spec in suite], "eval_examples": len(images), "modes": {}}
    for mode_name, engine_kwargs in modes.items():
        engine = AttackEngine(suite, **engine_kwargs)
        start = time.perf_counter()
        result = engine.run(model, images, labels, method_name=mode_name)
        elapsed = time.perf_counter() - start
        entry = result.as_dict()
        entry["wall_seconds"] = round(elapsed, 4)
        report["modes"][mode_name] = entry
        print(
            f"{mode_name:>10}: {elapsed:6.2f}s  "
            f"{result.total_forward_examples:7d} forward-examples  "
            f"worst-case {result.worst_case * 100:.2f}%"
        )

    legacy = report["modes"]["legacy"]
    fast = report["modes"]["early_exit"]
    compiled = report["modes"]["compiled"]
    report["speedup_early_exit"] = round(legacy["wall_seconds"] / max(fast["wall_seconds"], 1e-9), 3)
    report["speedup_compiled"] = round(fast["wall_seconds"] / max(compiled["wall_seconds"], 1e-9), 3)
    report["compiled_matches_eager"] = bool(
        fast["adversarial"] == compiled["adversarial"] and fast["natural"] == compiled["natural"]
    )
    train_report = bench_training(dataset)
    report["train_speedup_compiled"] = train_report["train_speedup_compiled"]
    report["train_matches_eager"] = train_report["train_matches_eager"]
    losses_report = bench_losses(dataset)
    provider_report = bench_providers(dataset, model)
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    with open(train_output_path, "w", encoding="utf-8") as handle:
        json.dump(train_report, handle, indent=2, sort_keys=True)
    with open(losses_output_path, "w", encoding="utf-8") as handle:
        json.dump(losses_report, handle, indent=2, sort_keys=True)
    with open(provider_output_path, "w", encoding="utf-8") as handle:
        json.dump(provider_report, handle, indent=2, sort_keys=True)
    print(
        f"wrote {output_path} (early-exit speedup: {report['speedup_early_exit']}x, "
        f"compiled speedup: {report['speedup_compiled']}x, "
        f"accuracies match: {report['compiled_matches_eager']})"
    )
    print(
        f"wrote {train_output_path} (compiled training speedup: "
        f"{train_report['train_speedup_compiled']}x, trajectories match: "
        f"{train_report['train_matches_eager']})"
    )
    for name, entry in losses_report["losses"].items():
        print(
            f"{name:>10}: compiled {entry['train_speedup_compiled']}x "
            f"({entry['eager_epoch_seconds']}s -> {entry['compiled_epoch_seconds']}s)  "
            f"matches: {entry['train_matches_eager']}"
        )
    print(f"wrote {losses_output_path}")
    for name, entry in sorted(provider_report["providers"].items()):
        print(
            f"{name:>10}: {entry['examples_per_sec']:.0f} examples/s  "
            f"{entry['speedup_vs_numpy']}x vs numpy  "
            f"matches: {entry['matches_numpy']}"
        )
    print(
        f"wrote {provider_output_path} ({provider_report['cpu_count']} cores, "
        f"batch {provider_report['batch']})"
    )
    if not report["compiled_matches_eager"]:
        print("::warning title=compiled-mismatch::compiled accuracies differ from eager early-exit")
    if report["speedup_compiled"] < 1.0:
        # Soft failure: annotate the CI run but keep the job green.
        print(
            "::warning title=compiled-regression::compiled path slower than eager "
            f"({report['speedup_compiled']}x < 1.0x)"
        )
    if not train_report["train_matches_eager"]:
        print(
            "::warning title=compiled-train-mismatch::compiled training trajectory "
            "differs from eager"
        )
    if train_report["train_speedup_compiled"] < 1.0:
        print(
            "::warning title=compiled-train-regression::compiled training slower than eager "
            f"({train_report['train_speedup_compiled']}x < 1.0x)"
        )
    for name, entry in losses_report["losses"].items():
        if not entry["train_matches_eager"]:
            print(
                f"::warning title=compiled-{name}-mismatch::compiled {name} training "
                "trajectory differs from eager"
            )
        if entry["train_speedup_compiled"] < 1.0:
            print(
                f"::warning title=compiled-{name}-regression::compiled {name} training "
                f"slower than eager ({entry['train_speedup_compiled']}x < 1.0x)"
            )
    for name, entry in provider_report["providers"].items():
        if not entry["matches_numpy"]:
            print(
                f"::warning title=provider-{name}-mismatch::{name} provider logits "
                "differ from the numpy reference"
            )
        if name != "numpy" and entry["speedup_vs_numpy"] < 1.0:
            # Soft failure: expected on single-core runners, worth a look on CI.
            print(
                f"::warning title=provider-{name}-regression::{name} provider slower "
                f"than serial numpy ({entry['speedup_vs_numpy']}x < 1.0x on "
                f"{provider_report['cpu_count']} cores)"
            )


if __name__ == "__main__":
    main()
