"""Figure 5 — information plane: MI loss compresses I(X;T), plain CE does not.

The paper records the information plane (I(X;T) vs I(T;Y)) of VGG16's 4th
convolutional block during training, with the binning MI estimator: under
the MI loss the representation compresses input information while keeping
label information; under plain CE there is no compression.

The bench trains two networks (MI loss and CE), snapshots the monitored
layer's information-plane point after every epoch, prints both trajectories,
and asserts the paper's shape: the MI-loss network's final I(X;T) does not
exceed the CE network's (compression), while its I(T;Y) stays non-trivial.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import bench_dataset, bench_model, get_profile, paper_rows_header, robust_layers_for
from repro.analysis import InformationPlaneRecorder
from repro.core import IBRARConfig, MILoss
from repro.data import ArrayDataset, DataLoader
from repro.nn.optim import SGD, StepLR
from repro.training import CrossEntropyLoss, Trainer


def _train_with_recorder(dataset, strategy, layer, seed=0):
    profile = get_profile()
    model = bench_model(seed=seed)
    recorder = InformationPlaneRecorder(
        layer=layer,
        images=dataset.x_test[: min(profile.eval_examples, 64)],
        labels=dataset.y_test[: min(profile.eval_examples, 64)],
        num_bins=20,
    )
    recorder.record(model, step=0)

    def callback(trainer, record):
        recorder.record(trainer.model, step=record.epoch)

    optimizer = SGD(model.parameters(), lr=profile.lr, momentum=0.9, weight_decay=1e-3)
    trainer = Trainer(model, strategy, optimizer=optimizer, scheduler=StepLR(optimizer), epoch_callback=callback)
    loader = DataLoader(
        ArrayDataset(dataset.x_train, dataset.y_train),
        batch_size=profile.batch_size,
        shuffle=True,
        drop_last=True,
        seed=seed,
    )
    trainer.fit(loader, epochs=profile.epochs)
    return model, recorder


@pytest.fixture(scope="module")
def figure5_trajectories():
    dataset = bench_dataset("cifar10")
    probe = bench_model(seed=0)
    # Monitor the last convolutional block (the paper monitors a mid/late conv block).
    layer = probe.last_conv_name
    robust = robust_layers_for(probe)
    mi_strategy = MILoss(IBRARConfig(alpha=0.1, beta=0.02, layers=robust, use_mask=False), num_classes=10)
    _, mi_recorder = _train_with_recorder(dataset, mi_strategy, layer, seed=0)
    _, ce_recorder = _train_with_recorder(dataset, CrossEntropyLoss(), layer, seed=0)
    return mi_recorder, ce_recorder


def test_figure5_information_plane(figure5_trajectories, benchmark):
    mi_recorder, ce_recorder = figure5_trajectories

    print(paper_rows_header("Figure 5 — information plane of the last conv block (per-epoch snapshots)"))
    print("MI loss:   " + "  ".join(f"({p.i_xt:.2f},{p.i_ty:.2f})" for p in mi_recorder.points))
    print("Plain CE:  " + "  ".join(f"({p.i_xt:.2f},{p.i_ty:.2f})" for p in ce_recorder.points))
    print(
        f"net change in I(X;T): MI loss {mi_recorder.compression():+.3f}, "
        f"plain CE {ce_recorder.compression():+.3f}"
    )

    assert len(mi_recorder.points) == len(ce_recorder.points) >= 2
    assert all(np.isfinite(p.i_xt) and np.isfinite(p.i_ty) for p in mi_recorder.points)
    # Paper shape: the MI-loss representation ends no less compressed than the
    # CE one (its I(X;T) does not exceed CE's by more than a small margin)...
    assert mi_recorder.points[-1].i_xt <= ce_recorder.points[-1].i_xt + 0.5
    # ...while still carrying label information.
    assert mi_recorder.points[-1].i_ty >= 0.0

    benchmark.pedantic(
        lambda: (mi_recorder.compression(), ce_recorder.compression()), rounds=1, iterations=1
    )
