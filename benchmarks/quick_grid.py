#!/usr/bin/env python3
"""Quick grid benchmark: a 3-spec experiment grid through the parallel runner.

Runs a tiny grid (CE vs PGD-AT on smallcnn, plus a dropout-bearing VGG11
IB-RAR spec with ``mi_on_adversarial=True`` trained fully compiled) with 2
workers against a throwaway artifact store, then runs it a second time to
demonstrate (and assert) the full cache hit, and writes two JSON artifacts
next to the engine timing report:

* the artifact-store **manifest** (what was trained/evaluated, by hash);
* the grid **timing summary** of both invocations (wall time, worker count,
  training forward passes — zero on the second pass), including the VGG
  spec's ``compile_coverage`` (compiled / total training batches) for the
  benchmark ledger.

The VGG spec is the compiled-dropout regression gate: its training must
finish with **zero** genuine eager fallbacks (the ``trainer.fallback`` obs
counter, persisted as ``fallbacks`` in the train record's compile stats), and
a forced re-train must replay the capture traces the cold run published to
the shared store (``trace_hits`` — ROADMAP 3d).

Each invocation also leaves a ``grid`` RunRecord in the store (browse with
``python -m repro.obs runs list --store <dir>``); pass a persistent store
directory as the third argument so CI can ``runs diff`` cold vs warm.

Usage:  python benchmarks/quick_grid.py [manifest.json] [timing.json] [store-dir]
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.attacks import AttackSpec
from repro.experiments import ArtifactStore, ExperimentSpec, run_grid


def demo_specs() -> list:
    shared = dict(
        dataset="cifar10",
        dataset_params=dict(n_train=200, n_test=80, image_size=12, seed=0),
        model="smallcnn",
        model_params=dict(image_size=12, base_channels=4, hidden_dim=16, seed=0),
        optimizer=dict(lr=0.05, weight_decay=1e-3),
        epochs=2,
        batch_size=50,
        attacks=[
            AttackSpec("pgd", dict(steps=3, seed=0)),
            AttackSpec("fgsm", dict()),
        ],
        eval_examples=40,
        seed=0,
    )
    vgg = ExperimentSpec(
        name="VGG-IBRAR",
        dataset="cifar10",
        # VGG's five pooling stages need image_size % 32 == 0.
        dataset_params=dict(n_train=64, n_test=32, image_size=32, seed=0),
        model="vgg11",
        model_params=dict(image_size=32, width_multiplier=0.125, dropout=0.5, seed=0),
        loss={"name": "pgd", "params": {"steps": 2}},
        ibrar=dict(mi_on_adversarial=True),
        optimizer=dict(lr=0.05, weight_decay=1e-3),
        epochs=2,
        batch_size=32,
        attacks=[AttackSpec("fgsm", dict())],
        eval_examples=16,
        train_compile=True,
        seed=0,
    )
    return [
        ExperimentSpec(loss="ce", name="CE", **shared),
        ExperimentSpec(loss={"name": "pgd", "params": {"steps": 2}}, name="PGD-AT", **shared),
        vgg,
    ]


def compile_stats(store: ArtifactStore, spec: ExperimentSpec) -> dict:
    """The compile-stats section of a spec's stored train record."""
    record = store.load_train_record(spec) or {}
    return (record.get("history") or {}).get("compile") or {}


def main() -> None:
    manifest_path = sys.argv[1] if len(sys.argv) > 1 else "grid-manifest.json"
    timing_path = sys.argv[2] if len(sys.argv) > 2 else "grid-timing.json"
    store_root = sys.argv[3] if len(sys.argv) > 3 else tempfile.mkdtemp(prefix="repro-grid-")

    store = ArtifactStore(store_root)
    specs = demo_specs()
    vgg = specs[-1]

    cold = run_grid(specs, workers=2, store=store)
    warm = run_grid(specs, workers=2, store=store)
    assert warm.computed == [] and warm.train_forward_examples == 0, "cache miss on rerun"
    assert warm.report_json() == cold.report_json(), "cached reports diverged"

    # The dropout-bearing IB-RAR spec must train fully compiled: every batch
    # past the per-signature warmup replays a plan, and the trainer.fallback
    # obs counter (persisted as "fallbacks") never increments.
    stats = compile_stats(store, vgg)
    assert stats, "VGG train record is missing compile stats"
    assert stats.get("fallbacks") == 0, f"compiled dropout training fell back: {stats}"
    assert stats.get("compiled_batches", 0) > 0, f"nothing compiled: {stats}"
    total = stats["compiled_batches"] + stats["eager_batches"]
    coverage = stats["compiled_batches"] / total if total else 0.0

    # A forced re-train of the same spec must replay the capture traces the
    # cold run published to the shared store instead of re-tracing (one
    # stored trace per plan signature; ROADMAP 3d).
    run_grid([vgg], workers=1, store=store, force=True)
    forced = compile_stats(store, vgg)
    assert forced.get("trace_hits", 0) >= 1, f"no shared-trace hits on re-train: {forced}"
    assert forced.get("fallbacks") == 0, f"forced re-train fell back: {forced}"

    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(store.manifest(), handle, sort_keys=True, indent=2)
    with open(timing_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "cold": cold.summary(),
                "warm": warm.summary(),
                "compile_coverage": round(coverage, 6),
                "compile_stats": stats,
                "forced_compile_stats": forced,
            },
            handle,
            sort_keys=True,
            indent=2,
        )

    for result in cold.results:
        report = result.report
        adv = ", ".join(f"{k}={v * 100:.1f}%" for k, v in report["adversarial"].items())
        print(f"{report['method']:>8}: natural={report['natural'] * 100:.1f}%  {adv}")
    print(
        f"cold: {cold.seconds:.2f}s ({len(cold.computed)} trained)   "
        f"warm: {warm.seconds:.2f}s (all {warm.cached} from store, 0 training forwards)"
    )
    print(
        f"vgg compile coverage: {coverage * 100:.0f}% "
        f"(fallbacks=0, trace hits on re-train: {forced.get('trace_hits')})"
    )
    print(f"wrote {manifest_path} and {timing_path}")


if __name__ == "__main__":
    main()
