#!/usr/bin/env python3
"""Quick grid benchmark: a 2-spec experiment grid through the parallel runner.

Runs a tiny (CE vs PGD-AT) grid with 2 workers against a throwaway artifact
store, then runs it a second time to demonstrate (and assert) the full cache
hit, and writes two JSON artifacts next to the engine timing report:

* the artifact-store **manifest** (what was trained/evaluated, by hash);
* the grid **timing summary** of both invocations (wall time, worker count,
  training forward passes — zero on the second pass).

Each invocation also leaves a ``grid`` RunRecord in the store (browse with
``python -m repro.obs runs list --store <dir>``); pass a persistent store
directory as the third argument so CI can ``runs diff`` cold vs warm.

Usage:  python benchmarks/quick_grid.py [manifest.json] [timing.json] [store-dir]
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.attacks import AttackSpec
from repro.experiments import ArtifactStore, ExperimentSpec, run_grid


def demo_specs() -> list:
    shared = dict(
        dataset="cifar10",
        dataset_params=dict(n_train=200, n_test=80, image_size=12, seed=0),
        model="smallcnn",
        model_params=dict(image_size=12, base_channels=4, hidden_dim=16, seed=0),
        optimizer=dict(lr=0.05, weight_decay=1e-3),
        epochs=2,
        batch_size=50,
        attacks=[
            AttackSpec("pgd", dict(steps=3, seed=0)),
            AttackSpec("fgsm", dict()),
        ],
        eval_examples=40,
        seed=0,
    )
    return [
        ExperimentSpec(loss="ce", name="CE", **shared),
        ExperimentSpec(loss={"name": "pgd", "params": {"steps": 2}}, name="PGD-AT", **shared),
    ]


def main() -> None:
    manifest_path = sys.argv[1] if len(sys.argv) > 1 else "grid-manifest.json"
    timing_path = sys.argv[2] if len(sys.argv) > 2 else "grid-timing.json"
    store_root = sys.argv[3] if len(sys.argv) > 3 else tempfile.mkdtemp(prefix="repro-grid-")

    store = ArtifactStore(store_root)
    specs = demo_specs()

    cold = run_grid(specs, workers=2, store=store)
    warm = run_grid(specs, workers=2, store=store)
    assert warm.computed == [] and warm.train_forward_examples == 0, "cache miss on rerun"
    assert warm.report_json() == cold.report_json(), "cached reports diverged"

    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(store.manifest(), handle, sort_keys=True, indent=2)
    with open(timing_path, "w", encoding="utf-8") as handle:
        json.dump({"cold": cold.summary(), "warm": warm.summary()}, handle, sort_keys=True, indent=2)

    for result in cold.results:
        report = result.report
        adv = ", ".join(f"{k}={v * 100:.1f}%" for k, v in report["adversarial"].items())
        print(f"{report['method']:>8}: natural={report['natural'] * 100:.1f}%  {adv}")
    print(
        f"cold: {cold.seconds:.2f}s ({len(cold.computed)} trained)   "
        f"warm: {warm.seconds:.2f}s (all {warm.cached} from store, 0 training forwards)"
    )
    print(f"wrote {manifest_path} and {timing_path}")


if __name__ == "__main__":
    main()
