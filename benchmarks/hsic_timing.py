#!/usr/bin/env python3
"""Micro-benchmark: cached-Gram HSIC fast path vs the naive estimator.

The IB-RAR loss evaluates one nHSIC pair per hidden layer against the same
input and label Gram matrices.  The naive formulation (what the code shipped
before the fast path, pushed one step further by materializing the centering
matrix ``H``) re-centers both kernels and recomputes both self-HSIC
normalizers inside every term.  The fast path (:func:`repro.core.losses
.mi_regularizer_terms`) builds ``K_X``/``K_Y`` and their normalizers once
per batch, centers each layer kernel exactly once via the one-sided trace
identity ``tr(K_T H K H) = sum(center(K_T) * K)``, and never materializes
``H``.

Writes a JSON report (per-mode wall seconds + speedup) to the path given as
the first argument (default: ``hsic-timings.json``).
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.core.losses import mi_regularizer_terms
from repro.ib.hsic import gaussian_kernel, linear_kernel
from repro.nn import Tensor
from repro.nn import functional as F


def naive_terms(inputs, labels, hidden, num_classes, sigma):
    """The pre-fast-path computation with the centering matrix materialized."""

    def centered(kernel):
        m = kernel.shape[0]
        h = Tensor(np.eye(m) - 1.0 / m)
        return h @ kernel @ h

    def hsic_naive(kx, ky):
        m = kx.shape[0]
        return (centered(kx) * centered(ky)).sum() * (1.0 / ((m - 1) ** 2))

    def nhsic_naive(kx, ky, eps=1e-9):
        cross = hsic_naive(kx, ky)
        denominator = (hsic_naive(kx, kx) * hsic_naive(ky, ky) + eps).sqrt()
        return cross / (denominator + eps)

    input_kernel = gaussian_kernel(inputs.detach(), sigma=sigma)
    label_kernel = linear_kernel(Tensor(F.one_hot(labels, num_classes)))
    sum_xt = sum_yt = None
    for name, activation in hidden.items():
        layer_kernel = gaussian_kernel(activation, sigma=sigma)
        term_x = nhsic_naive(layer_kernel, input_kernel)
        term_y = nhsic_naive(layer_kernel, label_kernel)
        sum_xt = term_x if sum_xt is None else sum_xt + term_x
        sum_yt = term_y if sum_yt is None else sum_yt + term_y
    return sum_xt, sum_yt


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "hsic-timings.json"
    rng = np.random.default_rng(0)
    batch, num_classes, layers = 100, 10, 4
    inputs = Tensor(rng.random((batch, 3, 16, 16)))
    labels = rng.integers(0, num_classes, size=batch)
    hidden = {
        f"layer{i}": Tensor(rng.normal(size=(batch, 64)), requires_grad=True)
        for i in range(layers)
    }
    sigma = 5.0

    def run(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            sum_xt, sum_yt = fn()
            (sum_xt + sum_yt).backward()
            for t in hidden.values():
                t.grad = None
            best = min(best, time.perf_counter() - start)
        return best, float(sum_xt.item()), float(sum_yt.item())

    naive_s, naive_x, naive_y = run(
        lambda: naive_terms(inputs, labels, hidden, num_classes, sigma)
    )
    fast_s, fast_x, fast_y = run(
        lambda: mi_regularizer_terms(inputs, labels, hidden, num_classes, sigma=sigma)
    )

    report = {
        "batch": batch,
        "layers": layers,
        "naive_seconds": round(naive_s, 6),
        "fast_seconds": round(fast_s, 6),
        "speedup": round(naive_s / max(fast_s, 1e-12), 3),
        "values_match": bool(
            np.isclose(naive_x, fast_x, rtol=1e-8) and np.isclose(naive_y, fast_y, rtol=1e-8)
        ),
    }
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(
        f"naive {naive_s:.4f}s vs fast {fast_s:.4f}s -> {report['speedup']}x "
        f"(values match: {report['values_match']}); wrote {output_path}"
    )


if __name__ == "__main__":
    main()
