"""Table 2 — adversarial-training benchmarks ± IB-RAR on ResNet-18 and WRN-28-10.

Paper rows: CIFAR-10 with ResNet-18 (left half) and CIFAR-100 with
WideResNet-28-10 (right half), same six methods and five attacks as Table 1.
The headline shape is the same as Table 1 — adding IB-RAR does not hurt, and
for MART/WRN it helps substantially.

Each half-table is a list of :class:`ExperimentSpec` rows executed by the
grid runner; trained checkpoints and reports persist in the artifact store
across sessions.  The tiny profile trains width-scaled ResNet-18 on a
shrunken dataset (the WRN/CIFAR-100 half uses a 20-class synthetic stand-in
to stay CPU-tractable); the "small" / "paper" profiles raise widths, data
and epochs.
"""

from __future__ import annotations

import pytest

from common import (
    adversarial_loss_specs,
    bench_experiment,
    bench_model,
    bench_suite_specs,
    get_profile,
    paper_rows_header,
    record_bench_timings,
    robust_layers_for,
    run_experiments,
)
from repro.core import IBRARConfig
from repro.evaluation import format_table


def _half_table(model_kind: str, dataset_kind: str, methods=("PGD", "TRADES", "MART"), attack_names=None):
    """One half of Table 2: adversarial-training benchmarks ± IB-RAR for one (model, dataset)."""
    profile = get_profile()
    if profile.name == "tiny":
        dataset_overrides = dict(n_train=200, n_test=80)
        epochs, at_steps, batch_size = 2, 2, 50
    else:
        dataset_overrides = {}
        epochs, at_steps, batch_size = profile.epochs, profile.at_steps, profile.batch_size

    # ResNet-scale models use the paper's much smaller regularizer weights
    # (Figure 6b selects alpha=5e-4, beta=5e-5 for ResNet-18).
    probe = bench_model(seed=0, kind=model_kind)
    config = IBRARConfig(alpha=5e-3, beta=1e-3, layers=robust_layers_for(probe), mask_fraction=0.1)

    # One model-free spec suite for the whole half-table.
    suite = bench_suite_specs(cw_steps_cap=10)
    if attack_names is not None:
        unknown = set(attack_names) - {spec.name for spec in suite}
        if unknown:
            raise KeyError(f"unknown attack name(s) {sorted(unknown)} in attack_names")
        suite = [spec for spec in suite if spec.name in attack_names]

    losses = adversarial_loss_specs(at_steps=at_steps)
    specs = []
    for name in methods:
        shared = dict(
            dataset=dataset_kind,
            model_kind=model_kind,
            seed=0,
            epochs=epochs,
            batch_size=batch_size,
            attacks=suite,
            eval_examples=min(profile.eval_examples, 48),
            dataset_overrides=dataset_overrides,
        )
        specs.append(bench_experiment(losses[name], name=name, **shared))
        specs.append(bench_experiment(losses[name], ibrar=config, name=f"{name} (IB-RAR)", **shared))

    results = run_experiments(specs)
    reports = [result.robustness_report() for result in results]
    record_bench_timings(f"table2:{model_kind}:{dataset_kind}", reports)
    return reports


@pytest.fixture(scope="module")
def resnet_reports():
    return _half_table("resnet18", "cifar10")


def test_table2_resnet18_cifar10(resnet_reports, benchmark):
    print(paper_rows_header("Table 2 (left) — CIFAR-10 by ResNet-18: benchmarks ± IB-RAR"))
    print(format_table(resnet_reports))
    by_name = {r.method: r for r in resnet_reports}
    for method in ("PGD", "TRADES", "MART"):
        ours = by_name[f"{method} (IB-RAR)"]
        base = by_name[method]
        # Tiny-profile noise margin (2 epochs, 48 evaluation examples).
        assert ours.mean_adversarial() >= base.mean_adversarial() - 0.20
    benchmark.pedantic(lambda: [r.mean_adversarial() for r in resnet_reports], rounds=1, iterations=1)


def test_table2_wideresnet_cifar100(benchmark):
    profile = get_profile()
    if profile.name == "tiny":
        # The WRN-28-10 half is expensive; the tiny profile runs a single
        # representative pair (MART vs MART+IB-RAR, the pair the paper
        # highlights as the largest improvement) under a reduced attack suite.
        reports = _half_table(
            "wrn28-10", "cifar100", methods=("MART",), attack_names=("pgd", "fgsm", "nifgsm")
        )
    else:
        reports = _half_table("wrn28-10", "cifar100")
    print(paper_rows_header("Table 2 (right) — CIFAR-100 by WRN-28-10: benchmarks ± IB-RAR"))
    print(format_table(reports))
    assert len(reports) >= 2
    base, ours = reports[-2], reports[-1]
    assert ours.mean_adversarial() >= base.mean_adversarial() - 0.12
    benchmark.pedantic(lambda: ours.mean_adversarial(), rounds=1, iterations=1)
